"""Hand-wired micro-overlays for protocol unit tests.

These build a handful of peers with explicit memberships, neighbour sets,
and stored documents — no SystemInstance machinery — so each protocol
behaviour can be pinned in isolation.
"""

from __future__ import annotations

import numpy as np

from repro.overlay.peer import DocInfo, Peer, PeerConfig, PeerHooks
from repro.sim.engine import Simulator
from repro.sim.network import Network


class RecordingHooks(PeerHooks):
    """Hooks that record every callback and serve a holder directory."""

    def __init__(self) -> None:
        self.responses = []
        self.failures = []
        self.joined = []
        self.monitoring = []
        self.load_reports = []
        self.transfers = []
        self.leaves = []
        self.holders: dict[int, set[int]] = {}

    def on_query_response(self, peer, response):
        self.responses.append((peer.node_id, response))

    def on_query_failed(self, peer, query_id, reason):
        self.failures.append((peer.node_id, query_id, reason))

    def on_cluster_joined(self, peer, cluster_id):
        self.joined.append((peer.node_id, cluster_id))

    def on_monitoring_complete(
        self, peer, cluster_id, round_id, counts, weights, subtree_size
    ):
        self.monitoring.append(
            (peer.node_id, cluster_id, round_id, dict(counts), dict(weights),
             subtree_size)
        )

    def on_load_report(self, peer, report):
        self.load_reports.append((peer.node_id, report))

    def on_transfer_complete(self, peer, category_id, doc_ids):
        self.transfers.append((peer.node_id, category_id, doc_ids))

    def on_leave_notice(self, peer, notice):
        self.leaves.append((peer.node_id, notice))

    def on_document_stored(self, peer, doc_id):
        self.holders.setdefault(doc_id, set()).add(peer.node_id)

    def on_document_dropped(self, peer, doc_id):
        self.holders.get(doc_id, set()).discard(peer.node_id)

    def lookup_holders(self, peer, cluster_id, doc_id):
        return tuple(sorted(self.holders.get(doc_id, ())))


class MicroOverlay:
    """A tiny overlay with explicit wiring."""

    def __init__(self, seed: int = 0, **network_kwargs) -> None:
        self.sim = Simulator()
        self.network = Network(self.sim, **network_kwargs)
        self.rng = np.random.default_rng(seed)
        self.hooks = RecordingHooks()
        self.peers: dict[int, Peer] = {}

    def add_peer(
        self, node_id: int, capacity: float = 1.0, config: PeerConfig | None = None
    ) -> Peer:
        peer = Peer(
            node_id=node_id,
            capacity_units=capacity,
            network=self.network,
            rng=self.rng,
            hooks=self.hooks,
            config=config or PeerConfig(),
        )
        self.peers[node_id] = peer
        return peer

    def wire_cluster(
        self, cluster_id: int, member_ids, edges, category_map=None
    ) -> None:
        """Make ``member_ids`` a cluster with the given neighbour edges.

        ``category_map``: category id -> cluster id entries installed in
        every member's DCRT (defaults to nothing).
        """
        member_ids = list(member_ids)
        for node_id in member_ids:
            peer = self.peers[node_id]
            peer.join_cluster(cluster_id, known_members=member_ids)
        for a, b in edges:
            self.peers[a].cluster_neighbors.setdefault(cluster_id, set()).add(b)
            self.peers[b].cluster_neighbors.setdefault(cluster_id, set()).add(a)
        if category_map:
            for node_id in self.peers:
                for category_id, cluster in category_map.items():
                    self.peers[node_id].dcrt.set(category_id, cluster)

    def give_document(
        self, node_id: int, doc_id: int, categories, size: int = 1000
    ) -> None:
        self.peers[node_id].store_document(
            DocInfo(doc_id=doc_id, categories=tuple(categories), size_bytes=size)
        )

    def run(self) -> None:
        self.sim.run()


# ----------------------------------------------------------------------
# canonical full-system worlds
# ----------------------------------------------------------------------
#
# Most overlay integration tests want the same thing: a scaled Zipf
# scenario, a MaxFair assignment, a replication plan, and optionally a
# live P2PSystem on top.  These builders delegate to the repro.api
# facade (the single source of that pipeline) and keep the historical
# tuple-returning signatures the test modules use.

from repro import api  # noqa: E402


def build_world(
    scale: float = 0.02,
    seed: int = 31,
    *,
    with_stats: bool = False,
    n_reps: int = 2,
    hot_mass: float = 0.35,
):
    """``(instance, assignment, plan)`` for a scaled Zipf scenario.

    ``with_stats`` is kept for callers that pinned the historical
    explicit-statistics spelling; both spellings produce the same
    assignment, and the facade always routes through explicit stats.
    """
    del with_stats
    return api.build_world(scale=scale, seed=seed, n_reps=n_reps, hot_mass=hot_mass)


def build_live_system(
    scale: float = 0.02,
    seed: int = 31,
    *,
    config=None,
    with_stats: bool = False,
    with_plan: bool = True,
    n_reps: int = 2,
    hot_mass: float = 0.35,
):
    """``(instance, system)``: a booted :class:`P2PSystem` on a fresh world."""
    del with_stats
    system = api.build_system(
        scale=scale,
        seed=seed,
        n_reps=n_reps,
        hot_mass=hot_mass,
        replicate=with_plan,
        system_config=config,
    )
    return system.instance, system
