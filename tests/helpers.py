"""Hand-wired micro-overlays for protocol unit tests.

These build a handful of peers with explicit memberships, neighbour sets,
and stored documents — no SystemInstance machinery — so each protocol
behaviour can be pinned in isolation.
"""

from __future__ import annotations

import numpy as np

from repro.overlay.peer import DocInfo, Peer, PeerConfig, PeerHooks
from repro.sim.engine import Simulator
from repro.sim.network import Network


class RecordingHooks(PeerHooks):
    """Hooks that record every callback and serve a holder directory."""

    def __init__(self) -> None:
        self.responses = []
        self.failures = []
        self.joined = []
        self.monitoring = []
        self.load_reports = []
        self.transfers = []
        self.leaves = []
        self.holders: dict[int, set[int]] = {}

    def on_query_response(self, peer, response):
        self.responses.append((peer.node_id, response))

    def on_query_failed(self, peer, query_id, reason):
        self.failures.append((peer.node_id, query_id, reason))

    def on_cluster_joined(self, peer, cluster_id):
        self.joined.append((peer.node_id, cluster_id))

    def on_monitoring_complete(
        self, peer, cluster_id, round_id, counts, weights, subtree_size
    ):
        self.monitoring.append(
            (peer.node_id, cluster_id, round_id, dict(counts), dict(weights),
             subtree_size)
        )

    def on_load_report(self, peer, report):
        self.load_reports.append((peer.node_id, report))

    def on_transfer_complete(self, peer, category_id, doc_ids):
        self.transfers.append((peer.node_id, category_id, doc_ids))

    def on_leave_notice(self, peer, notice):
        self.leaves.append((peer.node_id, notice))

    def on_document_stored(self, peer, doc_id):
        self.holders.setdefault(doc_id, set()).add(peer.node_id)

    def on_document_dropped(self, peer, doc_id):
        self.holders.get(doc_id, set()).discard(peer.node_id)

    def lookup_holders(self, peer, cluster_id, doc_id):
        return tuple(sorted(self.holders.get(doc_id, ())))


class MicroOverlay:
    """A tiny overlay with explicit wiring."""

    def __init__(self, seed: int = 0, **network_kwargs) -> None:
        self.sim = Simulator()
        self.network = Network(self.sim, **network_kwargs)
        self.rng = np.random.default_rng(seed)
        self.hooks = RecordingHooks()
        self.peers: dict[int, Peer] = {}

    def add_peer(
        self, node_id: int, capacity: float = 1.0, config: PeerConfig | None = None
    ) -> Peer:
        peer = Peer(
            node_id=node_id,
            capacity_units=capacity,
            network=self.network,
            rng=self.rng,
            hooks=self.hooks,
            config=config or PeerConfig(),
        )
        self.peers[node_id] = peer
        return peer

    def wire_cluster(
        self, cluster_id: int, member_ids, edges, category_map=None
    ) -> None:
        """Make ``member_ids`` a cluster with the given neighbour edges.

        ``category_map``: category id -> cluster id entries installed in
        every member's DCRT (defaults to nothing).
        """
        member_ids = list(member_ids)
        for node_id in member_ids:
            peer = self.peers[node_id]
            peer.join_cluster(cluster_id, known_members=member_ids)
        for a, b in edges:
            self.peers[a].cluster_neighbors.setdefault(cluster_id, set()).add(b)
            self.peers[b].cluster_neighbors.setdefault(cluster_id, set()).add(a)
        if category_map:
            for node_id in self.peers:
                for category_id, cluster in category_map.items():
                    self.peers[node_id].dcrt.set(category_id, cluster)

    def give_document(
        self, node_id: int, doc_id: int, categories, size: int = 1000
    ) -> None:
        self.peers[node_id].store_document(
            DocInfo(doc_id=doc_id, categories=tuple(categories), size_bytes=size)
        )

    def run(self) -> None:
        self.sim.run()


# ----------------------------------------------------------------------
# canonical full-system worlds
# ----------------------------------------------------------------------
#
# Most overlay integration tests want the same thing: a scaled Zipf
# scenario, a MaxFair assignment, a replication plan, and optionally a
# live P2PSystem on top.  Building that by hand in every module drifted
# into near-identical copies; these two builders are the single source.

from repro.core.maxfair import maxfair  # noqa: E402
from repro.core.popularity import build_category_stats  # noqa: E402
from repro.core.replication import plan_replication  # noqa: E402
from repro.model.workload import zipf_category_scenario  # noqa: E402
from repro.overlay.system import P2PSystem  # noqa: E402


def build_world(
    scale: float = 0.02,
    seed: int = 31,
    *,
    with_stats: bool = False,
    n_reps: int = 2,
    hot_mass: float = 0.35,
):
    """``(instance, assignment, plan)`` for a scaled Zipf scenario.

    ``with_stats`` routes the assignment through explicitly built
    category statistics (the historical spelling some tests pinned).
    """
    instance = zipf_category_scenario(scale=scale, seed=seed)
    if with_stats:
        assignment = maxfair(instance, stats=build_category_stats(instance))
    else:
        assignment = maxfair(instance)
    plan = plan_replication(instance, assignment, n_reps=n_reps, hot_mass=hot_mass)
    return instance, assignment, plan


def build_live_system(
    scale: float = 0.02,
    seed: int = 31,
    *,
    config=None,
    with_stats: bool = False,
    with_plan: bool = True,
    n_reps: int = 2,
    hot_mass: float = 0.35,
):
    """``(instance, system)``: a booted :class:`P2PSystem` on a fresh world."""
    instance, assignment, plan = build_world(
        scale, seed, with_stats=with_stats, n_reps=n_reps, hot_mass=hot_mass
    )
    system = P2PSystem(
        instance, assignment, plan=plan if with_plan else None, config=config
    )
    return instance, system
