"""Tests for repro.core.fairness."""

import numpy as np
import pytest

from repro.core.fairness import (
    FAIRNESS_METRICS,
    coefficient_of_variation,
    fairness_metric,
    gini,
    jain_fairness,
    lorenz_curve,
    majorizes,
    max_min_ratio,
)


class TestJainFairness:
    def test_equal_allocation_is_one(self):
        assert jain_fairness([3.0, 3.0, 3.0]) == pytest.approx(1.0)

    def test_single_element_is_one(self):
        assert jain_fairness([5.0]) == pytest.approx(1.0)

    def test_one_hot_is_one_over_n(self):
        # The classic property: all load on one of n participants gives 1/n.
        assert jain_fairness([1.0, 0, 0, 0]) == pytest.approx(0.25)

    def test_scale_invariant(self):
        x = [1.0, 2.0, 3.0, 4.0]
        assert jain_fairness(x) == pytest.approx(
            jain_fairness([v * 1000 for v in x])
        )

    def test_bounds(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            x = rng.random(10)
            assert 0.0 < jain_fairness(x) <= 1.0

    def test_all_zero_is_one(self):
        assert jain_fairness([0.0, 0.0]) == 1.0

    def test_paper_interpretation(self):
        # "if the fairness index is 0.20 it means that the load distribution
        # is fair for 20% of the nodes" — one busy node among five equals 0.2.
        assert jain_fairness([1, 0, 0, 0, 0]) == pytest.approx(0.2)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            jain_fairness([-1.0, 2.0])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            jain_fairness([])

    def test_rejects_matrix(self):
        with pytest.raises(ValueError):
            jain_fairness(np.ones((2, 2)))


class TestMajorization:
    def test_concentrated_majorizes_spread(self):
        assert majorizes([4.0, 0.0], [2.0, 2.0])
        assert not majorizes([2.0, 2.0], [4.0, 0.0])

    def test_self_majorization(self):
        assert majorizes([1.0, 2.0, 3.0], [3.0, 2.0, 1.0])  # same multiset

    def test_incomparable_pair(self):
        # Classic incomparable vectors under majorization.
        a = [3.0, 3.0, 0.0]
        b = [4.0, 1.0, 1.0]
        assert not majorizes(a, b)
        assert not majorizes(b, a)

    def test_requires_equal_totals(self):
        with pytest.raises(ValueError):
            majorizes([1.0, 2.0], [1.0, 1.0])

    def test_requires_equal_lengths(self):
        with pytest.raises(ValueError):
            majorizes([1.0, 2.0], [3.0])

    def test_majorization_implies_lower_jain(self):
        # [24]: majorization is stricter than the fairness index — if x
        # majorizes y then jain(x) <= jain(y).
        rng = np.random.default_rng(1)
        checked = 0
        for _ in range(200):
            x = rng.random(6)
            y = rng.random(6)
            y = y * (x.sum() / y.sum())
            if majorizes(x, y):
                assert jain_fairness(x) <= jain_fairness(y) + 1e-9
                checked += 1
        assert checked > 0


class TestGini:
    def test_equal_is_zero(self):
        assert gini([2.0, 2.0, 2.0]) == pytest.approx(0.0, abs=1e-12)

    def test_one_hot_approaches_one(self):
        assert gini([1.0] + [0.0] * 99) == pytest.approx(0.99, abs=0.001)

    def test_scale_invariant(self):
        x = [1.0, 5.0, 2.0]
        assert gini(x) == pytest.approx(gini([v * 7 for v in x]))

    def test_all_zero(self):
        assert gini([0.0, 0.0]) == 0.0


class TestLorenz:
    def test_shape(self):
        curve = lorenz_curve([1.0, 2.0, 3.0])
        assert len(curve) == 4
        assert curve[0] == 0.0
        assert curve[-1] == pytest.approx(1.0)

    def test_monotone_convex(self):
        curve = lorenz_curve([5.0, 1.0, 3.0, 2.0])
        diffs = np.diff(curve)
        assert np.all(diffs >= 0)
        assert np.all(np.diff(diffs) >= -1e-12)  # increments non-decreasing

    def test_equal_allocation_is_diagonal(self):
        curve = lorenz_curve([2.0, 2.0])
        assert np.allclose(curve, [0.0, 0.5, 1.0])

    def test_zero_vector_is_diagonal(self):
        assert np.allclose(lorenz_curve([0.0, 0.0]), [0.0, 0.5, 1.0])


class TestOtherMetrics:
    def test_cv_equal_is_zero(self):
        assert coefficient_of_variation([4.0, 4.0]) == 0.0

    def test_cv_zero_mean(self):
        assert coefficient_of_variation([0.0, 0.0]) == 0.0

    def test_max_min_ratio(self):
        assert max_min_ratio([2.0, 4.0]) == pytest.approx(2.0)
        assert max_min_ratio([3.0, 3.0]) == pytest.approx(1.0)

    def test_max_min_ratio_with_zero(self):
        assert max_min_ratio([0.0, 1.0]) == float("inf")
        assert max_min_ratio([0.0, 0.0]) == 1.0


class TestMetricRegistry:
    def test_all_metrics_present(self):
        assert set(FAIRNESS_METRICS) == {"jain", "gini", "cv", "max_min"}

    def test_all_metrics_prefer_equal(self):
        equal = [2.0, 2.0, 2.0]
        skewed = [5.0, 0.5, 0.5]
        for name in FAIRNESS_METRICS:
            metric = fairness_metric(name)
            assert metric(equal) > metric(skewed), name

    def test_unknown_metric_rejected(self):
        with pytest.raises(ValueError):
            fairness_metric("nope")
