"""Tests for repro.model.documents."""

import pytest

from repro.model.documents import Category, Document, category_popularities


class TestDocument:
    def test_single_category_share(self):
        doc = Document(doc_id=1, popularity=0.4, categories=(2,))
        assert doc.popularity_per_category == pytest.approx(0.4)

    def test_multi_category_split_evenly(self):
        # Section 4.1: "If a document belongs to more than one semantic
        # category, its popularity is evenly distributed among them."
        doc = Document(doc_id=1, popularity=0.6, categories=(0, 1, 2))
        assert doc.popularity_per_category == pytest.approx(0.2)

    def test_rejects_empty_categories(self):
        with pytest.raises(ValueError):
            Document(doc_id=1, popularity=0.1, categories=())

    def test_rejects_duplicate_categories(self):
        with pytest.raises(ValueError):
            Document(doc_id=1, popularity=0.1, categories=(3, 3))

    def test_rejects_negative_popularity(self):
        with pytest.raises(ValueError):
            Document(doc_id=1, popularity=-0.1, categories=(0,))

    def test_rejects_nonpositive_size(self):
        with pytest.raises(ValueError):
            Document(doc_id=1, popularity=0.1, categories=(0,), size_bytes=0)

    def test_default_size_is_4mb(self):
        doc = Document(doc_id=1, popularity=0.1, categories=(0,))
        assert doc.size_bytes == 4 * 1024 * 1024

    def test_frozen(self):
        doc = Document(doc_id=1, popularity=0.1, categories=(0,))
        with pytest.raises(AttributeError):
            doc.popularity = 0.5


class TestCategory:
    def test_add_document_accumulates_popularity(self):
        category = Category(category_id=0)
        category.add_document(Document(doc_id=1, popularity=0.3, categories=(0,)))
        category.add_document(Document(doc_id=2, popularity=0.2, categories=(0,)))
        assert category.popularity == pytest.approx(0.5)
        assert category.n_docs == 2
        assert category.doc_ids == [1, 2]

    def test_add_document_uses_split_share(self):
        category = Category(category_id=0)
        category.add_document(Document(doc_id=1, popularity=0.4, categories=(0, 1)))
        assert category.popularity == pytest.approx(0.2)

    def test_add_document_wrong_category_rejected(self):
        category = Category(category_id=0)
        with pytest.raises(ValueError):
            category.add_document(Document(doc_id=1, popularity=0.1, categories=(1,)))

    def test_remove_document(self):
        category = Category(category_id=0)
        doc = Document(doc_id=1, popularity=0.3, categories=(0,))
        category.add_document(doc)
        category.remove_document(doc)
        assert category.popularity == pytest.approx(0.0)
        assert category.n_docs == 0

    def test_remove_unknown_document_raises(self):
        category = Category(category_id=0)
        with pytest.raises(ValueError):
            category.remove_document(
                Document(doc_id=9, popularity=0.1, categories=(0,))
            )


class TestCategoryPopularities:
    def test_totals_preserved(self):
        docs = {
            1: Document(doc_id=1, popularity=0.5, categories=(0,)),
            2: Document(doc_id=2, popularity=0.3, categories=(1, 2)),
            3: Document(doc_id=3, popularity=0.2, categories=(2,)),
        }
        pops = category_popularities(docs, 3)
        assert sum(pops) == pytest.approx(1.0)
        assert pops[0] == pytest.approx(0.5)
        assert pops[1] == pytest.approx(0.15)
        assert pops[2] == pytest.approx(0.35)

    def test_unknown_category_rejected(self):
        docs = {1: Document(doc_id=1, popularity=0.5, categories=(7,))}
        with pytest.raises(ValueError):
            category_popularities(docs, 3)

    def test_empty(self):
        assert category_popularities({}, 4) == [0.0] * 4
