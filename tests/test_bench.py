"""Tests for the repro.bench subsystem: schema, harness, regression gate.

The schema goldens pin keys, units, and repeat counts — never timings,
which vary by machine.
"""

import json

import pytest

from repro.bench import macro, micro
from repro.bench.cli import DEFAULT_OUT, collect_specs, main, write_report
from repro.bench.core import (
    SCHEMA,
    BenchResult,
    BenchSpec,
    compare_results,
    run_spec,
    run_specs,
)

RESULT_KEYS = {
    "name", "kind", "unit", "repeats", "warmup",
    "best_s", "median_s", "mean_s", "stddev_s", "extra",
}

MICRO_NAMES = {
    "engine_event_churn", "network_send_deliver", "zipf_sampling",
    "service_queue", "replication_manager", "chunk_fetch", "scenario_step",
}
MACRO_NAMES = {
    "figure2_end_to_end", "scaling_sweep", "fuzz_steps", "loss_experiment",
    "overload_experiment", "cache_qos_experiment",
}


class TestSpecs:
    def test_micro_suite_names(self):
        specs = micro.specs(size=0.1)
        assert {s.name for s in specs} == MICRO_NAMES
        assert all(s.kind == "micro" for s in specs)

    def test_macro_suite_names(self):
        specs = macro.specs()
        assert {s.name for s in specs} == MACRO_NAMES
        assert all(s.kind == "macro" for s in specs)

    def test_macro_figure2_is_best_of_five(self):
        (fig2,) = [s for s in macro.specs() if s.name == "figure2_end_to_end"]
        assert fig2.repeats == 5  # the acceptance criterion is best-of-5

    def test_all_specs_have_descriptions_and_units(self):
        for spec in micro.specs(size=0.1) + macro.specs():
            assert spec.description
            assert spec.unit

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            BenchSpec(name="x", kind="nano", description="d", unit="s",
                      fn=lambda: None)
        with pytest.raises(ValueError):
            BenchSpec(name="x", kind="micro", description="d", unit="s",
                      fn=lambda: None, repeats=0)

    def test_collect_specs_suites_and_filter(self):
        assert {s.name for s in collect_specs("all", size=0.1)} == (
            MICRO_NAMES | MACRO_NAMES
        )
        only = collect_specs("micro", size=0.1, names=["zipf_sampling"])
        assert [s.name for s in only] == ["zipf_sampling"]
        with pytest.raises(ValueError):
            collect_specs("micro", names=["nope"])
        with pytest.raises(ValueError):
            collect_specs("nano")


class TestHarness:
    def test_run_spec_result_shape(self):
        spec = BenchSpec(
            name="noop", kind="micro", description="d", unit="s",
            fn=lambda: {"work": 3}, repeats=4, warmup=2,
        )
        result = run_spec(spec)
        assert isinstance(result, BenchResult)
        assert result.repeats == 4 and result.warmup == 2
        assert result.best_s <= result.median_s
        assert result.stddev_s >= 0.0
        assert result.extra["work"] == 3

    def test_run_specs_overrides_counts(self):
        spec = BenchSpec(name="noop", kind="micro", description="d",
                         unit="s", fn=lambda: None)
        (result,) = run_specs([spec], repeats=2, warmup=0)
        assert result.repeats == 2 and result.warmup == 0

    def test_result_dict_keys(self):
        spec = BenchSpec(name="noop", kind="micro", description="d",
                         unit="s", fn=lambda: None, repeats=2, warmup=0)
        assert set(run_spec(spec).to_dict()) == RESULT_KEYS


class TestReportSchema:
    def test_report_schema_golden(self, tmp_path):
        """Keys, units, and repeat counts of the written report — the
        stable contract read across PRs.  Timings are never asserted."""
        results = run_specs(
            collect_specs("micro", size=0.02), repeats=2, warmup=0
        )
        out = tmp_path / "BENCH_core.json"
        write_report(out, results, suite="micro", size=0.02)
        report = json.loads(out.read_text())
        assert set(report) == {"schema", "suite", "size", "scale", "results"}
        assert report["schema"] == SCHEMA == "repro.bench/v1"
        assert set(report["scale"]) == {"algo", "des"}
        by_name = {r["name"]: r for r in report["results"]}
        assert set(by_name) == MICRO_NAMES
        for entry in by_name.values():
            assert set(entry) == RESULT_KEYS
            assert entry["repeats"] == 2
        assert by_name["zipf_sampling"]["unit"].startswith("s / ")
        assert "samples_per_s" in by_name["zipf_sampling"]["extra"]
        assert "events_per_s" in by_name["engine_event_churn"]["extra"]
        assert "messages_per_s" in by_name["network_send_deliver"]["extra"]
        assert "service_queries_per_s" in by_name["service_queue"]["extra"]
        assert (
            "replication_rounds_per_s"
            in by_name["replication_manager"]["extra"]
        )

    def test_committed_baseline_matches_schema(self):
        """The committed BENCH_core.json (if present) parses and carries
        the acceptance-criterion figure2 speedup."""
        from pathlib import Path

        baseline = Path(__file__).resolve().parents[1] / DEFAULT_OUT
        if not baseline.is_file():
            pytest.skip("no committed BENCH_core.json")
        report = json.loads(baseline.read_text())
        assert report["schema"] == SCHEMA
        by_name = {r["name"]: r for r in report["results"]}
        assert MICRO_NAMES | MACRO_NAMES <= set(by_name)
        fig2 = by_name["figure2_end_to_end"]
        assert fig2["repeats"] == 5
        assert fig2["extra"]["pre_pr_best_s"] > 0
        assert fig2["extra"]["speedup_vs_pre_pr"] >= 1.25


class TestCompare:
    def _result(self, name, median):
        return BenchResult(
            name=name, kind="micro", unit="s", repeats=3, warmup=1,
            best_s=median, median_s=median, mean_s=median, stddev_s=0.0,
            extra={},
        )

    def _baseline(self, medians):
        return {
            "schema": SCHEMA,
            "results": [
                self._result(name, median).to_dict()
                for name, median in medians.items()
            ],
        }

    def test_regression_detected(self):
        current = [self._result("a", 2.0), self._result("b", 1.0)]
        baseline = self._baseline({"a": 1.0, "b": 1.0, "gone": 1.0})
        regressions, skipped = compare_results(
            current, baseline, max_regress_pct=25.0
        )
        assert [r.name for r in regressions] == ["a"]
        assert regressions[0].regress_pct == pytest.approx(100.0)
        assert skipped == ["gone"]

    def test_within_threshold_passes(self):
        current = [self._result("a", 1.2)]
        regressions, _ = compare_results(
            current, self._baseline({"a": 1.0}), max_regress_pct=25.0
        )
        assert regressions == []

    def test_malformed_baseline_raises_value_error(self):
        """Library callers get ValueError with schema context, never a
        raw KeyError from a missing field."""
        current = [self._result("a", 1.0)]
        malformed = [
            [],  # not a dict at all
            {"results": {"a": 1.0}},  # results not a list
            {"results": [["a", 1.0]]},  # entry not a dict
            {"results": [{"median_s": 1.0}]},  # entry missing name
            {"results": [{"name": "a"}]},  # entry missing median_s
        ]
        for baseline in malformed:
            with pytest.raises(ValueError, match="repro.bench/v1"):
                compare_results(current, baseline, max_regress_pct=25.0)

    def test_empty_results_baseline_is_valid(self):
        regressions, skipped = compare_results(
            [self._result("a", 1.0)], {"results": []}, max_regress_pct=25.0
        )
        assert regressions == []
        assert skipped == ["a"]


class TestCLI:
    def test_list(self, capsys):
        assert main(["--list", "--suite", "all"]) == 0
        out = capsys.readouterr().out
        for name in MICRO_NAMES | MACRO_NAMES:
            assert name in out

    def test_run_and_compare_round_trip(self, tmp_path, capsys):
        out = tmp_path / "BENCH_core.json"
        args = ["--suite", "micro", "--only", "zipf_sampling",
                "--size", "0.02", "--repeats", "2", "--warmup", "0"]
        assert main(args + ["--out", str(out)]) == 0
        assert json.loads(out.read_text())["schema"] == SCHEMA
        # comparing a fresh run against itself stays under any threshold
        # wide enough for timing noise
        assert main(
            args + ["--out", "-", "--compare", str(out),
                    "--max-regress", "400"]
        ) == 0
        capsys.readouterr()

    def test_compare_flags_regression(self, tmp_path, capsys):
        out = tmp_path / "BENCH_core.json"
        args = ["--suite", "micro", "--only", "zipf_sampling",
                "--size", "0.02", "--repeats", "2", "--warmup", "0"]
        assert main(args + ["--out", str(out)]) == 0
        report = json.loads(out.read_text())
        # Doctor the baseline to be impossibly fast: the fresh run must
        # then count as a regression.
        for entry in report["results"]:
            entry["median_s"] = entry["median_s"] / 1e6
        doctored = tmp_path / "doctored.json"
        doctored.write_text(json.dumps(report))
        assert main(
            args + ["--out", "-", "--compare", str(doctored)]
        ) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_compare_rejects_wrong_schema(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema": "other/v9", "results": []}))
        with pytest.raises(SystemExit):
            main(["--suite", "micro", "--only", "zipf_sampling",
                  "--out", "-", "--compare", str(bad)])
        capsys.readouterr()

    # A stale or hand-mangled baseline must fail *before* any benchmark
    # is measured, with a message naming the defect — not as a raw
    # KeyError after minutes of timing runs.
    _ARGS = ["--suite", "micro", "--only", "engine_event_churn",
             "--size", "0.05", "--repeats", "1", "--warmup", "0", "--out", "-"]

    def _expect_baseline_rejected(self, tmp_path, capsys, payload, fragment):
        bad = tmp_path / "bad.json"
        bad.write_text(payload)
        with pytest.raises(SystemExit) as excinfo:
            main(self._ARGS + ["--compare", str(bad)])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert fragment in err
        assert "regenerate it" in err
        assert "KeyError" not in err

    def test_compare_rejects_invalid_json(self, tmp_path, capsys):
        self._expect_baseline_rejected(
            tmp_path, capsys, "{not json", "not valid JSON"
        )

    def test_compare_rejects_non_object_baseline(self, tmp_path, capsys):
        self._expect_baseline_rejected(
            tmp_path, capsys, json.dumps([1, 2, 3]), "schema mismatch"
        )

    def test_compare_rejects_non_list_results(self, tmp_path, capsys):
        self._expect_baseline_rejected(
            tmp_path,
            capsys,
            json.dumps({"schema": SCHEMA, "results": {"a": 1.0}}),
            "'results' must be a list",
        )

    def test_compare_rejects_entry_missing_name(self, tmp_path, capsys):
        self._expect_baseline_rejected(
            tmp_path,
            capsys,
            json.dumps({"schema": SCHEMA, "results": [{"median_s": 0.5}]}),
            "no string 'name'",
        )

    def test_compare_rejects_entry_missing_median(self, tmp_path, capsys):
        self._expect_baseline_rejected(
            tmp_path,
            capsys,
            json.dumps({"schema": SCHEMA, "results": [{"name": "a"}]}),
            "no numeric 'median_s'",
        )

    def test_compare_missing_file_still_errors(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(self._ARGS + ["--compare", str(tmp_path / "nope.json")])
        assert excinfo.value.code == 2
        assert "not found" in capsys.readouterr().err
