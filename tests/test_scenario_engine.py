"""Engine-layer tests: stationary equivalence, determinism, modulation."""

import numpy as np
import pytest

from repro.model.system import SystemConfig, build_system
from repro.model.workload import make_query_workload
from repro.scenario import (
    DiurnalSpec,
    DriftSpec,
    FreeRiderSpec,
    MisbehaviorSpec,
    RegionalPartitionSpec,
    ScenarioSpec,
    SkewFlipSpec,
    designate_free_riders,
    generate_events,
    rate_at,
)

WORLD = SystemConfig(
    seed=5,
    n_docs=120,
    n_nodes=12,
    n_categories=8,
    n_clusters=3,
    doc_size_bytes=65_536,
)


@pytest.fixture(scope="module")
def instance():
    return build_system(WORLD)


class TestStationaryEquivalence:
    def test_queries_match_make_query_workload_exactly(self, instance):
        # The acceptance criterion: a stationary spec's query stream is
        # byte-for-byte today's make_query_workload output.
        spec = ScenarioSpec(name="s", seed=42, duration=5.0, base_rate=30.0, m=2)
        stream = generate_events(spec, instance)
        expected = make_query_workload(instance, spec.n_queries, seed=42, m=2)
        assert stream.workload.queries == expected.queries

    def test_times_evenly_spaced(self, instance):
        spec = ScenarioSpec(name="s", seed=1, duration=10.0, base_rate=10.0)
        stream = generate_events(spec, instance)
        assert len(stream.times) == 100
        assert stream.times[0] == 0.0
        diffs = np.diff(stream.times)
        assert np.allclose(diffs, 0.1)


class TestByteIdentity:
    def test_same_spec_same_bytes(self, instance):
        spec = ScenarioSpec(
            name="mod",
            seed=9,
            duration=6.0,
            base_rate=40.0,
            n_regions=3,
            diurnal=DiurnalSpec(period=3.0, amplitude=0.6,
                                regional_offsets=(0.0, 0.5)),
            drift=DriftSpec(ranks_per_unit=2.0),
            flips=(SkewFlipSpec(at=3.0, mass=0.3, n_hot=3),),
            misbehavior=MisbehaviorSpec(at=2.0, n_bogus=1),
            partitions=(RegionalPartitionSpec(at=1.0, duration=2.0, region=1),),
        )
        first = generate_events(spec, instance).canonical_bytes()
        second = generate_events(spec, instance).canonical_bytes()
        assert first == second

    def test_round_tripped_spec_same_bytes(self, instance):
        spec = ScenarioSpec(
            name="mod", seed=3, duration=4.0, base_rate=25.0,
            diurnal=DiurnalSpec(period=2.0, amplitude=0.5),
        )
        clone = ScenarioSpec.from_json(spec.to_json())
        assert (
            generate_events(spec, instance).canonical_bytes()
            == generate_events(clone, instance).canonical_bytes()
        )

    def test_different_seed_different_bytes(self, instance):
        base = dict(name="mod", duration=4.0, base_rate=25.0,
                    diurnal=DiurnalSpec(period=2.0, amplitude=0.5))
        a = generate_events(ScenarioSpec(seed=1, **base), instance)
        b = generate_events(ScenarioSpec(seed=2, **base), instance)
        assert a.canonical_bytes() != b.canonical_bytes()


class TestDiurnalModulation:
    def test_peak_windows_issue_more_than_troughs(self, instance):
        # phase 0.25 puts the peak at t=0 and the trough mid-cycle.
        spec = ScenarioSpec(
            name="d", seed=2, duration=8.0, base_rate=40.0, window=1.0,
            diurnal=DiurnalSpec(period=8.0, amplitude=0.9, phase=0.25),
        )
        stream = generate_events(spec, instance)
        counts = np.zeros(8)
        for t in stream.times:
            counts[min(int(t), 7)] += 1
        assert counts[0] > counts[4]
        # trough rate = base * (1 - 0.9) -- much smaller, never negative.
        assert counts[4] >= 0

    def test_regional_offsets_shift_the_peak(self, instance):
        # Two regions half a cycle apart: when one peaks the other
        # troughs, so their per-window counts are anti-correlated.
        spec = ScenarioSpec(
            name="d", seed=2, duration=8.0, base_rate=60.0, window=1.0,
            n_regions=2,
            diurnal=DiurnalSpec(period=8.0, amplitude=0.9, phase=0.25,
                                regional_offsets=(0.0, 0.5)),
        )
        stream = generate_events(spec, instance)
        region_counts = {0: np.zeros(8), 1: np.zeros(8)}
        for t, query in zip(stream.times, stream.workload.queries):
            region = query.requester_id % 2
            region_counts[region][min(int(t), 7)] += 1
        # region 0 peaks in window 0; region 1 peaks half a period later.
        assert region_counts[0][0] > region_counts[0][4]
        assert region_counts[1][4] > region_counts[1][0]

    def test_rate_at_matches_formula(self):
        spec = ScenarioSpec(
            name="d", base_rate=100.0, n_regions=2,
            diurnal=DiurnalSpec(period=4.0, amplitude=0.5, phase=0.0),
        )
        # at t = 1 (quarter period) sin = 1 -> factor 1.5 on 50/region.
        assert rate_at(spec, 1.0, region=0) == pytest.approx(75.0)

    def test_requesters_stay_in_their_region(self, instance):
        spec = ScenarioSpec(
            name="d", seed=4, duration=4.0, base_rate=40.0, n_regions=3,
            diurnal=DiurnalSpec(period=4.0, amplitude=0.3),
        )
        stream = generate_events(spec, instance)
        assert len(stream) > 0
        for query in stream.workload.queries:
            assert query.requester_id in instance.nodes


class TestSkewFlip:
    def test_flip_concentrates_mass_on_hot_docs(self, instance):
        spec = ScenarioSpec(
            name="f", seed=11, duration=10.0, base_rate=200.0,
            flips=(SkewFlipSpec(at=5.0, mass=0.8, n_hot=2),),
        )
        stream = generate_events(spec, instance)
        before: dict[int, int] = {}
        after: dict[int, int] = {}
        for t, query in zip(stream.times, stream.workload.queries):
            bucket = after if t >= 5.0 else before
            bucket[query.target_doc_id] = bucket.get(query.target_doc_id, 0) + 1
        top2_after = sorted(after.values(), reverse=True)[:2]
        n_after = sum(after.values())
        # the two hot docs should absorb most post-flip traffic.
        assert sum(top2_after) / n_after > 0.6
        top2_before = sorted(before.values(), reverse=True)[:2]
        assert sum(top2_before) / sum(before.values()) < 0.6


class TestControlEvents:
    def test_misbehavior_controls_are_timed_and_typed(self, instance):
        spec = ScenarioSpec(
            name="c", seed=8, duration=6.0, base_rate=10.0,
            misbehavior=MisbehaviorSpec(at=2.5, n_bogus=1, n_stale_gossip=2),
        )
        controls = generate_events(spec, instance).controls
        misbehaves = [c for c in controls if c.kind == "misbehave"]
        assert len(misbehaves) == 3
        modes = sorted(dict(c.params)["mode"] for c in misbehaves)
        assert modes == ["bogus", "stale_gossip", "stale_gossip"]
        for control in misbehaves:
            assert control.time == 2.5
            assert dict(control.params)["node_id"] in instance.nodes

    def test_partition_pairs_with_heal(self, instance):
        spec = ScenarioSpec(
            name="c", seed=8, duration=6.0, base_rate=10.0,
            partitions=(RegionalPartitionSpec(at=1.0, duration=2.0, region=0),),
        )
        controls = generate_events(spec, instance).controls
        kinds = [(c.kind, c.time) for c in controls]
        assert ("partition", 1.0) in kinds
        assert ("heal", 3.0) in kinds

    def test_controls_sorted_by_time(self, instance):
        spec = ScenarioSpec(
            name="c", seed=8, duration=6.0, base_rate=10.0,
            misbehavior=MisbehaviorSpec(at=4.0, n_bogus=1),
            partitions=(RegionalPartitionSpec(at=1.0, duration=1.0),),
        )
        controls = generate_events(spec, instance).controls
        times = [c.time for c in controls]
        assert times == sorted(times)


class TestDesignateFreeRiders:
    def test_documents_conserved_and_instance_valid(self):
        instance = build_system(WORLD)
        docs_before = {
            doc_id
            for node in instance.nodes.values()
            for doc_id in node.contributed_doc_ids
        }
        free = designate_free_riders(instance, 0.25, seed=3)
        assert free
        instance.validate()
        docs_after = {
            doc_id
            for node in instance.nodes.values()
            for doc_id in node.contributed_doc_ids
        }
        assert docs_before == docs_after

    def test_designated_nodes_are_free_riders(self):
        instance = build_system(WORLD)
        free = designate_free_riders(instance, 0.25, seed=3)
        for node_id in free:
            assert instance.nodes[node_id].is_free_rider
            assert node_id not in instance.node_categories

    def test_deterministic_for_seed(self):
        a = designate_free_riders(build_system(WORLD), 0.25, seed=3)
        b = designate_free_riders(build_system(WORLD), 0.25, seed=3)
        assert a == b

    def test_zero_fraction_is_noop(self):
        instance = build_system(WORLD)
        assert designate_free_riders(instance, 0.0, seed=3) == ()

    def test_at_least_one_contributor_remains(self):
        instance = build_system(WORLD)
        free = designate_free_riders(instance, 0.99, seed=3)
        assert len(free) == len(instance.nodes) - 1

    def test_fraction_one_rejected(self):
        with pytest.raises(ValueError, match="fraction"):
            designate_free_riders(build_system(WORLD), 1.0, seed=3)
