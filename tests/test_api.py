"""Tests for the repro.api facade."""

import pytest

from repro import api


class TestBuildSystem:
    def test_default_pipeline(self):
        system = api.build_system(scale=0.02, seed=31)
        assert isinstance(system, api.P2PSystem)
        assert system.plan is not None
        assert system.instance.documents
        assert system.assignment.is_complete()

    def test_replicate_false_skips_plan(self):
        system = api.build_system(scale=0.02, seed=31, replicate=False)
        assert system.plan is None

    def test_explicit_config(self):
        config = api.SystemConfig(
            n_docs=400, n_nodes=60, n_categories=10, n_clusters=3, seed=5
        )
        system = api.build_system(config)
        assert len(system.instance.documents) == 400
        assert system.assignment.n_clusters == 3

    def test_system_config_passthrough(self):
        system = api.build_system(
            scale=0.02,
            seed=31,
            system_config=api.P2PSystemConfig(cache_capacity=4, seed=2),
        )
        assert system.config.cache_capacity == 4

    def test_build_world_matches_build_system(self):
        instance, assignment, plan = api.build_world(scale=0.02, seed=31)
        system = api.build_system(scale=0.02, seed=31)
        assert set(instance.documents) == set(system.instance.documents)
        assert (
            assignment.category_to_cluster.tolist()
            == system.assignment.category_to_cluster.tolist()
        )
        assert plan.hot_doc_ids == system.plan.hot_doc_ids

    def test_workload_round_trip(self):
        system = api.build_system(scale=0.02, seed=31)
        workload = api.make_query_workload(system.instance, 50, seed=3)
        outcomes = system.run_workload(workload)
        assert len(outcomes) == 50


class TestExperiments:
    def test_run_experiment_case_insensitive(self):
        result = api.run_experiment("t3")
        assert result.name == "T3"
        assert "T3" in api.format_experiment(result)

    def test_unknown_experiment(self):
        with pytest.raises(ValueError, match="unknown experiment"):
            api.run_experiment("nope")

    def test_unknown_param(self):
        with pytest.raises(TypeError, match="does not accept"):
            api.run_experiment("T3", banana=1)

    def test_list_experiments(self):
        listing = api.list_experiments()
        assert "F2" in listing and "FUZZ" in listing
        assert all(description for description in listing.values())


class TestBenchmarks:
    def test_run_benchmarks_subset(self):
        results = api.run_benchmarks(
            ["zipf_sampling"], suite="micro", size=0.02, repeats=2, warmup=0
        )
        assert [r.name for r in results] == ["zipf_sampling"]
        assert results[0].repeats == 2

    def test_curated_all_resolves(self):
        for name in api.__all__:
            assert getattr(api, name) is not None
