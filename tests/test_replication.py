"""Tests for repro.core.replication — the Section 4.3.3 placement policy."""

import numpy as np
import pytest

from repro.core.maxfair import Assignment
from repro.core.popularity import cluster_members
from repro.core.replication import (
    category_storage_requirement,
    plan_replication,
)


class TestStorageRequirement:
    def test_paper_example(self):
        # 1,000 docs x 5 replicas x 4 MB = 20 GB (Section 4.3.3).
        mb = 1024 * 1024
        assert category_storage_requirement(1000, 5, 4 * mb) == 20_000 * mb

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            category_storage_requirement(-1, 2, 3)


class TestPlanReplication:
    def test_every_document_has_replicas(self, small_instance, small_assignment):
        plan = plan_replication(
            small_instance, small_assignment, n_reps=2, hot_mass=0.35
        )
        holders: dict[int, int] = {}
        for docs in plan.node_docs.values():
            for doc_id in docs:
                holders[doc_id] = holders.get(doc_id, 0) + 1
        members = cluster_members(
            small_instance, small_assignment.category_to_cluster
        )
        for doc_id, doc in small_instance.documents.items():
            cluster = small_assignment.cluster_of(doc.categories[0])
            expected = min(2, len(members[cluster]))
            assert holders.get(doc_id, 0) >= expected, doc_id

    def test_hot_docs_on_every_cluster_node(
        self, small_instance, small_assignment
    ):
        plan = plan_replication(
            small_instance, small_assignment, n_reps=2, hot_mass=0.35
        )
        members = cluster_members(
            small_instance, small_assignment.category_to_cluster
        )
        assert plan.hot_doc_ids, "expected a non-empty hot set under Zipf"
        for doc_id in plan.hot_doc_ids:
            doc = small_instance.documents[doc_id]
            cluster = small_assignment.cluster_of(doc.categories[0])
            for node_id in members[cluster]:
                assert doc_id in plan.node_docs.get(node_id, set())

    def test_hot_set_is_small(self, small_instance, small_assignment):
        # Section 4.3.3: under realistic Zipf laws the hot set covering 35%
        # of the mass is well under 10% of documents per category.
        plan = plan_replication(
            small_instance, small_assignment, n_reps=2, hot_mass=0.35
        )
        assert len(plan.hot_doc_ids) < 0.15 * len(small_instance.documents)

    def test_replicas_on_distinct_nodes(self, small_instance, small_assignment):
        plan = plan_replication(
            small_instance, small_assignment, n_reps=2, hot_mass=0.0
        )
        # node_docs holds sets, so a node cannot hold a doc twice; make
        # sure cold docs actually reach 2 distinct nodes when possible.
        holders: dict[int, set[int]] = {}
        for node_id, docs in plan.node_docs.items():
            for doc_id in docs:
                holders.setdefault(doc_id, set()).add(node_id)
        members = cluster_members(
            small_instance, small_assignment.category_to_cluster
        )
        for doc_id, nodes in holders.items():
            doc = small_instance.documents[doc_id]
            cluster = small_assignment.cluster_of(doc.categories[0])
            assert len(nodes) >= min(2, len(members[cluster]))

    def test_hot_replication_improves_intra_fairness(
        self, small_instance, small_assignment
    ):
        bare = plan_replication(
            small_instance, small_assignment, n_reps=2, hot_mass=0.0
        )
        hot = plan_replication(
            small_instance, small_assignment, n_reps=2, hot_mass=0.35
        )
        bare_fairness = np.mean(
            [
                bare.intra_cluster_fairness(small_instance, small_assignment, c)
                for c in range(small_assignment.n_clusters)
            ]
        )
        hot_fairness = np.mean(
            [
                hot.intra_cluster_fairness(small_instance, small_assignment, c)
                for c in range(small_assignment.n_clusters)
            ]
        )
        assert hot_fairness > bare_fairness

    def test_byte_accounting_consistent(self, small_instance, small_plan):
        sizes = small_instance.doc_sizes
        for node_id, docs in small_plan.node_docs.items():
            expected = sum(sizes[d] for d in docs)
            assert small_plan.node_bytes[node_id] == expected

    def test_popularity_accounting_consistent(self, small_instance, small_plan):
        for node_id, docs in small_plan.node_docs.items():
            expected = sum(
                small_instance.documents[d].popularity for d in docs
            )
            assert small_plan.node_popularity[node_id] == pytest.approx(expected)

    def test_summary_helpers(self, small_plan):
        assert small_plan.max_node_bytes() >= small_plan.mean_node_bytes() > 0

    def test_rejects_bad_args(self, small_instance, small_assignment):
        with pytest.raises(ValueError):
            plan_replication(small_instance, small_assignment, n_reps=0)
        with pytest.raises(ValueError):
            plan_replication(small_instance, small_assignment, hot_mass=1.0)

    def test_rejects_incomplete_assignment(self, small_instance):
        incomplete = Assignment(
            category_to_cluster=np.full(len(small_instance.categories), -1),
            n_clusters=small_instance.n_clusters,
        )
        with pytest.raises(ValueError):
            plan_replication(small_instance, incomplete)

    def test_higher_n_reps_means_more_storage(
        self, small_instance, small_assignment
    ):
        low = plan_replication(
            small_instance, small_assignment, n_reps=1, hot_mass=0.0
        )
        high = plan_replication(
            small_instance, small_assignment, n_reps=3, hot_mass=0.0
        )
        assert sum(high.node_bytes.values()) > sum(low.node_bytes.values())
