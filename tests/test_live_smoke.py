"""Live runtime smoke: real processes, real sockets, tiny workloads.

These tests run the actual ``python -m repro.live`` server binary as
subprocesses and drive it with the in-process soak supervisor — the
same code path the CI ``live-smoke`` job exercises at full scale (30 s,
500 queries, kill/restart, injected loss).  Here the workloads are
sized for the unit suite: a few seconds each, strict on correctness,
lenient on rate thresholds that need statistics to be meaningful.
"""

import json

import pytest

from repro.live import LiveWorld, SoakConfig, run_soak_sync
from repro.live.node import format_routes, parse_routes


def test_parse_routes_round_trip():
    routes = {0: ("127.0.0.1", 7000), 3: ("10.0.0.2", 7003)}
    assert parse_routes(format_routes(routes)) == routes
    assert parse_routes("0:7000") == {0: ("127.0.0.1", 7000)}
    with pytest.raises(ValueError, match="bad route"):
        parse_routes("0:1:2:3")


def test_soak_config_validation():
    with pytest.raises(ValueError, match="n_peers"):
        SoakConfig(n_peers=0)
    with pytest.raises(ValueError, match="duration"):
        SoakConfig(duration=0)
    with pytest.raises(ValueError, match="kill_restart"):
        SoakConfig(n_peers=1, kill_restart=True)


def test_live_soak_queries_and_fetches(tmp_path):
    """Seed + 2 peers over loopback UDP: every query answered, every
    chunked fetch verified, zero decode errors."""
    metrics_path = tmp_path / "soak.jsonl"
    summary = run_soak_sync(
        SoakConfig(
            n_peers=2,
            duration=2.0,
            n_queries=30,
            n_fetches=4,
            kill_restart=False,
            min_success=0.99,
            metrics_path=str(metrics_path),
            world=LiveWorld(n_docs=8, n_categories=4, doc_size_bytes=8192,
                            chunk_size=4096),
        )
    )
    assert summary["passed"], summary
    assert summary["queries"] == 30
    assert summary["queries_ok"] == 30
    assert summary["fetches"] == 4
    assert summary["fetches_ok"] == 4
    assert summary["client_decode_errors"] == 0

    events = [
        json.loads(line)
        for line in metrics_path.read_text().splitlines()
    ]
    kinds = {event["event"] for event in events}
    assert {"servers_up", "bootstrapped", "query", "fetch", "summary"} <= kinds
    assert events[-1]["event"] == "summary"
    # Every fetch event records its chunk count (multi-chunk transfers).
    assert all(e["chunks"] == 2 for e in events if e["event"] == "fetch")


def test_live_soak_survives_kill_restart(tmp_path):
    """One peer SIGKILLed mid-run and restarted: reliability failover
    keeps the workload running (lenient rate — tiny sample)."""
    metrics_path = tmp_path / "chaos.jsonl"
    summary = run_soak_sync(
        SoakConfig(
            n_peers=3,
            duration=4.5,
            n_queries=45,
            n_fetches=4,
            loss=0.01,
            kill_restart=True,
            min_success=0.9,
            metrics_path=str(metrics_path),
            world=LiveWorld(n_docs=8, n_categories=4, doc_size_bytes=8192,
                            chunk_size=4096),
        )
    )
    assert summary["passed"], summary
    events = [
        json.loads(line)
        for line in metrics_path.read_text().splitlines()
    ]
    kinds = [event["event"] for event in events]
    assert "kill" in kinds and "restart" in kinds
    assert kinds.index("kill") < kinds.index("restart")
