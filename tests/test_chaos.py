"""Tests for the deterministic chaos harness (repro.chaos).

Covers the full loop the harness promises: seeded schedule generation is
reproducible, replays of the same schedule are bit-identical in their
observed outcomes, the invariant checker catches injected defects, and a
caught failure shrinks to a small schedule whose emitted pytest source is
valid Python.
"""

import pytest

from repro.chaos import (
    InvariantChecker,
    ScenarioConfig,
    Schedule,
    ScheduleEntry,
    emit_pytest_case,
    generate_schedule,
    replay,
    run_schedule,
    shrink,
)
from repro.overlay.metadata import DCRT

from tests.helpers import build_live_system


class TestScheduleGeneration:
    def test_same_seed_same_schedule(self, chaos_config):
        assert generate_schedule(7, chaos_config) == generate_schedule(
            7, chaos_config
        )

    def test_different_seeds_differ(self, chaos_config):
        assert generate_schedule(1, chaos_config) != generate_schedule(
            2, chaos_config
        )

    def test_cooldown_tail(self, chaos_config):
        """Every schedule ends heal -> loss off -> gossip -> converge, so
        the convergence invariant is checked on a healed network."""
        schedule = generate_schedule(3, chaos_config)
        tail = [entry.action for entry in schedule.entries[-4:]]
        assert tail == ["heal", "loss_ramp", "gossip", "converge"]
        assert schedule.entries[-3].params["target"] == 0.0

    def test_to_python_round_trips(self, chaos_config):
        schedule = generate_schedule(11, chaos_config)
        namespace = {"Schedule": Schedule, "ScheduleEntry": ScheduleEntry}
        rebuilt = eval(schedule.to_python(), namespace)
        assert rebuilt == schedule

    def test_shrink_helpers_preserve_seed(self, chaos_config):
        schedule = generate_schedule(5, chaos_config)
        assert schedule.without(0).seed == schedule.seed
        assert len(schedule.without(0)) == len(schedule) - 1
        assert schedule.truncated(3).entries == schedule.entries[:3]


class TestDeterministicReplay:
    def test_small_seeds_run_clean(self, chaos_config):
        for seed in range(3):
            report = run_schedule(generate_schedule(seed, chaos_config),
                                  config=chaos_config)
            assert report.ok, report.summary()
            assert report.entries_applied > 0

    def test_same_seed_twice_identical_results(self, chaos_config):
        """Acceptance: replaying a fuzz seed reproduces the exact same
        schedule and the exact same invariant-check results."""
        schedule = generate_schedule(9, chaos_config)
        first = run_schedule(schedule, config=chaos_config)
        second = replay(schedule, config=chaos_config)
        assert first == second  # every field, including violations

    def test_shrink_rejects_passing_schedule(self, chaos_config):
        schedule = generate_schedule(0, chaos_config)
        with pytest.raises(ValueError):
            shrink(schedule, config=chaos_config)


class TestInvariantDetection:
    def test_move_counter_rollback_detected(self):
        _instance, system = build_live_system(scale=0.02, seed=61)
        checker = InvariantChecker(system)
        peer = system.alive_peers()[0]
        peer.dcrt.set(0, 1, move_counter=5)
        checker.check_structural()
        assert checker.violations == []
        peer.dcrt.set(0, 1, move_counter=2)  # counter goes backwards
        checker.check_structural()
        assert checker.violated_invariants == {"move-counter-monotonic"}

    def test_vanished_document_detected(self):
        _instance, system = build_live_system(scale=0.02, seed=61)
        checker = InvariantChecker(system)
        checker.note_published(10**9)  # never actually stored anywhere
        checker.check_structural()
        assert "doc-conservation" in checker.violated_invariants

    def test_quiescence_hook_fires_checks(self):
        """Registered as an on_quiescence hook, the checker catches a
        rollback without any explicit call from the test."""
        _instance, system = build_live_system(scale=0.02, seed=61)
        checker = InvariantChecker(system)
        peer = system.alive_peers()[0]
        peer.dcrt.set(0, 1, move_counter=5)
        unregister = system.sim.on_quiescence(checker.check_structural)
        try:
            system.run_gossip_rounds(1)
            baseline = set(checker.violated_invariants)
            peer.dcrt.set(0, 1, move_counter=1)
            system.run_gossip_rounds(1)
        finally:
            unregister()
        assert "move-counter-monotonic" not in baseline
        assert "move-counter-monotonic" in checker.violated_invariants


class TestReliabilityActions:
    def test_ack_loss_and_retry_storm_keep_exactly_once(self, chaos_config):
        """Dropped acks and dropped requests force retransmission chains;
        retried publishes/transfers must never double-apply (the
        exactly-once-effects invariant runs at every quiescent step)."""
        from repro import obs

        entries = (
            ScheduleEntry(0, "ack_loss", {"probability": 0.45}),
            ScheduleEntry(1, "publish", {"rank": 3, "category": 1, "n_docs": 3}),
            ScheduleEntry(2, "query_burst", {"n": 10, "workload_seed": 11}),
            ScheduleEntry(3, "retry_storm", {"probability": 0.3}),
            ScheduleEntry(4, "publish", {"rank": 5, "category": 2, "n_docs": 2}),
            ScheduleEntry(5, "force_move", {"category": 1, "target_rank": 1}),
            ScheduleEntry(6, "heal", {}),
            ScheduleEntry(7, "gossip", {"rounds": 4}),
            ScheduleEntry(8, "converge", {}),
        )
        duplicates = obs.counter("reliability.duplicates_suppressed")
        before = duplicates.value
        report = run_schedule(Schedule(seed=9, entries=entries),
                              config=chaos_config)
        assert report.ok, report.summary()
        # The scenario actually exercised the dedup path.
        assert duplicates.value > before

    def test_heal_clears_kind_drop_overrides(self, chaos_config):
        from repro.chaos.harness import ChaosRunner

        schedule = Schedule(
            seed=3,
            entries=(
                ScheduleEntry(0, "ack_loss", {"probability": 0.3}),
                ScheduleEntry(1, "retry_storm", {"probability": 0.4}),
                ScheduleEntry(2, "heal", {}),
            ),
        )
        runner = ChaosRunner(schedule, chaos_config)
        runner.run()
        assert runner.system.network._kind_drop == {}

    def test_reliability_off_config_builds_unreliable_world(self, chaos_config):
        from dataclasses import replace

        from repro.chaos.harness import ChaosRunner

        config = replace(chaos_config, reliability=False)
        runner = ChaosRunner(generate_schedule(1, config), config)
        peer = runner.system.alive_peers()[0]
        assert not peer.config.reliability.enabled


@pytest.fixture()
def buggy_merge():
    """Inject a last-writer-wins DCRT merge (drops the move-counter
    guard), restoring the real implementation afterwards."""
    original = DCRT.merge

    def bad_merge(self, category_id, entry):
        self._entries[category_id] = entry
        return True

    DCRT.merge = bad_merge
    try:
        yield
    finally:
        DCRT.merge = original


class TestInjectedRegressionIsCaughtAndShrunk:
    # A longer horizon than the shared fixture: the stale-gossip rollback
    # needs a reassignment, a partition, and a heal to line up.  Seed 12
    # is a known trigger under the current action-weight table (adding or
    # reweighting actions reshuffles every schedule; rescan if it stops
    # firing).
    SEED = 12
    CONFIG = ScenarioConfig(
        n_docs=300,
        n_nodes=40,
        n_categories=8,
        n_clusters=3,
        n_steps=28,
        query_burst_max=10,
        min_alive=14,
    )

    def test_fuzz_catches_and_shrinks_the_bug(self, buggy_merge):
        schedule = generate_schedule(self.SEED, self.CONFIG)
        report = run_schedule(schedule, config=self.CONFIG)
        assert not report.ok
        assert report.violated_invariants == {"move-counter-monotonic"}

        small, small_report = shrink(schedule, config=self.CONFIG, max_runs=80)
        assert len(small) < len(schedule)
        assert small_report.violated_invariants == {"move-counter-monotonic"}

        source = emit_pytest_case(small, small_report, config=self.CONFIG)
        compile(source, "<reproducer>", "exec")  # valid Python
        assert f"def test_chaos_repro_seed_{schedule.seed}(" in source
        assert "run_schedule" in source

    def test_clean_tree_passes_the_same_schedule(self):
        """The same seed is clean without the injected bug, proving the
        violation comes from the defect, not the scenario."""
        report = run_schedule(generate_schedule(self.SEED, self.CONFIG),
                              config=self.CONFIG)
        assert report.ok, report.summary()


class TestEmittedReproducer:
    def test_emitted_source_replays_standalone(self, buggy_merge):
        """The emitted test body must be runnable as-is: exec it and call
        the generated function, expecting the assertion to fire while the
        bug is still injected."""
        schedule = generate_schedule(
            TestInjectedRegressionIsCaughtAndShrunk.SEED,
            TestInjectedRegressionIsCaughtAndShrunk.CONFIG,
        )
        small, report = shrink(
            schedule,
            config=TestInjectedRegressionIsCaughtAndShrunk.CONFIG,
            max_runs=40,
        )
        source = emit_pytest_case(
            small, report, config=TestInjectedRegressionIsCaughtAndShrunk.CONFIG
        )
        namespace = {}
        exec(compile(source, "<reproducer>", "exec"), namespace)
        test_fn = namespace[f"test_chaos_repro_seed_{schedule.seed}"]
        with pytest.raises(AssertionError):
            test_fn()


class TestFuzzExperiment:
    def test_run_and_format(self, chaos_config):
        from repro.experiments import fuzz

        result = fuzz.run(seed=0, seeds=2, steps=8, shrink_failing=False)
        assert result.n_seeds == 2
        assert result.failing_seeds == []
        text = fuzz.format_result(result)
        assert "seed 0: ok" in text

    def test_cli_entry(self, capsys):
        from repro.experiments.runner import main

        assert main(["fuzz", "--seeds", "2", "--steps", "6"]) == 0
        out = capsys.readouterr().out
        assert "0/2 seeds failing" in out
