"""Misbehaving peers: bogus responses and stale gossip stay bounded."""

import pytest

from repro.chaos.invariants import InvariantChecker
from repro.core.maxfair import maxfair
from repro.core.popularity import build_category_stats
from repro.core.replication import plan_replication
from repro.model.system import SystemConfig, build_system
from repro.model.workload import make_query_workload
from repro.overlay.peer import MisbehaviorConfig
from repro.overlay.system import P2PSystem, P2PSystemConfig

WORLD = SystemConfig(
    seed=29,
    n_docs=120,
    n_nodes=12,
    n_categories=8,
    n_clusters=3,
    doc_size_bytes=65_536,
)


def build():
    instance = build_system(WORLD)
    stats = build_category_stats(instance)
    assignment = maxfair(instance, stats=stats)
    plan = plan_replication(instance, assignment, n_reps=2, hot_mass=0.35)
    system = P2PSystem(
        instance, assignment, plan=plan, config=P2PSystemConfig(seed=29)
    )
    return instance, system


class TestBogusResponses:
    def test_rejectable_bogus_mode_is_caught_by_requesters(self):
        instance, system = build()
        bogus_id = sorted(p.node_id for p in system.alive_peers())[0]
        system.set_misbehavior(bogus_id, MisbehaviorConfig(bogus_responses=True))
        workload = make_query_workload(instance, 120, seed=3)
        system.run_workload(workload)
        rejections = system.bogus_rejections()
        assert rejections, "no query ever reached the bogus responder"
        assert all(responder == bogus_id for responder, _ in rejections)
        # Every rejection was silent at the requester: no fabricated
        # document id ever entered an accepted outcome.
        assert not system.integrity_failures()

    def test_rejected_queries_fail_over_to_honest_holders(self):
        instance, system = build()
        bogus_id = sorted(p.node_id for p in system.alive_peers())[0]
        system.set_misbehavior(bogus_id, MisbehaviorConfig(bogus_responses=True))
        workload = make_query_workload(instance, 120, seed=3)
        outcomes = system.run_workload(workload)
        succeeded = sum(1 for o in outcomes if o.succeeded)
        # One bogus node out of twelve must not collapse the workload:
        # rejected responses leave the query pending, so the failover
        # deadline retries through honest replicas.
        assert succeeded / len(outcomes) > 0.8

    def test_invariant_passes_when_requesters_reject(self):
        instance, system = build()
        checker = InvariantChecker(system)
        unregister = system.sim.on_quiescence(checker.check_structural)
        try:
            bogus_id = sorted(p.node_id for p in system.alive_peers())[0]
            system.set_misbehavior(
                bogus_id, MisbehaviorConfig(bogus_responses=True)
            )
            workload = make_query_workload(instance, 80, seed=5)
            system.run_workload(workload)
        finally:
            unregister()
        assert "response-integrity" not in checker.violated_invariants

    def test_forged_infos_trip_the_integrity_invariant(self):
        # forge_infos makes the fabricated response pass the requester's
        # local length check — the system-level audit must catch it.
        instance, system = build()
        checker = InvariantChecker(system)
        unregister = system.sim.on_quiescence(checker.check_structural)
        try:
            bogus_id = sorted(p.node_id for p in system.alive_peers())[0]
            system.set_misbehavior(
                bogus_id,
                MisbehaviorConfig(bogus_responses=True, forge_infos=True),
            )
            workload = make_query_workload(instance, 120, seed=3)
            system.run_workload(workload)
        finally:
            unregister()
        assert system.integrity_failures()
        assert "response-integrity" in checker.violated_invariants

    def test_integrity_violations_not_rereported_each_step(self):
        instance, system = build()
        checker = InvariantChecker(system)
        bogus_id = sorted(p.node_id for p in system.alive_peers())[0]
        system.set_misbehavior(
            bogus_id, MisbehaviorConfig(bogus_responses=True, forge_infos=True)
        )
        workload = make_query_workload(instance, 60, seed=3)
        system.run_workload(workload)
        checker.check_structural()
        count = len(checker.violations)
        assert count > 0
        checker.check_structural()  # same audit state, no new failures
        assert len(checker.violations) == count


class TestHonestWorlds:
    def test_audit_not_armed_by_default(self):
        _, system = build()
        assert not system.misbehavior_armed
        assert system.misbehaving_node_ids() == []

    def test_unknown_node_rejected(self):
        _, system = build()
        with pytest.raises(ValueError, match="unknown node"):
            system.set_misbehavior(10_000, MisbehaviorConfig(bogus_responses=True))

    def test_honest_world_runs_no_integrity_checks(self):
        # Gating keeps honest worlds' check counts (and goldens) intact.
        from repro import obs

        obs.reset()
        instance, system = build()
        checker = InvariantChecker(system)
        checker.check_structural()
        assert "response-integrity" not in checker.violated_invariants
        timer = obs.REGISTRY.get("chaos.invariant.response-integrity_s")
        assert timer is None or timer.count == 0


class TestStaleGossip:
    def test_stale_replayer_does_not_corrupt_convergence(self):
        instance, system = build()
        stale_id = sorted(p.node_id for p in system.alive_peers())[0]
        system.set_misbehavior(stale_id, MisbehaviorConfig(stale_gossip=True))
        checker = InvariantChecker(system)
        # Drive many gossip rounds with the stale peer replaying its
        # frozen digest; the move-counter merge order makes the replay
        # harmless, so the network still converges.
        system.run_gossip_rounds(8)
        assert checker.check_convergence()
        assert not checker.violations

    def test_stale_digest_is_frozen_at_arming_time(self):
        instance, system = build()
        stale_id = sorted(p.node_id for p in system.alive_peers())[0]
        peer = system.peer(stale_id)
        system.set_misbehavior(stale_id, MisbehaviorConfig(stale_gossip=True))
        frozen = peer._stale_gossip_digest
        assert frozen is not None
        assert frozen == tuple(peer.dcrt.snapshot().items())

    def test_stale_replayer_converges_after_a_real_move(self):
        from repro.overlay.adaptation import broadcast_notice, plan_category_move

        instance, system = build()
        stale_id = sorted(p.node_id for p in system.alive_peers())[0]
        system.set_misbehavior(stale_id, MisbehaviorConfig(stale_gossip=True))
        # A genuine category move bumps its move counter past the frozen
        # digest; replays of the stale digest must not roll anyone back.
        category_id = 0
        source = int(system.assignment.category_to_cluster[category_id])
        target = next(
            cluster_id
            for cluster_id in range(system.assignment.n_clusters)
            if cluster_id != source and system.peers_in_cluster(cluster_id)
        )
        notice = plan_category_move(system, category_id, source, target)
        coordinator = min(p.node_id for p in system.peers_in_cluster(source))
        broadcast_notice(system, notice, coordinator)
        system.sim.run()
        system.run_gossip_rounds(12)
        checker = InvariantChecker(system)
        assert checker.check_convergence()
        # The stale peer merges incoming gossip honestly, so even it
        # learns the new owner despite replaying its frozen digest.
        stale_peer = system.peer(stale_id)
        assert stale_peer.dcrt.cluster_of(category_id) == target
