"""Tests for the routing-indices pure-P2P alternative."""

import numpy as np
import pytest

from repro.overlay.routing_indices import RoutingIndexOverlay


def _chain(n):
    return {i: ({i - 1} if i > 0 else set()) | ({i + 1} if i < n - 1 else set())
            for i in range(n)}


class TestIndexConstruction:
    def test_cri_reflects_reachable_documents(self):
        overlay = RoutingIndexOverlay(_chain(3))
        overlay.set_local_documents(2, {7: 4})
        overlay.build_indices()
        # Node 0 sees 4 documents of category 7 through neighbour 1.
        assert overlay.nodes[0].cri[1][7] == 4
        # Node 1 sees them through neighbour 2, not through 0.
        assert overlay.nodes[1].cri[2][7] == 4
        assert overlay.nodes[1].cri[0].get(7, 0) == 0

    def test_aggregates_exclude_back_edge(self):
        overlay = RoutingIndexOverlay(_chain(3))
        overlay.set_local_documents(0, {7: 1})
        overlay.set_local_documents(2, {7: 2})
        overlay.build_indices()
        # What node 1 advertises to node 2 excludes node 2's own branch.
        advertised = overlay.nodes[1].aggregate(exclude=2)
        assert advertised[7] == 1

    def test_fixpoint_reached(self):
        overlay = RoutingIndexOverlay(_chain(6))
        overlay.set_local_documents(5, {3: 2})
        iterations = overlay.build_indices()
        assert iterations < 100
        assert overlay.nodes[0].cri[1][3] == 2

    def test_unknown_edge_rejected(self):
        with pytest.raises(ValueError):
            RoutingIndexOverlay({0: {1}})


class TestSearch:
    def test_found_locally(self):
        overlay = RoutingIndexOverlay(_chain(3))
        overlay.set_local_documents(0, {7: 1})
        overlay.build_indices()
        result = overlay.search(0, 7)
        assert result.found
        assert result.hops == 0

    def test_greedy_walk_follows_index(self):
        overlay = RoutingIndexOverlay(_chain(5))
        overlay.set_local_documents(4, {7: 3})
        overlay.build_indices()
        result = overlay.search(0, 7)
        assert result.found
        assert result.hops == 4
        assert result.visited == (0, 1, 2, 3, 4)

    def test_prefers_richer_branch(self):
        # Star: center 0, leaves 1 (1 doc) and 2 (5 docs).
        overlay = RoutingIndexOverlay({0: {1, 2}, 1: {0}, 2: {0}})
        overlay.set_local_documents(1, {7: 1})
        overlay.set_local_documents(2, {7: 5})
        overlay.build_indices()
        result = overlay.search(0, 7)
        assert result.found
        assert result.visited == (0, 2)

    def test_not_found(self):
        overlay = RoutingIndexOverlay(_chain(4))
        overlay.build_indices()
        result = overlay.search(0, 7)
        assert not result.found

    def test_backtracking_out_of_dead_end(self):
        # Y shape: 0-1, 1-2 (empty tail), 1-3 (holds the doc).  The index
        # never points into the empty tail, but force a scenario where
        # goodness ties could mislead: give 2 a tiny count of another
        # category so the walk may try it, then must backtrack to reach 3.
        adjacency = {0: {1}, 1: {0, 2, 3}, 2: {1}, 3: {1}}
        overlay = RoutingIndexOverlay(adjacency)
        overlay.set_local_documents(3, {7: 1})
        overlay.build_indices()
        result = overlay.search(0, 7)
        assert result.found
        assert 3 in result.visited

    def test_hop_budget(self):
        overlay = RoutingIndexOverlay(_chain(20))
        overlay.set_local_documents(19, {7: 1})
        overlay.build_indices()
        result = overlay.search(0, 7, max_hops=3)
        assert not result.found

    def test_usable_for_intra_cluster_search(self):
        """End-to-end: random cluster topology, RI search finds content in
        a bounded number of hops without any DCRT/NRT metadata."""
        rng = np.random.default_rng(3)
        from repro.overlay.cluster import build_cluster_graph

        graph = build_cluster_graph(0, range(30), rng, degree=4)
        overlay = RoutingIndexOverlay(
            {n: set(graph.neighbors(n)) for n in graph.members}
        )
        holders = rng.choice(30, size=3, replace=False)
        for holder in holders:
            overlay.set_local_documents(int(holder), {7: 1})
        overlay.build_indices()
        for start in range(30):
            result = overlay.search(start, 7)
            assert result.found, start
            assert result.hops <= 30
