"""Per-peer service model: bounded intake queue + admission control.

Pins the tentpole behaviours of :mod:`repro.overlay.service`: the model
is off by default (instant, unbounded serving — byte-identical legacy
runs), service time scales inversely with capacity, the queue bound
holds, accounting conserves queries, each admission policy sheds the
right victim, and every run drains back to quiescence.
"""

import pytest

from repro import obs
from repro.overlay.peer import PeerConfig
from repro.overlay.service import ADMISSION_POLICIES, ServiceConfig
from tests.helpers import MicroOverlay


def _service_config(**overrides) -> ServiceConfig:
    defaults = dict(
        enabled=True,
        base_service_time=0.2,
        queue_capacity=4,
        policy="drop-tail",
    )
    defaults.update(overrides)
    return ServiceConfig(**defaults)


def _single_server_world(config: ServiceConfig):
    """Client 0 -> server 1 (cluster 0, category 0, doc 7)."""
    overlay = MicroOverlay(seed=0)
    server = overlay.add_peer(1, config=PeerConfig(service=config))
    client = overlay.add_peer(0)
    overlay.wire_cluster(0, [1], edges=[], category_map={0: 0})
    overlay.give_document(1, 7, [0])
    client.dcrt.set(0, 0)
    client.nrt.add(0, 1)
    return overlay, server, client


def _burst(overlay, client, query_ids, category=0, doc_id=7):
    """Issue queries back-to-back so they all land during one service."""
    for offset, query_id in enumerate(query_ids):
        overlay.sim.schedule_at(
            offset * 1e-4,
            lambda q=query_id, c=category, d=doc_id: client.start_query(
                q, c, 1, target_doc_id=d
            ),
        )
    overlay.run()


class TestDefaults:
    def test_disabled_by_default(self):
        overlay = MicroOverlay()
        peer = overlay.add_peer(1)
        assert peer._service is None
        assert peer.service_snapshot() is None

    def test_disabled_peer_serves_instantly(self):
        overlay, server, client = _single_server_world(ServiceConfig())
        assert server._service is None
        client.start_query(1, 0, 1, target_doc_id=7)
        overlay.run()
        (response_entry,) = overlay.hooks.responses
        # Two network hops only: no service delay was added.
        assert overlay.sim.now < 0.2

    def test_enabled_peer_pays_service_time(self):
        overlay, server, client = _single_server_world(
            _service_config(base_service_time=0.5)
        )
        client.start_query(1, 0, 1, target_doc_id=7)
        overlay.run()
        assert [entry[1].query_id for entry in overlay.hooks.responses] == [1]
        assert overlay.sim.now >= 0.5

    def test_service_time_scales_with_capacity(self):
        overlay = MicroOverlay()
        config = PeerConfig(service=_service_config(base_service_time=0.4))
        strong = overlay.add_peer(1, capacity=4.0, config=config)
        weak = overlay.add_peer(2, capacity=0.5, config=config)
        assert strong._service.service_time == pytest.approx(0.1)
        assert weak._service.service_time == pytest.approx(0.8)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ServiceConfig(base_service_time=0.0)
        with pytest.raises(ValueError):
            ServiceConfig(queue_capacity=-1)
        with pytest.raises(ValueError):
            ServiceConfig(policy="lifo")
        with pytest.raises(ValueError):
            ServiceConfig(busy_retry_after=-0.1)
        assert set(ADMISSION_POLICIES) == {
            "drop-tail", "shed-popular", "redirect",
        }


class TestDropTail:
    def test_burst_bounds_queue_and_conserves_queries(self):
        c_busy = obs.counter("overload.busy_signals")
        g_depth = obs.gauge("overload.queue_depth")
        busy_before, depth_before = c_busy.value, g_depth.value
        overlay, server, client = _single_server_world(
            _service_config(queue_capacity=4)
        )
        _burst(overlay, client, range(10))

        snap = server.service_snapshot()
        assert snap["offered"] == 10
        assert snap["capacity"] == 4
        assert snap["max_depth"] <= snap["capacity"]
        # One in service + four queued fit; the last five are shed.
        assert snap["processed"] == 5
        assert snap["shed"] == 5
        assert snap["redirected"] == 0
        assert (
            snap["processed"] + snap["shed"] + snap["redirected"]
            == snap["offered"]
        )
        assert c_busy.value - busy_before == 5

        # FIFO: the earliest queries were admitted, the overflow shed.
        served = sorted(e[1].query_id for e in overlay.hooks.responses)
        assert served == [0, 1, 2, 3, 4]
        # Reliability is off, so a BUSY is terminal at the requester.
        assert overlay.hooks.failures == [
            (0, q, "overloaded") for q in (5, 6, 7, 8, 9)
        ]

        # Drained to quiescence, gauge restored.
        assert snap["depth"] == 0
        assert snap["in_service"] is False
        assert g_depth.value == depth_before

    def test_unbounded_queue_never_sheds(self):
        overlay, server, client = _single_server_world(
            _service_config(queue_capacity=0)
        )
        _burst(overlay, client, range(10))
        snap = server.service_snapshot()
        assert snap["processed"] == 10
        assert snap["shed"] == 0
        assert snap["max_depth"] == 9  # everything behind the first waited
        assert not overlay.hooks.failures


class TestShedPopular:
    def _world(self):
        overlay = MicroOverlay(seed=0)
        server = overlay.add_peer(
            1,
            config=PeerConfig(
                service=_service_config(policy="shed-popular", queue_capacity=2)
            ),
        )
        client = overlay.add_peer(0)
        overlay.wire_cluster(0, [1], edges=[], category_map={0: 0, 1: 0})
        overlay.give_document(1, 10, [0])
        overlay.give_document(1, 11, [1])
        for category in (0, 1):
            client.dcrt.set(category, 0)
        client.nrt.add(0, 1)
        return overlay, server, client

    def test_hot_queued_query_yields_to_cold_incoming(self):
        overlay, server, client = self._world()
        server.hit_counters[0] = 50  # category 0 is hot (replicated elsewhere)
        # q0 enters service, q1/q2 (hot) fill the queue, q3 (cold) overflows.
        for offset, (query_id, category) in enumerate(
            [(0, 0), (1, 0), (2, 0), (3, 1)]
        ):
            doc_id = 10 if category == 0 else 11
            overlay.sim.schedule_at(
                offset * 1e-4,
                lambda q=query_id, c=category, d=doc_id: client.start_query(
                    q, c, 1, target_doc_id=d
                ),
            )
        overlay.run()

        # The hottest queued query (q1) was shed in favour of the cold one.
        assert overlay.hooks.failures == [(0, 1, "overloaded")]
        served = sorted(e[1].query_id for e in overlay.hooks.responses)
        assert served == [0, 2, 3]

    def test_cold_queued_query_survives_hot_incoming(self):
        overlay, server, client = self._world()
        server.hit_counters[0] = 50
        # q0 enters service, q1/q2 (cold) fill the queue, q3 (hot) overflows:
        # the incoming query is itself the most popular, so it is shed.
        for offset, (query_id, category) in enumerate(
            [(0, 1), (1, 1), (2, 1), (3, 0)]
        ):
            doc_id = 10 if category == 0 else 11
            overlay.sim.schedule_at(
                offset * 1e-4,
                lambda q=query_id, c=category, d=doc_id: client.start_query(
                    q, c, 1, target_doc_id=d
                ),
            )
        overlay.run()
        assert overlay.hooks.failures == [(0, 3, "overloaded")]
        served = sorted(e[1].query_id for e in overlay.hooks.responses)
        assert served == [0, 1, 2]


class TestRedirect:
    def test_overflow_redirects_to_replica_holder(self):
        c_redirected = obs.counter("overload.redirected")
        redirected_before = c_redirected.value
        overlay = MicroOverlay(seed=0)
        slow = overlay.add_peer(
            1,
            config=PeerConfig(
                service=_service_config(
                    policy="redirect", queue_capacity=1, base_service_time=0.5
                )
            ),
        )
        overlay.add_peer(2)  # replica holder, instant service
        client = overlay.add_peer(0)
        overlay.wire_cluster(0, [1, 2], edges=[(1, 2)], category_map={0: 0})
        overlay.give_document(1, 7, [0])
        overlay.give_document(2, 7, [0])
        client.dcrt.set(0, 0)
        client.nrt.add(0, 1)  # the client only ever targets the slow node

        _burst(overlay, client, range(6))

        snap = slow.service_snapshot()
        assert snap["processed"] == 2  # one served + one queued
        assert snap["redirected"] == 4
        assert snap["shed"] == 0
        assert c_redirected.value - redirected_before == 4
        assert not overlay.hooks.failures
        # Every query got an answer; the overflow came from the holder.
        responders = [e[1].responder_id for e in overlay.hooks.responses]
        assert len(responders) == 6
        assert responders.count(2) == 4

    def test_redirect_without_alternatives_sheds(self):
        overlay, server, client = _single_server_world(
            _service_config(policy="redirect", queue_capacity=1)
        )
        _burst(overlay, client, range(4))
        snap = server.service_snapshot()
        # Sole member and sole holder: redirect has nowhere to go.
        assert snap["redirected"] == 0
        assert snap["shed"] == 2
        assert len(overlay.hooks.failures) == 2
