"""Tests for repro.model.workload."""

import numpy as np
import pytest

from repro.model.workload import (
    add_hot_documents,
    make_query_workload,
    node_churn_events,
    uniform_category_scenario,
    zipf_category_scenario,
)


class TestScenarios:
    def test_zipf_scenario_scales(self):
        instance = zipf_category_scenario(scale=0.01, seed=1)
        assert len(instance.documents) == 2000
        assert len(instance.nodes) == 200
        assert len(instance.categories) == 5
        assert instance.n_clusters == 1

    def test_uniform_scenario_near_uniform_docs(self):
        instance = uniform_category_scenario(scale=0.02, seed=2)
        docs_per_category = np.array([c.n_docs for c in instance.categories])
        assert docs_per_category.std() / docs_per_category.mean() < 0.3

    def test_scenarios_validate(self):
        zipf_category_scenario(scale=0.01, seed=3).validate()
        uniform_category_scenario(scale=0.01, seed=3).validate()


class TestQueryWorkload:
    def test_length_and_determinism(self, small_instance):
        a = make_query_workload(small_instance, 100, seed=5)
        b = make_query_workload(small_instance, 100, seed=5)
        assert len(a) == 100
        assert [q.target_doc_id for q in a] == [q.target_doc_id for q in b]

    def test_different_seed_differs(self, small_instance):
        a = make_query_workload(small_instance, 100, seed=5)
        b = make_query_workload(small_instance, 100, seed=6)
        assert [q.target_doc_id for q in a] != [q.target_doc_id for q in b]

    def test_queries_follow_popularity(self, small_instance):
        workload = make_query_workload(small_instance, 20_000, seed=7)
        counts = workload.doc_hit_counts(len(small_instance.documents))
        popularity = np.array(
            [small_instance.documents[d].popularity
             for d in sorted(small_instance.documents)]
        )
        # Correlation between request counts and popularity must be strong.
        correlation = np.corrcoef(counts, popularity)[0, 1]
        assert correlation > 0.8

    def test_category_ids_match_target_doc(self, small_instance):
        workload = make_query_workload(small_instance, 50, seed=8)
        for query in workload:
            doc = small_instance.documents[query.target_doc_id]
            assert query.category_ids == doc.categories

    def test_requesters_are_valid_nodes(self, small_instance):
        workload = make_query_workload(small_instance, 50, seed=9)
        for query in workload:
            assert query.requester_id in small_instance.nodes

    def test_m_parameter(self, small_instance):
        workload = make_query_workload(small_instance, 10, seed=10, m=5)
        assert all(q.m == 5 for q in workload)

    def test_category_hit_counts(self, small_instance):
        workload = make_query_workload(small_instance, 200, seed=11)
        counts = workload.category_hit_counts(len(small_instance.categories))
        assert counts.sum() == pytest.approx(200)

    def test_rejects_negative_count(self, small_instance):
        with pytest.raises(ValueError):
            make_query_workload(small_instance, -1)


class TestAddHotDocuments:
    def test_mass_fraction_respected(self, mutable_instance):
        before = mutable_instance.total_popularity
        result = add_hot_documents(
            mutable_instance, doc_fraction=0.05, mass_fraction=0.30, seed=1
        )
        after = mutable_instance.total_popularity
        new_mass = sum(
            mutable_instance.documents[d].popularity for d in result.new_doc_ids
        )
        assert new_mass / after == pytest.approx(0.30, rel=1e-6)
        assert after == pytest.approx(before + result.added_mass)

    def test_doc_fraction_respected(self, mutable_instance):
        n_before = len(mutable_instance.documents)
        result = add_hot_documents(mutable_instance, doc_fraction=0.05, seed=2)
        assert len(result.new_doc_ids) == round(n_before * 0.05)

    def test_instance_still_valid(self, mutable_instance):
        add_hot_documents(mutable_instance, seed=3)
        mutable_instance.validate()

    def test_category_subset_limits_targets(self, mutable_instance):
        result = add_hot_documents(
            mutable_instance, seed=4, category_subset_fraction=0.1
        )
        n_categories = len(mutable_instance.categories)
        assert len(result.affected_categories) <= max(1, round(n_categories * 0.1))

    def test_rejects_bad_fractions(self, mutable_instance):
        with pytest.raises(ValueError):
            add_hot_documents(mutable_instance, doc_fraction=0.0)
        with pytest.raises(ValueError):
            add_hot_documents(mutable_instance, mass_fraction=1.0)
        with pytest.raises(ValueError):
            add_hot_documents(mutable_instance, category_subset_fraction=0.0)

    def test_deterministic(self, small_config):
        from repro.model.system import build_system

        a = build_system(small_config)
        b = build_system(small_config)
        ra = add_hot_documents(a, seed=5)
        rb = add_hot_documents(b, seed=5)
        assert ra.new_doc_ids == rb.new_doc_ids
        assert ra.affected_categories == rb.affected_categories


class TestChurnEvents:
    def test_event_times_sorted_and_bounded(self, small_instance):
        events = node_churn_events(
            small_instance, duration=100.0, leave_rate=0.5, join_rate=0.3, seed=1
        )
        times = [e.time for e in events]
        assert times == sorted(times)
        assert all(0 <= t < 100.0 for t in times)

    def test_leavers_are_distinct_members(self, small_instance):
        events = node_churn_events(
            small_instance, duration=50.0, leave_rate=1.0, join_rate=0.0, seed=2
        )
        leavers = [e.node_id for e in events if e.kind == "leave"]
        assert len(set(leavers)) == len(leavers)
        assert all(n in small_instance.nodes for n in leavers)

    def test_joiners_get_fresh_ids(self, small_instance):
        events = node_churn_events(
            small_instance, duration=50.0, leave_rate=0.0, join_rate=1.0, seed=3
        )
        joiners = [e.node_id for e in events if e.kind == "join"]
        assert all(n not in small_instance.nodes for n in joiners)
        assert len(set(joiners)) == len(joiners)

    def test_zero_rates(self, small_instance):
        assert node_churn_events(
            small_instance, duration=10.0, leave_rate=0.0, join_rate=0.0
        ) == []

    def test_rejects_bad_args(self, small_instance):
        with pytest.raises(ValueError):
            node_churn_events(small_instance, duration=0, leave_rate=1, join_rate=1)
        with pytest.raises(ValueError):
            node_churn_events(small_instance, duration=10, leave_rate=-1, join_rate=0)
