"""Property tests for the scenario engine's core contracts.

Four properties, each over randomly composed specs:

1. the same spec + seed always yields a byte-identical event stream;
2. the instantaneous rate is non-negative under any diurnal composition;
3. the time-varying popularity law conserves probability mass (and stays
   non-negative) through drift and any sequence of skew flips;
4. every spec survives a JSON round trip unchanged.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.model.system import SystemConfig, build_system
from repro.model.zipf import TimeVaryingZipfSampler
from repro.scenario import (
    DiurnalSpec,
    DriftSpec,
    FreeRiderSpec,
    MisbehaviorSpec,
    RegionalPartitionSpec,
    ScenarioSpec,
    SkewFlipSpec,
    generate_events,
    rate_at,
)

#: one shared small world — the properties quantify over specs, not worlds.
INSTANCE = build_system(
    SystemConfig(
        seed=17,
        n_docs=60,
        n_nodes=9,
        n_categories=6,
        n_clusters=3,
        doc_size_bytes=65_536,
    )
)

finite = dict(allow_nan=False, allow_infinity=False)

diurnals = st.builds(
    DiurnalSpec,
    period=st.floats(0.5, 48.0, **finite),
    amplitude=st.floats(0.0, 1.0, **finite),
    phase=st.floats(-2.0, 2.0, **finite),
    regional_offsets=st.lists(
        st.floats(0.0, 1.0, **finite), max_size=4
    ).map(tuple),
)
drifts = st.builds(DriftSpec, ranks_per_unit=st.floats(0.0, 10.0, **finite))
flips = st.lists(
    st.builds(
        SkewFlipSpec,
        at=st.floats(0.0, 8.0, **finite),
        mass=st.floats(0.05, 0.95, **finite),
        n_hot=st.integers(1, 10),
    ),
    max_size=3,
).map(tuple)

specs = st.builds(
    ScenarioSpec,
    name=st.just("prop"),
    seed=st.integers(0, 2**31 - 1),
    duration=st.floats(1.0, 8.0, **finite),
    base_rate=st.floats(0.0, 40.0, **finite),
    m=st.integers(1, 3),
    n_regions=st.integers(1, 4),
    window=st.floats(0.25, 2.0, **finite),
    diurnal=st.none() | diurnals,
    drift=st.none() | drifts,
    flips=flips,
    free_riders=st.none()
    | st.builds(FreeRiderSpec, fraction=st.floats(0.0, 0.5, **finite)),
    misbehavior=st.none()
    | st.builds(
        MisbehaviorSpec,
        at=st.floats(0.0, 8.0, **finite),
        n_bogus=st.integers(0, 2),
        n_stale_gossip=st.integers(0, 2),
    ),
    partitions=st.lists(
        st.builds(
            RegionalPartitionSpec,
            at=st.floats(0.0, 6.0, **finite),
            duration=st.floats(0.1, 4.0, **finite),
            region=st.integers(0, 3),
        ),
        max_size=2,
    ).map(tuple),
)


@settings(max_examples=40, deadline=None)
@given(spec=specs)
def test_same_spec_yields_byte_identical_streams(spec):
    first = generate_events(spec, INSTANCE).canonical_bytes()
    second = generate_events(spec, INSTANCE).canonical_bytes()
    assert first == second


@settings(max_examples=100, deadline=None)
@given(
    spec=specs,
    t=st.floats(0.0, 100.0, **finite),
    region=st.integers(0, 7),
)
def test_instantaneous_rate_never_negative(spec, t, region):
    assert rate_at(spec, t, region) >= 0.0


@settings(max_examples=60, deadline=None)
@given(
    drift=st.floats(0.0, 20.0, **finite),
    flip_points=st.lists(
        st.tuples(
            st.floats(0.0, 10.0, **finite),   # at
            st.floats(0.05, 0.95, **finite),  # mass
            st.integers(1, 8),                # n_hot
        ),
        max_size=3,
    ),
    t=st.floats(0.0, 12.0, **finite),
    n_items=st.integers(2, 50),
)
def test_popularity_mass_conserved_through_drift_and_flips(
    drift, flip_points, t, n_items
):
    rng = np.random.default_rng(0)
    pmf = rng.random(n_items) + 0.01
    flips = tuple(
        (at, mass, tuple(range(min(n_hot, n_items))))
        for at, mass, n_hot in flip_points
    )
    sampler = TimeVaryingZipfSampler(
        pmf, drift_ranks_per_unit=drift, flips=flips
    )
    law = sampler.pmf_at(t)
    assert law.sum() == pytest.approx(1.0, abs=1e-9)
    assert (law >= 0.0).all()


@settings(max_examples=60, deadline=None)
@given(spec=specs)
def test_spec_survives_json_round_trip(spec):
    assert ScenarioSpec.from_json(spec.to_json()) == spec
