"""The versioned wire envelope: round-trip fidelity and fast-fail decode.

The decode contract under test: any byte string either decodes to a
valid :class:`WireFrame` or raises :class:`WireDecodeError` — never an
``IndexError``, ``KeyError``, or other incidental exception — and an
unsupported schema tag is rejected before any other field is examined.
"""

import json
import random

import pytest

from repro.overlay import messages as m
from repro.overlay.metadata import DCRTEntry
from repro.transport.wire import (
    HEADER_BYTES,
    MAX_BODY_BYTES,
    WIRE_SCHEMA,
    WireDecodeError,
    WireError,
    WireFrame,
    available_codecs,
    decode_envelope,
    decode_frame,
    encode_envelope,
    encode_frame,
)

PAYLOADS = [
    None,
    m.QueryMessage(query_id=7, requester_id=1, category_id=3, remaining=2),
    m.QueryResponse(
        query_id=7,
        doc_ids=(4, 9),
        responder_id=2,
        hops=3,
        dcrt_updates=((3, DCRTEntry(1, 5)),),
        doc_infos=(m.DocInfo(doc_id=4, categories=(3, 5), size_bytes=1024),),
    ),
    m.JoinReply(
        responder_id=0,
        dcrt_snapshot=((0, DCRTEntry(0, 0)), (1, DCRTEntry(2, 3))),
        nrt_snapshot=((0, (0, 1, 2)), (2, (5,))),
    ),
    m.ChunkData(
        request_id=1_000_000_000_001,
        fetch_id=12,
        responder_id=3,
        doc_id=4,
        chunk_index=1,
        chunk_hash=(1 << 62) + 17,
        size_bytes=65_536,
    ),
    m.Ack(delivery_id=55, receiver_id=9),
]


@pytest.mark.parametrize("payload", PAYLOADS, ids=lambda p: type(p).__name__)
def test_frame_round_trip(payload):
    frame = WireFrame(
        kind="test",
        src=1,
        dst=2,
        payload=payload,
        size_bytes=512,
        delivery_id=7,
        attempt=2,
    )
    decoded = decode_frame(encode_frame(frame))
    assert decoded == frame  # tuples and nested types restored exactly


def test_round_trip_defaults():
    frame = WireFrame(kind="ping", src=0, dst=1)
    decoded = decode_frame(encode_frame(frame))
    assert decoded.size_bytes == 256
    assert decoded.delivery_id == -1
    assert decoded.attempt == 0


def test_unknown_schema_fails_fast():
    envelope = encode_envelope(WireFrame(kind="x", src=0, dst=1))
    envelope["schema"] = "repro.wire/v2"
    # Fast-fail contract: the schema is checked before anything else, so
    # even an otherwise-broken envelope reports the schema mismatch.
    envelope["payload"] = {"nonsense": True}
    del envelope["kind"]
    with pytest.raises(WireDecodeError, match="unsupported wire schema"):
        decode_envelope(envelope)


def test_missing_schema_rejected():
    with pytest.raises(WireDecodeError, match="unsupported wire schema"):
        decode_envelope({"kind": "x", "src": 0, "dst": 1})


def test_non_mapping_envelope_rejected():
    with pytest.raises(WireDecodeError, match="mapping"):
        decode_envelope([1, 2, 3])


def test_unregistered_payload_type_rejected():
    envelope = encode_envelope(WireFrame(kind="x", src=0, dst=1))
    envelope["payload"] = {"type": "NoSuchMessage", "fields": {}}
    with pytest.raises(WireDecodeError, match="payload failed to decode"):
        decode_envelope(envelope)


def test_truncated_header_rejected():
    with pytest.raises(WireDecodeError, match="truncated"):
        decode_frame(b"\x00\x01")


def test_length_mismatch_rejected():
    data = encode_frame(WireFrame(kind="x", src=0, dst=1))
    with pytest.raises(WireDecodeError, match="length mismatch"):
        decode_frame(data[:-1])
    with pytest.raises(WireDecodeError, match="length mismatch"):
        decode_frame(data + b"!")


def test_over_cap_declared_length_rejected():
    header = (MAX_BODY_BYTES + 1).to_bytes(HEADER_BYTES, "big")
    with pytest.raises(WireDecodeError, match="exceeds cap"):
        decode_frame(header + b"x")


def test_corrupt_body_rejected():
    body = b"this is not json at all {{{"
    data = len(body).to_bytes(HEADER_BYTES, "big") + body
    with pytest.raises(WireDecodeError, match="not valid JSON"):
        decode_frame(data)


def test_unknown_codec_rejected():
    frame = WireFrame(kind="x", src=0, dst=1)
    with pytest.raises(WireError, match="unknown wire codec"):
        encode_frame(frame, codec="bson")
    with pytest.raises(WireError, match="unknown wire codec"):
        decode_frame(encode_frame(frame), codec="bson")


def test_msgpack_gated_when_absent():
    if "msgpack" in available_codecs():
        pytest.skip("msgpack installed in this environment")
    with pytest.raises(WireError, match="msgpack is not installed"):
        encode_frame(WireFrame(kind="x", src=0, dst=1), codec="msgpack")


def test_json_always_available():
    assert "json" in available_codecs()


def test_schema_tag_on_the_wire():
    data = encode_frame(WireFrame(kind="x", src=0, dst=1))
    envelope = json.loads(data[HEADER_BYTES:])
    assert envelope["schema"] == WIRE_SCHEMA


def _assert_decode_is_total(data: bytes) -> None:
    """Decode must return a frame or raise WireDecodeError — nothing else."""
    try:
        frame = decode_frame(data)
    except WireDecodeError:
        return
    assert isinstance(frame, WireFrame)


def test_fuzz_truncations():
    data = encode_frame(
        WireFrame(
            kind="query",
            src=3,
            dst=4,
            payload=m.QueryMessage(
                query_id=1, requester_id=3, category_id=0, remaining=1
            ),
        )
    )
    for cut in range(len(data)):
        _assert_decode_is_total(data[:cut])


def test_fuzz_corruptions():
    rng = random.Random(0xC0DEC)
    base = encode_frame(
        WireFrame(
            kind="query_response",
            src=1,
            dst=2,
            payload=PAYLOADS[2],
        )
    )
    for _ in range(400):
        data = bytearray(base)
        for _ in range(rng.randint(1, 6)):
            data[rng.randrange(len(data))] = rng.randrange(256)
        _assert_decode_is_total(bytes(data))


def test_fuzz_random_noise():
    rng = random.Random(0xBADF00D)
    for _ in range(200):
        data = bytes(rng.randrange(256) for _ in range(rng.randrange(0, 64)))
        _assert_decode_is_total(data)
