"""Edge cases of the workload generators (churn schedules, hot-doc upsets)."""

import pytest

from repro.model.system import SystemConfig, build_system
from repro.model.workload import add_hot_documents, node_churn_events

WORLD = SystemConfig(
    seed=19,
    n_docs=100,
    n_nodes=10,
    n_categories=8,
    n_clusters=3,
    doc_size_bytes=65_536,
)


@pytest.fixture()
def instance():
    return build_system(WORLD)


class TestNodeChurnEvents:
    def test_zero_rates_yield_empty_schedule(self, instance):
        assert node_churn_events(instance, 10.0, 0.0, 0.0) == []

    def test_zero_leave_rate_yields_joins_only(self, instance):
        events = node_churn_events(instance, 50.0, 0.0, 1.0)
        assert events
        assert all(event.kind == "join" for event in events)

    def test_zero_join_rate_yields_leaves_only(self, instance):
        events = node_churn_events(instance, 5.0, 1.0, 0.0)
        assert all(event.kind == "leave" for event in events)

    def test_horizon_shorter_than_first_arrival(self, instance):
        # With a tiny rate the first exponential gap almost surely
        # exceeds the horizon, so the schedule is empty.
        events = node_churn_events(instance, 1e-6, 1e-6, 1e-6)
        assert events == []

    def test_nonpositive_duration_rejected(self, instance):
        with pytest.raises(ValueError, match="duration"):
            node_churn_events(instance, 0.0, 1.0, 1.0)

    def test_negative_rate_rejected(self, instance):
        with pytest.raises(ValueError, match="rates"):
            node_churn_events(instance, 1.0, -1.0, 0.0)

    def test_reproducible_for_seed(self, instance):
        a = node_churn_events(instance, 20.0, 0.5, 0.5, seed=77)
        b = node_churn_events(instance, 20.0, 0.5, 0.5, seed=77)
        assert a == b

    def test_different_seed_differs(self, instance):
        a = node_churn_events(instance, 20.0, 0.5, 0.5, seed=1)
        b = node_churn_events(instance, 20.0, 0.5, 0.5, seed=2)
        assert a != b

    def test_sorted_by_time_within_duration(self, instance):
        events = node_churn_events(instance, 20.0, 0.5, 0.5)
        times = [event.time for event in events]
        assert times == sorted(times)
        assert all(0.0 < t < 20.0 for t in times)

    def test_leaves_never_repeat_and_name_real_nodes(self, instance):
        events = node_churn_events(instance, 200.0, 1.0, 0.0)
        leavers = [event.node_id for event in events]
        assert len(leavers) == len(set(leavers))
        assert set(leavers) <= set(instance.nodes)
        # more leave arrivals than nodes: the schedule stops at the
        # population size instead of inventing departures.
        assert len(leavers) <= len(instance.nodes)

    def test_joins_use_fresh_ids_above_existing_range(self, instance):
        events = node_churn_events(instance, 50.0, 0.0, 1.0)
        join_ids = [event.node_id for event in events]
        assert min(join_ids) == max(instance.nodes) + 1
        assert len(join_ids) == len(set(join_ids))


class TestAddHotDocumentsMass:
    def test_mass_fraction_of_resulting_total(self, instance):
        before = instance.total_popularity
        result = add_hot_documents(
            instance, doc_fraction=0.05, mass_fraction=0.30, seed=4
        )
        after = instance.total_popularity
        # added / resulting == mass_fraction (the Figure 4 contract).
        assert result.added_mass / after == pytest.approx(0.30)
        assert after == pytest.approx(before + result.added_mass)
        instance.validate()

    def test_new_docs_carry_exactly_the_added_mass(self, instance):
        result = add_hot_documents(
            instance, doc_fraction=0.05, mass_fraction=0.25, seed=4
        )
        new_mass = sum(
            instance.documents[doc_id].popularity
            for doc_id in result.new_doc_ids
        )
        assert new_mass == pytest.approx(result.added_mass)

    def test_doc_count_rounds_doc_fraction(self, instance):
        result = add_hot_documents(instance, doc_fraction=0.05, seed=4)
        assert len(result.new_doc_ids) == 5  # 5% of 100

    def test_affected_categories_match_new_docs(self, instance):
        result = add_hot_documents(instance, doc_fraction=0.1, seed=4)
        observed = {
            category_id
            for doc_id in result.new_doc_ids
            for category_id in instance.documents[doc_id].categories
        }
        assert tuple(sorted(observed)) == result.affected_categories

    def test_category_subset_concentrates_targets(self, instance):
        result = add_hot_documents(
            instance,
            doc_fraction=0.2,
            seed=4,
            category_subset_fraction=0.25,
        )
        assert len(result.affected_categories) <= 2  # 25% of 8 categories

    def test_invalid_fractions_rejected(self, instance):
        with pytest.raises(ValueError, match="doc_fraction"):
            add_hot_documents(instance, doc_fraction=0.0)
        with pytest.raises(ValueError, match="mass_fraction"):
            add_hot_documents(instance, mass_fraction=1.0)
        with pytest.raises(ValueError, match="category_subset_fraction"):
            add_hot_documents(instance, category_subset_fraction=0.0)
