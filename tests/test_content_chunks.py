"""Unit tests for the chunk math and content hashes (repro.content.chunks)."""

import pytest

from repro.content.chunks import (
    CHUNK_REQUEST_ID_BASE,
    DEFAULT_CHUNK_SIZE,
    ContentConfig,
    chunk_bytes,
    chunk_hash,
    corrupted_hash,
    n_chunks,
)
from repro.model.documents import Document


class TestNChunks:
    def test_ceil_division(self):
        assert n_chunks(1, 10) == 1
        assert n_chunks(10, 10) == 1
        assert n_chunks(11, 10) == 2
        assert n_chunks(100, 10) == 10
        assert n_chunks(101, 10) == 11

    def test_never_zero(self):
        # Even degenerate sizes occupy one chunk: every document has at
        # least one unit of transferable, hashable content.
        assert n_chunks(0, 10) == 1
        assert n_chunks(-5, 10) == 1

    def test_chaos_world_documents_split_into_four(self):
        # The chaos worlds use 256 KiB documents; at the default chunk
        # size they split into exactly four chunks.
        assert n_chunks(262_144, DEFAULT_CHUNK_SIZE) == 4


class TestChunkBytes:
    def test_full_chunks_then_short_tail(self):
        assert chunk_bytes(25, 0, 10) == 10
        assert chunk_bytes(25, 1, 10) == 10
        assert chunk_bytes(25, 2, 10) == 5

    def test_exact_multiple_has_no_short_tail(self):
        assert chunk_bytes(30, 2, 10) == 10

    def test_sums_to_document_size(self):
        for size in (1, 9, 10, 11, 25, 262_144):
            total = n_chunks(size, 10)
            assert sum(chunk_bytes(size, i, 10) for i in range(total)) == size

    def test_out_of_range_rejected(self):
        with pytest.raises(IndexError):
            chunk_bytes(25, 3, 10)
        with pytest.raises(IndexError):
            chunk_bytes(25, -1, 10)


class TestChunkHash:
    def test_deterministic(self):
        assert chunk_hash(7, 3) == chunk_hash(7, 3)

    def test_depends_on_doc_and_index(self):
        values = {
            chunk_hash(doc_id, index)
            for doc_id in range(20)
            for index in range(8)
        }
        assert len(values) == 20 * 8  # no collisions at this scale

    def test_fits_wire_scalar_range(self):
        # Hashes must survive the JSON wire codec as plain ints.
        for doc_id in (0, 1, 99, 10**9):
            value = chunk_hash(doc_id, 0)
            assert 0 <= value < 2**63

    def test_corruption_always_changes_the_hash(self):
        for doc_id in range(50):
            value = chunk_hash(doc_id, 0)
            assert corrupted_hash(value) != value
            assert 0 <= corrupted_hash(value) < 2**63

    def test_corruption_is_an_involution(self):
        # Repairing writes the true hash back; corrupting twice models
        # nothing, but the XOR mask guarantees it round-trips.
        value = chunk_hash(3, 1)
        assert corrupted_hash(corrupted_hash(value)) == value


class TestContentConfig:
    def test_disabled_by_default(self):
        config = ContentConfig()
        assert not config.enabled
        assert config.chunk_size == DEFAULT_CHUNK_SIZE

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"chunk_size": 0},
            {"chunk_size": -1},
            {"replication_floor": 0},
            {"chunk_timeout": 0.0},
            {"max_chunk_attempts": 0},
            {"heal_fetch_limit": 0},
        ],
    )
    def test_invalid_knobs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ContentConfig(**kwargs)

    def test_request_id_namespace_is_disjoint_from_queries(self):
        # BUSY routing tells chunk requests from queries by id range.
        assert CHUNK_REQUEST_ID_BASE >= 10**12


class TestDocumentIntegration:
    def test_document_n_chunks_matches_chunk_math(self):
        doc = Document(doc_id=1, popularity=0.1, categories=(0,),
                       size_bytes=262_144)
        assert doc.n_chunks() == n_chunks(262_144, DEFAULT_CHUNK_SIZE) == 4
        assert doc.n_chunks(chunk_size=100_000) == 3

    def test_default_document_size(self):
        # The paper's 4 MB MP3 splits into 64 default-size chunks.
        doc = Document(doc_id=1, popularity=0.1, categories=(0,))
        assert doc.n_chunks() == 64
