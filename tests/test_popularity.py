"""Tests for repro.core.popularity — the four Section 4 capacity models."""

import numpy as np
import pytest

from repro.core.maxfair import Assignment
from repro.core.popularity import (
    ClusterModel,
    build_category_stats,
    cluster_members,
    normalized_cluster_popularities,
)
from repro.model.documents import Document
from repro.model.nodes import Node
from repro.model.system import SystemConfig, SystemInstance


def _tiny_instance(
    doc_specs, node_specs, n_categories, n_clusters
) -> SystemInstance:
    """Hand-build an instance from (pop, cats, contributor) and (id, units)."""
    config = SystemConfig(
        n_docs=len(doc_specs),
        n_nodes=len(node_specs),
        n_categories=n_categories,
        n_clusters=n_clusters,
        seed=0,
    )
    documents = {}
    from repro.model.documents import Category

    categories = [Category(category_id=i) for i in range(n_categories)]
    nodes = {nid: Node(node_id=nid, capacity_units=u) for nid, u in node_specs}
    node_categories: dict[int, list[int]] = {}
    for doc_id, (pop, cats, contributor) in enumerate(doc_specs):
        doc = Document(doc_id=doc_id, popularity=pop, categories=tuple(cats))
        documents[doc_id] = doc
        nodes[contributor].contribute(doc_id)
        for c in cats:
            categories[c].add_document(doc)
            node_categories.setdefault(contributor, [])
            if c not in node_categories[contributor]:
                node_categories[contributor].append(c)
    for v in node_categories.values():
        v.sort()
    return SystemInstance(
        config=config,
        documents=documents,
        categories=categories,
        nodes=nodes,
        node_categories=node_categories,
        _next_doc_id=len(documents),
    )


class TestCategoryStats:
    def test_popularity_matches_instance(self, small_instance, small_stats):
        assert np.allclose(
            small_stats.popularity, small_instance.category_popularity
        )

    def test_contributor_counts(self, small_instance, small_stats):
        for category_id in range(len(small_instance.categories)):
            expected = len(small_instance.contributors_of_category(category_id))
            assert small_stats.contributor_count[category_id] == expected

    def test_capacity_units_sum(self, small_instance, small_stats):
        for category_id in range(5):
            contributors = small_instance.contributors_of_category(category_id)
            expected = sum(
                small_instance.nodes[n].capacity_units for n in contributors
            )
            assert small_stats.capacity_units[category_id] == pytest.approx(expected)

    def test_storage_weights_sum_to_total_capacity(
        self, small_instance, small_stats
    ):
        # Each contributing node splits its units across its categories, so
        # the weights must sum to the total capacity of contributing nodes.
        total = sum(
            small_instance.nodes[n].capacity_units
            for n in small_instance.node_categories
        )
        assert small_stats.storage_weight.sum() == pytest.approx(total)

    def test_with_popularity_swaps_only_popularity(self, small_stats):
        new_pop = np.arange(small_stats.n_categories, dtype=float)
        hybrid = small_stats.with_popularity(new_pop)
        assert np.array_equal(hybrid.popularity, new_pop)
        assert hybrid.storage_weight is small_stats.storage_weight

    def test_with_popularity_rejects_bad_length(self, small_stats):
        with pytest.raises(ValueError):
            small_stats.with_popularity(np.array([1.0]))

    def test_weights_for_models(self, small_stats):
        assert (
            small_stats.weights_for(ClusterModel.UNIFORM_NODES)
            is small_stats.contributor_count
        )
        assert (
            small_stats.weights_for(ClusterModel.PROC_CAPACITY)
            is small_stats.capacity_units
        )
        assert (
            small_stats.weights_for(ClusterModel.LIMITED_STORAGE)
            is small_stats.storage_weight
        )


class TestHandComputedModels:
    """Pin the formulas of Sections 4.1-4.3.3 on a hand-checkable instance."""

    def _instance(self):
        # Two categories, two nodes: node 0 (2 units) contributes docs of
        # category 0 only (popularity 0.6); node 1 (4 units) contributes to
        # both (0.1 in category 0, 0.3 in category 1).
        return _tiny_instance(
            doc_specs=[
                (0.6, [0], 0),
                (0.1, [0], 1),
                (0.3, [1], 1),
            ],
            node_specs=[(0, 2.0), (1, 4.0)],
            n_categories=2,
            n_clusters=2,
        )

    def test_uniform_nodes_model(self):
        instance = self._instance()
        mapping = np.array([0, 1])
        values = normalized_cluster_popularities(
            instance, mapping, model=ClusterModel.UNIFORM_NODES
        )
        # cluster 0: p = 0.7, contributors {0, 1} -> count attribution 2.
        assert values[0] == pytest.approx(0.7 / 2)
        # cluster 1: p = 0.3, contributor {1}.
        assert values[1] == pytest.approx(0.3 / 1)

    def test_proc_capacity_model(self):
        instance = self._instance()
        mapping = np.array([0, 1])
        values = normalized_cluster_popularities(
            instance, mapping, model=ClusterModel.PROC_CAPACITY
        )
        assert values[0] == pytest.approx(0.7 / (2.0 + 4.0))
        assert values[1] == pytest.approx(0.3 / 4.0)

    def test_multi_category_model(self):
        instance = self._instance()
        mapping = np.array([0, 1])
        values = normalized_cluster_popularities(
            instance, mapping, model=ClusterModel.MULTI_CATEGORY
        )
        # Node 0 in cluster 0 only: contributes all 2 units to cluster 0.
        # Node 1 in both: p(S(1)) = 0.7 + 0.3 = 1.0, so it gives
        # 4 * 0.7 = 2.8 units to cluster 0 and 4 * 0.3 = 1.2 to cluster 1.
        assert values[0] == pytest.approx(0.7 / (2.0 + 2.8))
        assert values[1] == pytest.approx(0.3 / 1.2)

    def test_limited_storage_model(self):
        instance = self._instance()
        mapping = np.array([0, 1])
        values = normalized_cluster_popularities(
            instance, mapping, model=ClusterModel.LIMITED_STORAGE
        )
        # Node 0: stores only category-0 docs -> all 2 units to cluster 0.
        # Node 1: stored popularity 0.1 (cat 0) + 0.3 (cat 1) = 0.4 ->
        # 4 * 0.1/0.4 = 1 unit to cluster 0, 4 * 0.3/0.4 = 3 to cluster 1.
        assert values[0] == pytest.approx(0.7 / (2.0 + 1.0))
        assert values[1] == pytest.approx(0.3 / 3.0)

    def test_same_cluster_collapses_models(self):
        # With every category in one cluster, the *exact* models agree:
        # total popularity over total capacity (6 units).  The additive
        # per-category attributions count multi-category node 1 once per
        # category (documented approximation), giving larger denominators.
        instance = self._instance()
        mapping = np.array([0, 0])
        exact = normalized_cluster_popularities(
            instance, mapping, model=ClusterModel.MULTI_CATEGORY
        )
        assert exact[0] == pytest.approx(1.0 / 6.0)
        storage = normalized_cluster_popularities(
            instance, mapping, model=ClusterModel.LIMITED_STORAGE
        )
        # Storage weights split node 1's units across its categories, so
        # they do NOT double count: 2 + (1 + 3) = 6.
        assert storage[0] == pytest.approx(1.0 / 6.0)
        proc = normalized_cluster_popularities(
            instance, mapping, model=ClusterModel.PROC_CAPACITY
        )
        # Per-category capacity attribution counts node 1 in both
        # categories: (2 + 4) + 4 = 10.
        assert proc[0] == pytest.approx(1.0 / 10.0)


class TestNormalizedPopularities:
    def test_unassigned_categories_ignored(self, small_instance, small_stats):
        mapping = np.full(len(small_instance.categories), -1)
        values = normalized_cluster_popularities(
            small_instance, mapping, stats=small_stats
        )
        assert np.allclose(values, 0.0)

    def test_rejects_out_of_range_cluster(self, small_instance):
        mapping = np.zeros(len(small_instance.categories), dtype=int)
        mapping[0] = small_instance.n_clusters
        with pytest.raises(ValueError):
            normalized_cluster_popularities(small_instance, mapping)

    def test_cluster_members_union(self, small_instance, small_assignment):
        members = cluster_members(
            small_instance, small_assignment.category_to_cluster
        )
        covered = set().union(*members) if members else set()
        assert covered == set(small_instance.node_categories)

    def test_cluster_members_respects_assignment(
        self, small_instance, small_assignment
    ):
        members = cluster_members(
            small_instance, small_assignment.category_to_cluster
        )
        for node_id, cats in small_instance.node_categories.items():
            for category_id in cats:
                cluster = small_assignment.cluster_of(category_id)
                assert node_id in members[cluster]
