"""Smoke + shape tests for the X1-X3 future-work experiments."""

import pytest

from repro.experiments import caching, cluster_config, granularity

SCALE = 0.05


class TestClusterConfig:
    def test_tradeoff_shapes(self):
        result = cluster_config.run(scale=SCALE)
        rows = {row.n_clusters: row for row in result.rows}
        ordered = [rows[c] for c in sorted(rows)]
        distinct = []
        for row in ordered:
            if not distinct or distinct[-1].actual_clusters != row.actual_clusters:
                distinct.append(row)
        assert len(distinct) >= 3
        # More clusters -> smaller clusters (tighter worst-case hop bound)
        # and lower per-node storage; fairness never improves.
        for earlier, later in zip(distinct, distinct[1:]):
            assert later.mean_cluster_size <= earlier.mean_cluster_size + 1
            assert later.mean_node_storage_mb <= earlier.mean_node_storage_mb + 1
            assert later.fairness <= earlier.fairness + 1e-6
        # Every configuration still balances well.
        assert all(row.fairness > 0.9 for row in distinct)
        cluster_config.format_result(result)


class TestCaching:
    def test_cache_improves_balance(self):
        result = caching.run(scale=0.02, n_queries=3000, capacities=(0, 16))
        off, on = result.rows
        assert off.capacity == 0 and on.capacity == 16
        assert on.load_fairness > off.load_fairness
        assert on.hottest_share <= off.hottest_share
        assert off.cached_copies == 0
        assert on.cached_copies > 0
        caching.format_result(result)


class TestGranularity:
    def test_document_moves_are_cheaper(self):
        result = granularity.run(scale=SCALE)
        category = result.row("category")
        document = result.row("document")
        # Same start, both reach the target...
        assert category.initial_fairness == pytest.approx(
            document.initial_fairness, abs=1e-6
        )
        assert category.converged
        assert document.converged
        # ...but documents move far fewer bytes (only hot content travels),
        # at the price of more individual move operations.
        assert document.bytes_moved_mb < category.bytes_moved_mb / 5
        assert document.items_moved >= category.items_moved
        granularity.format_result(result)
