"""Tests for repro.obs — metrics primitives, tracing, exporters."""

import io
import json
import time

import pytest

from repro import obs
from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    SimHistogram,
    Timer,
    TraceLog,
)


class TestCounter:
    def test_counts(self):
        c = Counter("x")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_reset(self):
        c = Counter("x")
        c.inc(3)
        c.reset()
        assert c.value == 0

    def test_snapshot(self):
        c = Counter("hits")
        c.inc(2)
        assert c.snapshot() == {"type": "counter", "name": "hits", "value": 2}


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("depth")
        g.set(10.0)
        g.inc(2.5)
        g.dec()
        assert g.value == pytest.approx(11.5)

    def test_reset(self):
        g = Gauge("depth")
        g.set(7.0)
        g.reset()
        assert g.value == 0.0


class TestHistogram:
    def test_basic_stats(self):
        h = Histogram("lat")
        for v in (1.0, 2.0, 3.0, 4.0):
            h.observe(v)
        assert h.count == 4
        assert h.mean == pytest.approx(2.5)
        assert h.min == 1.0
        assert h.max == 4.0

    def test_percentiles_nearest_rank(self):
        h = Histogram("lat")
        for v in range(1, 101):
            h.observe(float(v))
        assert h.percentile(0) == 1.0
        assert h.percentile(50) == pytest.approx(51.0)  # nearest rank
        assert h.percentile(100) == 100.0
        assert h.percentile(99) == pytest.approx(99.0, abs=1.0)

    def test_percentile_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            Histogram("x").percentile(101)

    def test_empty_snapshot(self):
        snap = Histogram("x").snapshot()
        assert snap["count"] == 0
        assert snap["mean"] == 0.0
        assert snap["min"] == 0.0 and snap["max"] == 0.0

    def test_reset(self):
        h = Histogram("x")
        h.observe(5.0)
        h.reset()
        assert h.count == 0
        assert h.values() == []


class TestSimHistogram:
    def test_samples_stamped_with_clock(self):
        now = {"t": 0.0}
        h = SimHistogram("q", clock=lambda: now["t"])
        h.observe(3.0)
        now["t"] = 2.5
        h.observe(4.0)
        assert h.samples() == [(0.0, 3.0), (2.5, 4.0)]
        assert h.count == 2

    def test_reset_clears_samples(self):
        h = SimHistogram("q", clock=lambda: 1.0)
        h.observe(1.0)
        h.reset()
        assert h.samples() == []


class TestTimer:
    def test_records_elapsed(self):
        h = Histogram("t")
        with Timer(h) as t:
            time.sleep(0.002)
        assert h.count == 1
        assert t.elapsed >= 0.001
        assert h.max == pytest.approx(t.elapsed)


class TestRegistry:
    def test_same_name_same_object(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.histogram("h") is reg.histogram("h")

    def test_type_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(ValueError):
            reg.gauge("a")
        reg.histogram("h")
        with pytest.raises(ValueError):
            reg.sim_histogram("h")

    def test_reset_keeps_identity(self):
        reg = MetricsRegistry()
        c = reg.counter("a")
        c.inc(9)
        reg.reset()
        assert reg.counter("a") is c
        assert c.value == 0

    def test_snapshot_sorted_by_name(self):
        reg = MetricsRegistry()
        reg.counter("b").inc()
        reg.counter("a").inc(2)
        names = [record["name"] for record in reg.snapshot()]
        assert names == ["a", "b"]

    def test_global_helpers_share_registry(self):
        c = obs.counter("test_obs.helper")
        assert obs.REGISTRY.get("test_obs.helper") is c
        c.reset()


class TestTraceLog:
    def test_disabled_records_nothing(self):
        log = TraceLog()
        log.emit("query_issue", node=1)
        assert len(log) == 0

    def test_enabled_records(self):
        log = TraceLog()
        log.enable()
        log.emit("msg_send", src=1, dst=2, kind="query")
        log.emit("msg_drop", src=1, dst=3, kind="query", reason="dst-dead")
        assert len(log) == 2
        assert log.events("msg_drop")[0].fields["reason"] == "dst-dead"
        assert log.counts_by_kind() == {"msg_send": 1, "msg_drop": 1}

    def test_kind_field_allowed(self):
        # ``kind`` is positional-only on emit, so a field may reuse the name.
        log = TraceLog()
        log.enable()
        log.emit("msg_send", kind="gossip")
        assert log.events()[0].snapshot()["kind"] == "msg_send"

    def test_capacity_compaction_counts_drops(self):
        log = TraceLog(capacity=10)
        log.enable()
        for i in range(25):
            log.emit("tick", i=i)
        assert len(log) <= 10
        assert log.dropped_events > 0
        # The newest events survive.
        assert log.events()[-1].fields["i"] == 24

    def test_clear(self):
        log = TraceLog()
        log.enable()
        log.emit("tick")
        log.clear()
        assert len(log) == 0
        assert log.enabled  # clearing does not flip the switch

    def test_disabled_overhead_guard(self):
        """Disabled tracing must do strictly less work than enabled."""
        log = TraceLog()

        def emit_many(n=20_000):
            started = time.perf_counter()
            for i in range(n):
                log.emit("tick", i=i)
            return time.perf_counter() - started

        log.disable()
        disabled = min(emit_many() for _ in range(3))
        log.enable()
        enabled = min(emit_many() for _ in range(3))
        assert len(log) == 60_000
        assert disabled < enabled
        # Absolute sanity: 20k disabled emits stay well under 100 ms.
        assert disabled < 0.1


class TestExporters:
    def _populated(self):
        reg = MetricsRegistry()
        reg.counter("sim.events_processed").inc(12)
        reg.gauge("adapt.observed_fairness").set(0.9)
        h = reg.histogram("net.latency")
        h.observe(1.0)
        h.observe(3.0)
        trace = TraceLog()
        trace.enable()
        trace.emit("adapt_phase", round=0, phase="monitor")
        return reg, trace

    def test_jsonl_round_trip(self):
        reg, trace = self._populated()
        stream = io.StringIO()
        lines = obs.write_jsonl(stream, reg, trace)
        records = [json.loads(line) for line in stream.getvalue().splitlines()]
        assert len(records) == lines == 1 + 3 + 1  # meta + metrics + trace
        assert records[0]["type"] == "meta"
        assert records[0]["n_metrics"] == 3
        by_name = {r.get("name"): r for r in records if "name" in r}
        assert by_name["sim.events_processed"]["value"] == 12
        assert by_name["net.latency"]["count"] == 2
        assert records[-1] == {
            "type": "trace",
            "kind": "adapt_phase",
            "round": 0,
            "phase": "monitor",
        }

    def test_dump_jsonl_writes_file(self, tmp_path):
        reg, trace = self._populated()
        path = tmp_path / "snap.jsonl"
        obs.dump_jsonl(str(path), reg, trace)
        assert path.exists()
        first = json.loads(path.read_text().splitlines()[0])
        assert first["schema"] == 1

    def test_format_text(self):
        reg, trace = self._populated()
        text = obs.format_text(reg, trace)
        assert "sim.events_processed" in text
        assert "net.latency" in text
        assert "adapt_phase" in text

    def test_snapshot_without_trace(self):
        reg, _ = self._populated()
        records = obs.snapshot(reg)
        assert records[0]["n_trace_events"] == 0
        assert all(r["type"] != "trace" for r in records)
