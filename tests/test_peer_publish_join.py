"""Tests for the publish (Section 6.2) and join/leave (6.3) protocols."""

import pytest

from repro.overlay.metadata import DCRT
from repro.overlay.peer import DocInfo

from tests.helpers import MicroOverlay


class TestPublish:
    def test_publish_joins_serving_cluster(self):
        overlay = MicroOverlay()
        publisher = overlay.add_peer(0)
        member = overlay.add_peer(1)
        overlay.wire_cluster(3, [1], edges=[], category_map={7: 3})
        publisher.dcrt.set(7, 3)
        publisher.nrt.add(3, 1)
        publisher.publish_document(DocInfo(doc_id=50, categories=(7,), size_bytes=10))
        overlay.run()
        # The publisher stored the document and became a cluster member.
        assert publisher.dt.has_document(50)
        assert 3 in publisher.memberships
        # The receiver recorded the publisher in its NRT (step 5).
        assert 0 in member.nrt.nodes_in(3)

    def test_second_publish_same_category_is_silent(self):
        overlay = MicroOverlay()
        publisher = overlay.add_peer(0)
        overlay.add_peer(1)
        overlay.wire_cluster(3, [1], edges=[], category_map={7: 3})
        publisher.dcrt.set(7, 3)
        publisher.nrt.add(3, 1)
        publisher.publish_document(DocInfo(doc_id=50, categories=(7,), size_bytes=10))
        overlay.run()
        sent_before = overlay.network.stats.by_kind.get("publish_request", 0)
        publisher.publish_document(DocInfo(doc_id=51, categories=(7,), size_bytes=10))
        overlay.run()
        sent_after = overlay.network.stats.by_kind.get("publish_request", 0)
        # Step 2: the node already announced its contribution to category 7.
        assert sent_after == sent_before
        assert publisher.dt.has_document(51)

    def test_publish_chases_moved_category(self):
        """Step 5: if the category moved, the reply redirects the publisher
        to the new cluster, repeated until the correct cluster is found."""
        overlay = MicroOverlay()
        publisher = overlay.add_peer(0)
        old_member = overlay.add_peer(1)
        new_member = overlay.add_peer(2)
        overlay.wire_cluster(3, [1], edges=[])
        overlay.wire_cluster(4, [2], edges=[])
        # The category is now served by cluster 4 (move counter 1).
        old_member.dcrt.set(7, 4, move_counter=1)
        old_member.nrt.add(4, 2)
        new_member.dcrt.set(7, 4, move_counter=1)
        # The publisher believes the stale mapping.
        publisher.dcrt.set(7, 3, move_counter=0)
        publisher.nrt.add(3, 1)
        publisher.nrt.add(4, 2)
        publisher.publish_document(DocInfo(doc_id=50, categories=(7,), size_bytes=10))
        overlay.run()
        assert publisher.dcrt.cluster_of(7) == 4
        assert 4 in publisher.memberships
        assert 0 in new_member.nrt.nodes_in(4)

    def test_publish_with_nobody_known_adopts_membership(self):
        overlay = MicroOverlay()
        publisher = overlay.add_peer(0)
        publisher.publish_document(DocInfo(doc_id=50, categories=(7,), size_bytes=10))
        overlay.run()
        # Unknown category defaults to cluster 0; with no known members the
        # publisher adopts the membership locally.
        assert DCRT.DEFAULT_CLUSTER in publisher.memberships

    def test_dummy_publish_free_rider(self):
        overlay = MicroOverlay()
        rider = overlay.add_peer(0)
        member = overlay.add_peer(1)
        overlay.wire_cluster(0, [1], edges=[])
        rider.nrt.add(0, 1)
        rider.dummy_publish()
        overlay.run()
        # Section 6.3: the free rider "will perform a dummy publish, so that
        # it will be added to a cluster and receive further updates".
        assert 0 in rider.memberships
        assert 0 in member.nrt.nodes_in(0)
        assert len(rider.dt) == 0


class TestJoin:
    def test_join_transfers_metadata_and_publishes(self):
        overlay = MicroOverlay()
        bootstrap = overlay.add_peer(0)
        overlay.wire_cluster(2, [0], edges=[], category_map={7: 2})
        bootstrap.dcrt.set(7, 2, move_counter=1)
        joiner = overlay.add_peer(5)
        joiner.store_document(DocInfo(doc_id=60, categories=(7,), size_bytes=10))
        joiner.start_join(bootstrap_id=0)
        overlay.run()
        # Metadata arrived (step 2)...
        assert joiner.dcrt.cluster_of(7) == 2
        # ...and the publish protocol ran for the contributed document.
        assert 2 in joiner.memberships
        assert 5 in bootstrap.nrt.nodes_in(2)

    def test_free_rider_join_does_dummy_publish(self):
        overlay = MicroOverlay()
        bootstrap = overlay.add_peer(0)
        overlay.wire_cluster(0, [0], edges=[])
        joiner = overlay.add_peer(5)
        joiner.start_join(bootstrap_id=0)
        overlay.run()
        assert 0 in joiner.memberships


class TestLeave:
    def test_leave_notifies_cluster_and_unregisters(self):
        overlay = MicroOverlay()
        leaver = overlay.add_peer(0)
        stayer = overlay.add_peer(1)
        overlay.wire_cluster(2, [0, 1], edges=[(0, 1)])
        overlay.give_document(0, 60, [7])
        leaver.start_leave()
        overlay.run()
        # The stayer removed the leaver from its NRT and neighbours.
        assert 0 not in stayer.nrt.nodes_in(2)
        assert 0 not in stayer.cluster_neighbors[2]
        # The notice listed the departing documents.
        assert overlay.hooks.leaves
        _, notice = overlay.hooks.leaves[0]
        assert notice.doc_ids == (60,)
        # The leaver no longer receives traffic.
        assert not overlay.network.is_alive(0)

    def test_leave_clears_capability_knowledge(self):
        overlay = MicroOverlay()
        leaver = overlay.add_peer(0, capacity=9.0)
        stayer = overlay.add_peer(1, capacity=1.0)
        overlay.wire_cluster(2, [0, 1], edges=[(0, 1)])
        stayer.known_capabilities[2][0] = 9.0
        leaver.start_leave()
        overlay.run()
        assert 0 not in stayer.known_capabilities[2]


class TestCapabilityGossipAndElection:
    def test_gossip_spreads_capabilities(self):
        overlay = MicroOverlay()
        for node_id, capacity in ((0, 1.0), (1, 5.0), (2, 3.0)):
            overlay.add_peer(node_id, capacity=capacity)
        overlay.wire_cluster(2, [0, 1, 2], edges=[(0, 1), (1, 2)])
        # Two gossip rounds: 0's info reaches 2 through 1.
        for _ in range(2):
            for peer in overlay.peers.values():
                peer.announce_capabilities()
            overlay.run()
        assert overlay.peers[2].known_capabilities[2][0] == 1.0

    def test_everyone_elects_the_most_powerful(self):
        overlay = MicroOverlay()
        for node_id, capacity in ((0, 1.0), (1, 5.0), (2, 3.0)):
            overlay.add_peer(node_id, capacity=capacity)
        overlay.wire_cluster(2, [0, 1, 2], edges=[(0, 1), (1, 2)])
        for _ in range(2):
            for peer in overlay.peers.values():
                peer.announce_capabilities()
            overlay.run()
        for peer in overlay.peers.values():
            peer.elect_leaders()
            assert peer.believed_leader[2] == 1

    def test_election_with_alive_filter(self):
        overlay = MicroOverlay()
        for node_id, capacity in ((0, 1.0), (1, 5.0)):
            overlay.add_peer(node_id, capacity=capacity)
        overlay.wire_cluster(2, [0, 1], edges=[(0, 1)])
        for _ in range(2):
            for peer in overlay.peers.values():
                peer.announce_capabilities()
            overlay.run()
        # Node 1 (the most powerful) died: 0 must elect someone alive.
        overlay.peers[0].elect_leaders(alive={0})
        assert overlay.peers[0].believed_leader[2] == 0
