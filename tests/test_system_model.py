"""Tests for repro.model.system: configuration and instance construction."""

import numpy as np
import pytest

from repro.model.documents import Document
from repro.model.system import (
    SCENARIO_UNIFORM,
    SCENARIO_ZIPF,
    SystemConfig,
    build_system,
)


class TestSystemConfig:
    def test_paper_defaults(self):
        config = SystemConfig()
        assert config.n_docs == 200_000
        assert config.n_nodes == 20_000
        assert config.n_categories == 500
        assert config.n_clusters == 100
        assert config.doc_theta == 0.8
        assert config.capacity_range == (1, 5)
        assert config.categories_per_node == (1, 20)

    def test_scaled_preserves_ratios(self):
        config = SystemConfig().scaled(0.1)
        assert config.n_docs == 20_000
        assert config.n_nodes == 2_000
        assert config.n_categories == 50
        assert config.n_clusters == 10

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            SystemConfig().scaled(0)

    def test_rejects_unknown_scenario(self):
        with pytest.raises(ValueError):
            SystemConfig(scenario="weird")

    def test_rejects_bad_capacity_range(self):
        with pytest.raises(ValueError):
            SystemConfig(capacity_range=(5, 1))

    def test_rejects_bad_multi_category_fraction(self):
        with pytest.raises(ValueError):
            SystemConfig(multi_category_fraction=1.5)


class TestBuildSystem:
    def test_invariants_hold(self, small_instance):
        small_instance.validate()

    def test_counts_match_config(self, small_instance, small_config):
        assert len(small_instance.documents) == small_config.n_docs
        assert len(small_instance.nodes) == small_config.n_nodes
        assert len(small_instance.categories) == small_config.n_categories

    def test_total_popularity_is_one(self, small_instance):
        assert small_instance.total_popularity == pytest.approx(1.0)

    def test_category_popularity_matches_documents(self, small_instance):
        recomputed = np.zeros(len(small_instance.categories))
        for doc in small_instance.documents.values():
            for category_id in doc.categories:
                recomputed[category_id] += doc.popularity_per_category
        assert np.allclose(small_instance.category_popularity, recomputed)

    def test_every_document_has_exactly_one_contributor(self, small_instance):
        seen = set()
        for node in small_instance.nodes.values():
            for doc_id in node.contributed_doc_ids:
                assert doc_id not in seen
                seen.add(doc_id)
        assert seen == set(small_instance.documents)

    def test_node_categories_consistent(self, small_instance):
        for node_id, cats in small_instance.node_categories.items():
            node = small_instance.nodes[node_id]
            derived = set()
            for doc_id in node.contributed_doc_ids:
                derived.update(small_instance.documents[doc_id].categories)
            assert set(cats) == derived

    def test_deterministic_for_seed(self, small_config):
        a = build_system(small_config)
        b = build_system(small_config)
        assert a.category_popularity.tolist() == b.category_popularity.tolist()
        assert a.nodes[0].capacity_units == b.nodes[0].capacity_units

    def test_different_seeds_differ(self, small_config):
        from dataclasses import replace

        a = build_system(small_config)
        b = build_system(replace(small_config, seed=small_config.seed + 1))
        assert a.category_popularity.tolist() != b.category_popularity.tolist()

    def test_capacities_in_range(self, small_instance, small_config):
        low, high = small_config.capacity_range
        for node in small_instance.nodes.values():
            assert low <= node.capacity_units <= high

    def test_zipf_scenario_more_skewed_than_uniform(
        self, small_instance, uniform_instance
    ):
        def cv(values):
            values = np.asarray(values)
            return values.std() / values.mean()

        zipf_docs = [c.n_docs for c in small_instance.categories]
        uniform_docs = [c.n_docs for c in uniform_instance.categories]
        assert cv(zipf_docs) > cv(uniform_docs)

    def test_multi_category_fraction(self):
        config = SystemConfig(
            n_docs=500,
            n_nodes=50,
            n_categories=10,
            n_clusters=3,
            multi_category_fraction=0.5,
            seed=1,
        )
        instance = build_system(config)
        multi = sum(
            1 for d in instance.documents.values() if len(d.categories) > 1
        )
        assert 0.3 < multi / len(instance.documents) < 0.7
        instance.validate()

    def test_scenario_constants(self):
        assert SCENARIO_ZIPF == "zipf"
        assert SCENARIO_UNIFORM == "uniform"


class TestInstanceMutation:
    def test_add_document(self, mutable_instance):
        doc_id = mutable_instance.fresh_doc_id()
        doc = Document(doc_id=doc_id, popularity=0.05, categories=(3,))
        before = mutable_instance.categories[3].popularity
        mutable_instance.add_document(doc, contributor_id=0)
        assert mutable_instance.categories[3].popularity == pytest.approx(
            before + 0.05
        )
        assert doc_id in mutable_instance.nodes[0].contributed_doc_ids
        assert 3 in mutable_instance.node_categories[0]
        mutable_instance.validate()

    def test_add_duplicate_rejected(self, mutable_instance):
        doc = Document(doc_id=0, popularity=0.05, categories=(3,))
        with pytest.raises(ValueError):
            mutable_instance.add_document(doc, contributor_id=0)

    def test_add_unknown_contributor_rejected(self, mutable_instance):
        doc = Document(
            doc_id=mutable_instance.fresh_doc_id(), popularity=0.05, categories=(3,)
        )
        with pytest.raises(KeyError):
            mutable_instance.add_document(doc, contributor_id=10**9)

    def test_remove_document(self, mutable_instance):
        doc_id = next(iter(mutable_instance.documents))
        doc = mutable_instance.documents[doc_id]
        category = doc.categories[0]
        before = mutable_instance.categories[category].popularity
        removed = mutable_instance.remove_document(doc_id)
        assert removed.doc_id == doc_id
        assert doc_id not in mutable_instance.documents
        assert mutable_instance.categories[category].popularity <= before

    def test_fresh_doc_ids_unique(self, mutable_instance):
        ids = {mutable_instance.fresh_doc_id() for _ in range(10)}
        assert len(ids) == 10
        assert all(i not in mutable_instance.documents for i in ids)

    def test_contributors_of_category(self, small_instance):
        for category_id in range(5):
            contributors = small_instance.contributors_of_category(category_id)
            for node_id in contributors:
                assert category_id in small_instance.node_categories[node_id]

    def test_node_popularity_sums_contributions(self, small_instance):
        node_id = next(iter(small_instance.node_categories))
        node = small_instance.nodes[node_id]
        expected = sum(
            small_instance.documents[d].popularity
            for d in node.contributed_doc_ids
        )
        assert small_instance.node_popularity(node_id) == pytest.approx(expected)
