"""Shared fixtures: small, fast system instances and assignments."""

from __future__ import annotations

import pytest

from repro.chaos import ScenarioConfig
from repro.core.maxfair import maxfair
from repro.core.popularity import build_category_stats
from repro.core.replication import plan_replication
from repro.model.system import SystemConfig, build_system


@pytest.fixture(scope="session")
def small_config() -> SystemConfig:
    """A tiny but structurally complete configuration."""
    return SystemConfig(
        n_docs=800,
        n_nodes=120,
        n_categories=20,
        n_clusters=5,
        seed=42,
    )


@pytest.fixture(scope="session")
def small_instance(small_config):
    """A built instance shared by read-only tests."""
    return build_system(small_config)


@pytest.fixture()
def mutable_instance(small_config):
    """A fresh instance per test, safe to mutate."""
    return build_system(small_config)


@pytest.fixture(scope="session")
def small_stats(small_instance):
    return build_category_stats(small_instance)


@pytest.fixture(scope="session")
def small_assignment(small_instance, small_stats):
    return maxfair(small_instance, stats=small_stats)


@pytest.fixture(scope="session")
def small_plan(small_instance, small_assignment):
    return plan_replication(small_instance, small_assignment, n_reps=2, hot_mass=0.35)


@pytest.fixture(scope="session")
def chaos_config() -> ScenarioConfig:
    """A small, fast chaos scenario shared by the chaos tests."""
    return ScenarioConfig(
        n_docs=300,
        n_nodes=40,
        n_categories=8,
        n_clusters=3,
        n_steps=12,
        query_burst_max=10,
        min_alive=14,
    )


@pytest.fixture(scope="session")
def uniform_instance():
    """A near-uniform-category instance for scenario-contrast tests."""
    return build_system(
        SystemConfig(
            n_docs=800,
            n_nodes=120,
            n_categories=20,
            n_clusters=5,
            scenario="uniform",
            seed=43,
        )
    )
