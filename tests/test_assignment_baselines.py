"""Tests for repro.core.baselines — naive assignment strategies."""

import numpy as np
import pytest

from repro.core.baselines import (
    ASSIGNMENT_STRATEGIES,
    assign_with_strategy,
    hash_assignment,
    lpt_assignment,
    random_assignment,
    round_robin_assignment,
)
from repro.core.maxfair import achieved_fairness


class TestRandomAssignment:
    def test_complete_and_in_range(self):
        a = random_assignment(50, 7, seed=1)
        assert a.is_complete()
        assert a.category_to_cluster.max() < 7
        assert a.category_to_cluster.min() >= 0

    def test_seeded(self):
        a = random_assignment(50, 7, seed=1)
        b = random_assignment(50, 7, seed=1)
        assert a.category_to_cluster.tolist() == b.category_to_cluster.tolist()


class TestRoundRobin:
    def test_deals_evenly(self):
        a = round_robin_assignment(10, 3)
        counts = np.bincount(a.category_to_cluster, minlength=3)
        assert counts.max() - counts.min() <= 1

    def test_mapping(self):
        a = round_robin_assignment(6, 3)
        assert a.category_to_cluster.tolist() == [0, 1, 2, 0, 1, 2]


class TestHashAssignment:
    def test_stable_across_calls(self):
        a = hash_assignment(100, 10)
        b = hash_assignment(100, 10)
        assert a.category_to_cluster.tolist() == b.category_to_cluster.tolist()

    def test_roughly_uniform(self):
        a = hash_assignment(5000, 10)
        counts = np.bincount(a.category_to_cluster, minlength=10)
        assert counts.min() > 300  # expected 500 each

    def test_in_range(self):
        a = hash_assignment(100, 7)
        assert a.category_to_cluster.max() < 7


class TestLPT:
    def test_complete(self, small_stats):
        a = lpt_assignment(small_stats, 5)
        assert a.is_complete()

    def test_reasonable_fairness(self, small_instance, small_stats):
        a = lpt_assignment(small_stats, small_instance.n_clusters)
        assert achieved_fairness(small_instance, a, stats=small_stats) > 0.5


class TestFrontDoor:
    def test_all_strategies_run(self, small_instance, small_stats):
        for strategy in ASSIGNMENT_STRATEGIES:
            a = assign_with_strategy(
                small_instance, strategy, stats=small_stats, seed=3
            )
            assert a.is_complete(), strategy

    def test_maxfair_wins_or_ties(self, small_instance, small_stats):
        scores = {
            strategy: achieved_fairness(
                small_instance,
                assign_with_strategy(
                    small_instance, strategy, stats=small_stats, seed=3
                ),
                stats=small_stats,
            )
            for strategy in ASSIGNMENT_STRATEGIES
        }
        best = max(scores.values())
        assert scores["maxfair"] == pytest.approx(best, abs=1e-9)

    def test_unknown_strategy_rejected(self, small_instance):
        with pytest.raises(ValueError):
            assign_with_strategy(small_instance, "magic")
