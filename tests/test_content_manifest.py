"""Manifests: construction, wire round-trips, and the fetch ledger."""

import json

from repro.content.chunks import chunk_hash
from repro.content.manifest import (
    FetchRecord,
    Manifest,
    build_manifest,
    manifest_from_update,
    manifest_to_update,
)
from repro.overlay import messages as m


class TestBuildManifest:
    def test_hashes_are_content_derived(self):
        manifest = build_manifest(7, size_bytes=25, chunk_size=10)
        assert manifest.n_chunks == 3
        assert manifest.chunk_hashes == tuple(
            chunk_hash(7, i) for i in range(3)
        )
        assert manifest.version == 0

    def test_chunk_bytes_delegates_to_chunk_math(self):
        manifest = build_manifest(7, size_bytes=25, chunk_size=10)
        assert [manifest.chunk_bytes(i) for i in range(3)] == [10, 10, 5]

    def test_tiny_document_is_one_chunk(self):
        manifest = build_manifest(1, size_bytes=3, chunk_size=10)
        assert manifest.n_chunks == 1
        assert manifest.chunk_bytes(0) == 3


class TestWireRoundTrip:
    """The explicit manifest round-trip through the overlay wire codec.

    The hypothesis suite in test_message_roundtrip.py covers every
    registered type generically; this pins the full journey a real
    manifest takes — Manifest -> ManifestUpdate -> JSON -> Manifest —
    including the holder hint and version.
    """

    def test_manifest_survives_the_wire(self):
        manifest = build_manifest(42, size_bytes=262_144,
                                  chunk_size=65_536, version=3)
        update = manifest_to_update(manifest, holders=(9, 1, 4))
        record = json.loads(json.dumps(m.to_wire(update)))
        decoded = m.from_wire(record)
        assert type(decoded) is m.ManifestUpdate
        assert decoded == update
        assert decoded.holders == (1, 4, 9)  # holder hint arrives sorted
        assert manifest_from_update(decoded) == manifest

    def test_round_trip_preserves_version_and_hashes_exactly(self):
        manifest = Manifest(
            doc_id=5,
            size_bytes=100,
            chunk_size=64,
            version=17,
            chunk_hashes=(2**63 - 1, 0),
        )
        update = manifest_to_update(manifest)
        wired = m.from_wire(json.loads(json.dumps(m.to_wire(update))))
        back = manifest_from_update(wired)
        assert back == manifest
        assert back.chunk_hashes == (2**63 - 1, 0)

    def test_chunk_messages_are_registered_wire_types(self):
        for name in ("ManifestUpdate", "ChunkRequest", "ChunkData",
                     "ChunkRepair"):
            assert name in m.WIRE_TYPES


class TestFetchRecord:
    def test_settles_on_completion_or_failure(self):
        record = FetchRecord(
            fetch_id=1, doc_id=2, requester_id=3, n_chunks=4,
            purpose="fetch", started_at=0.0, manifest_version=0,
        )
        assert not record.settled
        record.completed_at = 1.5
        assert record.settled
        failed = FetchRecord(
            fetch_id=2, doc_id=2, requester_id=3, n_chunks=4,
            purpose="heal", started_at=0.0, manifest_version=0,
            failed=True, failure="no-live-source",
        )
        assert failed.settled
