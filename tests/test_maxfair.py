"""Tests for repro.core.maxfair."""

import numpy as np
import pytest

from repro.core.fairness import jain_fairness
from repro.core.maxfair import (
    Assignment,
    achieved_fairness,
    category_order,
    maxfair,
    maxfair_from_stats,
)
from repro.core.popularity import CategoryStats, build_category_stats


def _stats(popularity, weights=None):
    popularity = np.asarray(popularity, dtype=float)
    if weights is None:
        weights = np.ones_like(popularity)
    weights = np.asarray(weights, dtype=float)
    return CategoryStats(
        popularity=popularity,
        contributor_count=weights,
        capacity_units=weights,
        storage_weight=weights,
    )


class TestAssignment:
    def test_complete_detection(self):
        a = Assignment(category_to_cluster=np.array([0, 1, -1]), n_clusters=2)
        assert not a.is_complete()
        a.category_to_cluster[2] = 0
        assert a.is_complete()

    def test_cluster_of_unassigned_raises(self):
        a = Assignment(category_to_cluster=np.array([-1]), n_clusters=2)
        with pytest.raises(KeyError):
            a.cluster_of(0)

    def test_categories_in(self):
        a = Assignment(category_to_cluster=np.array([0, 1, 0]), n_clusters=2)
        assert a.categories_in(0) == [0, 2]
        assert a.categories_in(1) == [1]

    def test_move_bumps_counter(self):
        a = Assignment(category_to_cluster=np.array([0, 1]), n_clusters=3)
        a.move(0, 2)
        assert a.cluster_of(0) == 2
        assert a.move_counters[0] == 1
        assert a.move_counters[1] == 0

    def test_move_out_of_range_rejected(self):
        a = Assignment(category_to_cluster=np.array([0]), n_clusters=2)
        with pytest.raises(ValueError):
            a.move(0, 5)

    def test_copy_is_independent(self):
        a = Assignment(category_to_cluster=np.array([0, 1]), n_clusters=2)
        b = a.copy()
        b.move(0, 1)
        assert a.cluster_of(0) == 0
        assert a.move_counters[0] == 0

    def test_rejects_invalid_cluster_reference(self):
        with pytest.raises(ValueError):
            Assignment(category_to_cluster=np.array([5]), n_clusters=2)

    def test_rejects_nonpositive_clusters(self):
        with pytest.raises(ValueError):
            Assignment(category_to_cluster=np.array([0]), n_clusters=0)


class TestCategoryOrder:
    def test_popularity_desc(self):
        order = category_order(np.array([0.1, 0.5, 0.3]), "popularity_desc")
        assert order.tolist() == [1, 2, 0]

    def test_popularity_asc(self):
        order = category_order(np.array([0.1, 0.5, 0.3]), "popularity_asc")
        assert order.tolist() == [0, 2, 1]

    def test_arbitrary(self):
        order = category_order(np.array([0.1, 0.5]), "arbitrary")
        assert order.tolist() == [0, 1]

    def test_random_is_seeded(self):
        a = category_order(np.arange(10.0), "random", seed=3)
        b = category_order(np.arange(10.0), "random", seed=3)
        assert a.tolist() == b.tolist()

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            category_order(np.array([1.0]), "sideways")


class TestMaxFairSmall:
    def test_two_equal_categories_two_clusters(self):
        stats = _stats([0.5, 0.5])
        assignment = maxfair_from_stats(stats, n_clusters=2)
        assert assignment.is_complete()
        # Perfect balance: the two categories land in different clusters.
        assert assignment.cluster_of(0) != assignment.cluster_of(1)

    def test_perfect_normalized_balance_found(self):
        # Note the objective is *normalized* popularity (load divided by
        # the capacity the categories bring along), not raw load: with unit
        # weights, [0.4, 0.2, 0.1] on one cluster (0.7 / 3 units) vs [0.3]
        # (0.3 / 1 unit) is less fair than what the greedy finds.
        stats = _stats([0.4, 0.3, 0.2, 0.1])
        assignment = maxfair_from_stats(stats, n_clusters=2)
        load = np.zeros(2)
        weight = np.zeros(2)
        for s, c in enumerate(assignment.category_to_cluster):
            load[c] += stats.popularity[s]
            weight[c] += 1.0
        values = load / weight
        assert jain_fairness(values) > 0.98

    def test_zero_popularity_goes_to_cluster_zero(self):
        stats = _stats([0.0, 1.0, 0.0])
        assignment = maxfair_from_stats(stats, n_clusters=3)
        assert assignment.cluster_of(0) == 0
        assert assignment.cluster_of(2) == 0

    def test_weights_matter(self):
        # One heavy category with proportionally heavy capacity and two
        # light ones: every arrangement that keeps per-unit load at 0.1 is
        # perfectly fair; the greedy must find one of them.
        stats = _stats([0.8, 0.1, 0.1], weights=[8.0, 1.0, 1.0])
        assignment = maxfair_from_stats(stats, n_clusters=2)
        load = np.zeros(2)
        weight = np.zeros(2)
        for s, c in enumerate(assignment.category_to_cluster):
            load[c] += stats.popularity[s]
            weight[c] += [8.0, 1.0, 1.0][s]
        values = np.divide(load, weight, out=np.zeros(2), where=weight > 0)
        occupied = values[weight > 0]
        assert jain_fairness(occupied) == pytest.approx(1.0)

    def test_single_cluster(self):
        stats = _stats([0.5, 0.5])
        assignment = maxfair_from_stats(stats, n_clusters=1)
        assert assignment.is_complete()
        assert set(assignment.category_to_cluster.tolist()) == {0}


class TestMaxFairIncrementalCorrectness:
    def test_matches_naive_reference(self):
        """The O(1) incremental Jain evaluation must reproduce the naive
        full-vector re-evaluation argmax exactly."""
        rng = np.random.default_rng(9)
        for trial in range(5):
            n_categories, n_clusters = 20, 4
            popularity = rng.random(n_categories)
            weights = rng.random(n_categories) + 0.1
            stats = _stats(popularity, weights)

            fast = maxfair_from_stats(stats, n_clusters=n_clusters)

            # Naive reference implementation.
            order = np.argsort(-popularity, kind="stable")
            load = np.zeros(n_clusters)
            capacity = np.zeros(n_clusters)
            mapping = np.full(n_categories, -1)
            for s in order:
                best, best_f = 0, -1.0
                for c in range(n_clusters):
                    load[c] += popularity[s]
                    capacity[c] += weights[s]
                    values = np.divide(
                        load, capacity, out=np.zeros(n_clusters),
                        where=capacity > 0,
                    )
                    f = jain_fairness(values)
                    load[c] -= popularity[s]
                    capacity[c] -= weights[s]
                    if f > best_f:
                        best, best_f = c, f
                load[best] += popularity[s]
                capacity[best] += weights[s]
                mapping[s] = best
            assert fast.category_to_cluster.tolist() == mapping.tolist(), (
                f"trial {trial}"
            )


class TestMaxFairOnInstances:
    def test_high_fairness_on_small_instance(self, small_instance, small_stats):
        assignment = maxfair(small_instance, stats=small_stats)
        fairness = achieved_fairness(small_instance, assignment, stats=small_stats)
        assert fairness > 0.95

    def test_all_categories_assigned(self, small_assignment, small_instance):
        assert small_assignment.is_complete()
        assert len(small_assignment.category_to_cluster) == len(
            small_instance.categories
        )

    def test_deterministic(self, small_instance, small_stats):
        a = maxfair(small_instance, stats=small_stats)
        b = maxfair(small_instance, stats=small_stats)
        assert a.category_to_cluster.tolist() == b.category_to_cluster.tolist()

    def test_generic_metric_path(self, small_instance, small_stats):
        assignment = maxfair(small_instance, stats=small_stats, metric="gini")
        assert assignment.is_complete()
        fairness = achieved_fairness(small_instance, assignment, stats=small_stats)
        assert fairness > 0.8

    def test_beats_random_assignment(self, small_instance, small_stats):
        from repro.core.baselines import random_assignment

        greedy = maxfair(small_instance, stats=small_stats)
        random = random_assignment(
            len(small_instance.categories), small_instance.n_clusters, seed=0
        )
        assert achieved_fairness(
            small_instance, greedy, stats=small_stats
        ) >= achieved_fairness(small_instance, random, stats=small_stats)

    def test_order_variants_complete(self, small_instance, small_stats):
        for order in ("popularity_desc", "popularity_asc", "arbitrary", "random"):
            assignment = maxfair(small_instance, stats=small_stats, order=order)
            assert assignment.is_complete()
