"""Integration: Poisson churn schedules driving a live system."""

import pytest

from repro.metrics.response import summarize_responses
from repro.model.workload import make_query_workload, node_churn_events

from tests.helpers import build_live_system


@pytest.fixture()
def churny_world():
    return build_live_system(scale=0.02, seed=81)


class TestScheduledChurn:
    def test_system_survives_poisson_churn(self, churny_world):
        instance, system = churny_world
        events = node_churn_events(
            instance, duration=50.0, leave_rate=0.4, join_rate=0.2, seed=82
        )
        assert events, "expected a non-trivial churn schedule"
        applied_leaves = applied_joins = 0
        for event in events:
            if event.kind == "leave" and system.peer(event.node_id) is not None:
                system.leave_node(event.node_id)
                applied_leaves += 1
            elif event.kind == "join":
                system.join_node(event.node_id, capacity_units=2.0)
                applied_joins += 1
        assert applied_leaves > 0
        assert applied_joins > 0

        outcomes = system.run_workload(make_query_workload(instance, 800, seed=83))
        stats = summarize_responses(outcomes)
        assert stats.success_rate > 0.9

    def test_adaptation_still_works_after_churn(self, churny_world):
        instance, system = churny_world
        for peer in system.alive_peers()[:8]:
            system.leave_node(peer.node_id)
        system.run_workload(make_query_workload(instance, 1500, seed=84))
        outcome = system.run_adaptation(round_id=1)
        assert outcome.leaders  # clusters still have leaders
        assert 0.0 <= outcome.observed_fairness <= 1.0

    def test_joiner_can_query_immediately(self, churny_world):
        from repro.model.workload import Query, QueryWorkload

        instance, system = churny_world
        new_id = max(instance.nodes) + 99
        system.join_node(new_id, capacity_units=1.0)
        # The joiner's metadata snapshot lets it retrieve content at once.
        target_doc = next(iter(instance.documents.values()))
        workload = QueryWorkload(
            queries=[
                Query(
                    query_id=0,
                    requester_id=new_id,
                    target_doc_id=target_doc.doc_id,
                    category_ids=target_doc.categories,
                    m=1,
                )
            ]
        )
        outcomes = system.run_workload(workload)
        assert len(outcomes) == 1
        assert outcomes[0].succeeded
