"""Flash-crowd chaos action and the overload fuzzing mode.

Schedule generation stays backward compatible (the default action set is
untouched — recorded goldens and reproducers replay byte-identically);
the overload action set rides on top, and overload worlds run the
service model plus the four overload invariants.
"""

from repro.chaos.harness import ChaosRunner
from repro.chaos.invariants import OVERLOAD_INVARIANTS
from repro.chaos.scenario import (
    DEFAULT_ACTION_WEIGHTS,
    OVERLOAD_ACTION_WEIGHTS,
    ScenarioConfig,
    generate_schedule,
)
from repro.experiments import fuzz

_SMALL_WORLD = dict(
    n_docs=150, n_nodes=24, n_categories=8, n_clusters=3, min_alive=10
)


class TestActionWeights:
    def test_default_weights_unchanged(self):
        # Appending to the default tuple would perturb every recorded
        # schedule's RNG draws — flash_crowd must stay opt-in.
        actions = [action for action, _ in DEFAULT_ACTION_WEIGHTS]
        assert "flash_crowd" not in actions
        assert len(actions) == 13

    def test_overload_weights_extend_defaults(self):
        assert OVERLOAD_ACTION_WEIGHTS[: len(DEFAULT_ACTION_WEIGHTS)] == (
            DEFAULT_ACTION_WEIGHTS
        )
        assert OVERLOAD_ACTION_WEIGHTS[-1] == ("flash_crowd", 2.0)


class TestScheduleGeneration:
    def test_flash_crowd_entries_have_bounded_params(self):
        config = ScenarioConfig(
            overload=True,
            action_weights=OVERLOAD_ACTION_WEIGHTS,
            n_steps=60,
            **_SMALL_WORLD,
        )
        entries = [
            entry
            for seed in range(4)
            for entry in generate_schedule(seed, config).entries
            if entry.action == "flash_crowd"
        ]
        assert entries, "no flash_crowd drawn across 4 seeds"
        for entry in entries:
            assert 0 <= entry.params["category"] < config.n_categories
            assert 30 <= entry.params["n"] <= config.flash_crowd_max
            assert entry.params["workload_seed"] >= 0

    def test_default_schedules_never_contain_flash_crowd(self):
        config = ScenarioConfig(n_steps=60, **_SMALL_WORLD)
        for seed in range(4):
            schedule = generate_schedule(seed, config)
            assert all(
                entry.action != "flash_crowd" for entry in schedule.entries
            )


class TestOverloadWorlds:
    def test_overload_flag_builds_service_model(self):
        config = ScenarioConfig(
            overload=True,
            action_weights=OVERLOAD_ACTION_WEIGHTS,
            n_steps=2,
            **_SMALL_WORLD,
        )
        runner = ChaosRunner(generate_schedule(0, config), config)
        assert runner.system.overload_enabled
        assert runner.system.config.reliability.overload_protected

    def test_default_worlds_stay_overload_free(self):
        config = ScenarioConfig(n_steps=2, **_SMALL_WORLD)
        runner = ChaosRunner(generate_schedule(0, config), config)
        assert not runner.system.overload_enabled

    def test_flash_crowd_action_issues_and_accounts_queries(self):
        config = ScenarioConfig(
            overload=True,
            action_weights=OVERLOAD_ACTION_WEIGHTS,
            n_steps=2,
            **_SMALL_WORLD,
        )
        runner = ChaosRunner(generate_schedule(0, config), config)
        before = runner.report.outcomes_total
        assert runner._do_flash_crowd(
            step=0, category=3, n=40, workload_seed=123
        )
        assert runner.report.outcomes_total - before == 40
        served = sum(
            peer.service_snapshot()["offered"]
            for peer in runner.system.alive_peers()
            if peer.service_snapshot() is not None
        )
        assert served > 0


class TestOverloadFuzz:
    def test_fuzz_sweep_with_overload_actions_holds_invariants(self):
        result = fuzz.run(
            seeds=2, steps=15, overload=True, shrink_failing=False
        )
        assert result.overload
        assert result.failing_seeds == []
        assert result.total_queries > 0
        assert "overload actions on" in fuzz.format_result(result)

    def test_overload_invariants_registered(self):
        assert set(OVERLOAD_INVARIANTS) == {
            "service-queue-bound",
            "overload-conservation",
            "overload-drain",
            "retry-budget-no-overdraft",
        }
