"""Tests for repro.metrics: load report cards, response stats, reporting."""

import pytest

from repro.metrics.load import load_report
from repro.metrics.report import format_kv, format_series, format_table
from repro.metrics.response import QueryOutcome, summarize_responses


class TestLoadReport:
    def test_basic_counters(self):
        card = load_report({1: 10, 2: 10, 3: 10})
        assert card.n_nodes == 3
        assert card.total_requests == 30
        assert card.node_fairness == pytest.approx(1.0)
        assert card.max_node_load == 10
        assert card.mean_node_load == pytest.approx(10.0)
        assert card.cv == pytest.approx(0.0)

    def test_capacity_normalization(self):
        # Loads proportional to capacity are perfectly fair per-unit.
        loads = {1: 10, 2: 20}
        capacities = {1: 1.0, 2: 2.0}
        card = load_report(loads, node_capacities=capacities)
        assert card.node_fairness < 1.0
        assert card.node_fairness_normalized == pytest.approx(1.0)

    def test_cluster_fairness_splits_shared_nodes(self):
        loads = {1: 10, 2: 10}
        clusters = {1: {0}, 2: {0, 1}}  # node 2 serves two clusters
        card = load_report(loads, node_clusters=clusters)
        # cluster 0: 10 + 5, cluster 1: 5.
        expected = (15 + 5) ** 2 / (2 * (15**2 + 5**2))
        assert card.cluster_fairness == pytest.approx(expected)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            load_report({})

    def test_rows_render(self):
        card = load_report({1: 5})
        rows = dict(card.rows())
        assert rows["nodes"] == "1"


class TestResponseStats:
    def _outcome(self, qid, hops=1, latency=0.1, results=1, failed=False):
        return QueryOutcome(
            query_id=qid,
            issued_at=1.0,
            first_response_at=1.0 + latency if results else None,
            first_response_hops=hops if results else None,
            results=results,
            wanted=1,
            failed=failed,
        )

    def test_success_accounting(self):
        stats = summarize_responses(
            [self._outcome(1), self._outcome(2), self._outcome(3, results=0)]
        )
        assert stats.n_queries == 3
        assert stats.n_succeeded == 2
        # Zero results without a protocol failure is *unanswered*, not failed.
        assert stats.n_failed == 0
        assert stats.n_unanswered == 1
        assert stats.success_rate == pytest.approx(2 / 3)

    def test_failed_only_counts_protocol_failures(self):
        stats = summarize_responses(
            [
                self._outcome(1),                          # succeeded
                self._outcome(2, results=0, failed=True),  # protocol failure
                self._outcome(3, results=0),               # empty catalog
            ]
        )
        assert stats.n_failed == 1
        assert stats.n_unanswered == 1
        assert stats.n_succeeded == 1
        assert (
            stats.n_succeeded + stats.n_failed + stats.n_unanswered
            == stats.n_queries
        )

    def test_unanswered_rendered_in_rows(self):
        stats = summarize_responses([self._outcome(1, results=0)])
        rows = dict(stats.rows())
        assert rows["unanswered"] == "1"
        assert rows["failed"] == "0"

    def test_hop_percentiles(self):
        outcomes = [self._outcome(i, hops=h) for i, h in enumerate([1, 1, 1, 5])]
        stats = summarize_responses(outcomes)
        assert stats.p50_hops == 1.0
        assert stats.max_hops == 5

    def test_latency(self):
        outcomes = [self._outcome(1, latency=0.25)]
        stats = summarize_responses(outcomes)
        assert stats.mean_latency == pytest.approx(0.25)

    def test_empty(self):
        stats = summarize_responses([])
        assert stats.n_queries == 0
        assert stats.success_rate == 0.0
        assert stats.mean_hops == 0.0

    def test_outcome_properties(self):
        good = self._outcome(1)
        assert good.succeeded
        assert good.latency == pytest.approx(0.1)
        bad = self._outcome(2, results=0)
        assert not bad.succeeded
        assert bad.latency is None

    def test_rows_render(self):
        stats = summarize_responses([self._outcome(1)])
        assert dict(stats.rows())["queries"] == "1"


class TestReportFormatting:
    def test_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2], [33, 4]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")
        # Columns align: the separator matches the widest cell.
        assert "--" in lines[1]

    def test_table_with_title(self):
        text = format_table(["x"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_series(self):
        text = format_series("theta", "fairness", [(0.4, 0.99), (0.8, 0.82)])
        assert "theta" in text
        assert "0.99" in text

    def test_kv(self):
        text = format_kv([("metric", "42")])
        assert "42" in text
