"""Chaos integration of the content actions: generation, replay, goldens."""

import pytest

from repro.chaos import ScenarioConfig, generate_schedule, run_schedule
from repro.chaos.invariants import CONTENT_INVARIANTS
from repro.chaos.scenario import (
    CONTENT_ACTION_WEIGHTS,
    CONTENT_EXTRA_ACTIONS,
    DEFAULT_ACTION_WEIGHTS,
)

NEW_ACTIONS = {name for name, _ in CONTENT_EXTRA_ACTIONS}

CONTENT_CONFIG = ScenarioConfig(
    content=True,
    action_weights=CONTENT_ACTION_WEIGHTS,
    n_steps=30,
)


class TestGeneration:
    def test_new_actions_appear_in_schedules(self):
        seen = set()
        for seed in range(8):
            schedule = generate_schedule(seed, CONTENT_CONFIG)
            seen |= {entry.action for entry in schedule.entries}
        assert NEW_ACTIONS <= seen

    def test_default_schedules_unchanged(self):
        # Golden-compat: the content actions live in their own appended
        # weights tuple, so default-weight schedules replay identically.
        for seed in range(5):
            schedule = generate_schedule(seed, ScenarioConfig())
            assert not {e.action for e in schedule.entries} & NEW_ACTIONS
            again = generate_schedule(seed, ScenarioConfig())
            assert schedule.entries == again.entries

    def test_generation_deterministic(self):
        a = generate_schedule(11, CONTENT_CONFIG)
        b = generate_schedule(11, CONTENT_CONFIG)
        assert a.entries == b.entries

    def test_params_are_json_safe_scalars(self):
        schedule = generate_schedule(3, CONTENT_CONFIG)
        for entry in schedule.entries:
            for value in entry.params.values():
                assert isinstance(value, (int, float, str, bool))
            assert eval(repr(entry), {"ScheduleEntry": type(entry)}) == entry


class TestExecution:
    @pytest.fixture(scope="class")
    def reports(self):
        return {
            seed: run_schedule(
                generate_schedule(seed, CONTENT_CONFIG), CONTENT_CONFIG
            )
            for seed in range(3)
        }

    def test_content_schedules_run_clean(self, reports):
        for seed, report in reports.items():
            assert report.ok, f"seed {seed}: {report.summary()}"

    def test_replay_is_deterministic(self, reports):
        seed = 0
        again = run_schedule(
            generate_schedule(seed, CONTENT_CONFIG), CONTENT_CONFIG
        )
        first = reports[seed]
        assert again.entries_applied == first.entries_applied
        assert again.entries_skipped == first.entries_skipped
        assert again.outcomes_total == first.outcomes_total
        assert again.ok == first.ok


class TestWeights:
    def test_content_weights_extend_defaults(self):
        assert CONTENT_ACTION_WEIGHTS[: len(DEFAULT_ACTION_WEIGHTS)] == (
            DEFAULT_ACTION_WEIGHTS
        )
        assert CONTENT_ACTION_WEIGHTS[len(DEFAULT_ACTION_WEIGHTS):] == (
            CONTENT_EXTRA_ACTIONS
        )

    def test_four_content_invariants_exported(self):
        assert CONTENT_INVARIANTS == (
            "manifest-consistency",
            "fetch-integrity",
            "chunk-availability",
            "no-sole-holder-loss",
        )

    def test_fuzz_run_wires_content_actions(self):
        from repro.experiments import fuzz

        result = fuzz.run(seed=0, seeds=1, steps=12, content_actions=True)
        assert result.content_actions
        assert not result.failing_seeds
        text = fuzz.format_result(result)
        assert "content actions on" in text
