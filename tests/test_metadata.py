"""Tests for repro.overlay.metadata — the Figure 1 data structures."""

import numpy as np
import pytest

from repro.overlay.metadata import DCRT, DCRTEntry, NRT, DocumentTable


class TestDocumentTable:
    def test_add_and_lookup(self):
        dt = DocumentTable()
        dt.add(1, (3, 4))
        assert dt.has_document(1)
        assert dt.categories_of(1) == (3, 4)
        assert len(dt) == 1

    def test_remove(self):
        dt = DocumentTable()
        dt.add(1, (3,))
        dt.remove(1)
        assert not dt.has_document(1)
        dt.remove(1)  # idempotent

    def test_has_category(self):
        dt = DocumentTable()
        dt.add(1, (3,))
        assert dt.has_category(3)
        assert not dt.has_category(4)

    def test_docs_in_category(self):
        dt = DocumentTable()
        dt.add(1, (3,))
        dt.add(2, (3, 4))
        dt.add(5, (4,))
        assert sorted(dt.docs_in_category(3)) == [1, 2]
        assert sorted(dt.docs_in_category(4)) == [2, 5]

    def test_rejects_empty_categories(self):
        with pytest.raises(ValueError):
            DocumentTable().add(1, ())


class TestDCRT:
    def test_default_cluster_zero(self):
        # Section 6.2 step 3: zero-document categories map to cluster 0.
        dcrt = DCRT()
        assert dcrt.cluster_of(17) == 0
        assert dcrt.entry(17) == DCRTEntry(0, 0)

    def test_set_and_lookup(self):
        dcrt = DCRT()
        dcrt.set(3, cluster_id=5, move_counter=2)
        assert dcrt.cluster_of(3) == 5
        assert dcrt.entry(3).move_counter == 2

    def test_merge_higher_counter_wins(self):
        dcrt = DCRT()
        dcrt.set(3, 5, move_counter=2)
        assert dcrt.merge(3, DCRTEntry(7, 3))
        assert dcrt.cluster_of(3) == 7

    def test_merge_lower_counter_loses(self):
        # The Section 6.1.2 conflict rule: "the metadata information with
        # the highest move counter value is kept".
        dcrt = DCRT()
        dcrt.set(3, 7, move_counter=3)
        assert not dcrt.merge(3, DCRTEntry(5, 2))
        assert dcrt.cluster_of(3) == 7

    def test_merge_equal_counter_keeps_existing(self):
        dcrt = DCRT()
        dcrt.set(3, 7, move_counter=3)
        assert not dcrt.merge(3, DCRTEntry(9, 3))
        assert dcrt.cluster_of(3) == 7

    def test_merge_into_empty(self):
        dcrt = DCRT()
        assert dcrt.merge(3, DCRTEntry(2, 0))
        assert dcrt.cluster_of(3) == 2

    def test_snapshot_merge_roundtrip(self):
        a = DCRT()
        a.set(1, 4, 1)
        a.set(2, 5, 2)
        b = DCRT()
        changed = b.merge_snapshot(a.snapshot())
        assert changed == 2
        assert b.cluster_of(1) == 4
        assert b.cluster_of(2) == 5
        # Second merge is a no-op.
        assert b.merge_snapshot(a.snapshot()) == 0

    def test_out_of_order_delivery_converges(self):
        """Conflicting updates applied in any order give the same result."""
        updates = [(3, DCRTEntry(5, 1)), (3, DCRTEntry(8, 3)), (3, DCRTEntry(6, 2))]
        import itertools

        for permutation in itertools.permutations(updates):
            dcrt = DCRT()
            for category_id, entry in permutation:
                dcrt.merge(category_id, entry)
            assert dcrt.cluster_of(3) == 8

    def test_categories_listing(self):
        dcrt = DCRT()
        dcrt.set(5, 1)
        dcrt.set(2, 1)
        assert dcrt.categories() == [2, 5]
        assert len(dcrt) == 2


class TestNRT:
    def test_add_and_list(self):
        nrt = NRT()
        nrt.add(1, 10)
        nrt.add(1, 11)
        assert nrt.nodes_in(1) == [10, 11]
        assert 1 in nrt

    def test_lru_eviction(self):
        # Section 6.2: "an LRU replacement algorithm can be adopted".
        nrt = NRT(max_nodes_per_cluster=2)
        nrt.add(1, 10)
        nrt.add(1, 11)
        nrt.add(1, 12)
        assert nrt.nodes_in(1) == [11, 12]

    def test_touch_refreshes_recency(self):
        nrt = NRT(max_nodes_per_cluster=2)
        nrt.add(1, 10)
        nrt.add(1, 11)
        nrt.add(1, 10)  # refresh 10
        nrt.add(1, 12)  # evicts 11, not 10
        assert nrt.nodes_in(1) == [10, 12]

    def test_remove(self):
        nrt = NRT()
        nrt.add(1, 10)
        nrt.remove(1, 10)
        assert nrt.nodes_in(1) == []
        assert 1 not in nrt

    def test_remove_node_everywhere(self):
        nrt = NRT()
        nrt.add(1, 10)
        nrt.add(2, 10)
        nrt.add(2, 11)
        nrt.remove_node(10)
        assert nrt.nodes_in(1) == []
        assert nrt.nodes_in(2) == [11]

    def test_random_node_uniformish(self):
        nrt = NRT()
        nrt.add_many(1, range(10))
        rng = np.random.default_rng(0)
        picks = [nrt.random_node(1, rng) for _ in range(2000)]
        counts = np.bincount(picks, minlength=10)
        assert counts.min() > 120  # expected 200 each

    def test_random_node_empty(self):
        nrt = NRT()
        assert nrt.random_node(9, np.random.default_rng(0)) is None

    def test_clusters_listing(self):
        nrt = NRT()
        nrt.add(3, 1)
        nrt.add(1, 1)
        assert nrt.clusters() == [1, 3]

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            NRT(max_nodes_per_cluster=0)
