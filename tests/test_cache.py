"""Tests for the requester-side query cache (future-work item viii)."""

import numpy as np
import pytest

from repro.core.fairness import jain_fairness
from repro.model.workload import make_query_workload
from repro.overlay.peer import PeerConfig
from repro.overlay.system import P2PSystem, P2PSystemConfig

from tests.helpers import MicroOverlay, build_world


def _cached_overlay(capacity=4):
    overlay = MicroOverlay()
    for node_id in (0, 1, 2):
        overlay.add_peer(node_id, config=PeerConfig(cache_capacity=capacity))
    overlay.wire_cluster(0, [0, 1, 2], edges=[(0, 1), (1, 2)],
                         category_map={7: 0})
    return overlay


class TestPeerCache:
    def test_retrieved_document_is_cached(self):
        overlay = _cached_overlay()
        overlay.give_document(1, 100, [7])
        requester = overlay.peers[0]
        requester.nrt.remove(0, 0)
        requester.nrt.remove(0, 2)
        requester.start_query(1, 7, 1, target_doc_id=100)
        overlay.run()
        assert requester.dt.has_document(100)
        # The cached copy registered in the holder directory.
        assert 0 in overlay.hooks.holders[100]

    def test_cached_copy_serves_others(self):
        overlay = _cached_overlay()
        overlay.give_document(1, 100, [7])
        requester = overlay.peers[0]
        requester.nrt.remove(0, 0)
        requester.nrt.remove(0, 2)
        requester.start_query(1, 7, 1, target_doc_id=100)
        overlay.run()
        # Node 2 now asks; its first hop is node 0 (the cacher), which can
        # serve directly from cache.
        second = overlay.peers[2]
        second.nrt.remove(0, 1)
        second.nrt.remove(0, 2)
        second.start_query(2, 7, 1, target_doc_id=100)
        overlay.run()
        responders = [
            r.responder_id for peer_id, r in overlay.hooks.responses
            if peer_id == 2
        ]
        assert responders == [0]

    def test_lru_eviction(self):
        overlay = _cached_overlay(capacity=2)
        for doc_id in (100, 101, 102):
            overlay.give_document(1, doc_id, [7])
        requester = overlay.peers[0]
        requester.nrt.remove(0, 0)
        requester.nrt.remove(0, 2)
        for i, doc_id in enumerate((100, 101, 102)):
            requester.start_query(10 + i, 7, 1, target_doc_id=doc_id)
            overlay.run()
        assert not requester.dt.has_document(100)  # evicted
        assert requester.dt.has_document(101)
        assert requester.dt.has_document(102)
        # Eviction also unregistered the holder.
        assert 0 not in overlay.hooks.holders.get(100, set())

    def test_contributions_never_evicted(self):
        overlay = _cached_overlay(capacity=1)
        requester = overlay.peers[0]
        overlay.give_document(0, 50, [7])  # own contribution
        overlay.give_document(1, 100, [7])
        overlay.give_document(1, 101, [7])
        requester.nrt.remove(0, 0)
        requester.nrt.remove(0, 2)
        requester.start_query(1, 7, 1, target_doc_id=100)
        overlay.run()
        requester.start_query(2, 7, 1, target_doc_id=101)
        overlay.run()
        # 100 was evicted by 101 (capacity 1); the contribution survives.
        assert requester.dt.has_document(50)
        assert not requester.dt.has_document(100)

    def test_cache_disabled_by_default(self):
        overlay = MicroOverlay()
        for node_id in (0, 1):
            overlay.add_peer(node_id)
        overlay.wire_cluster(0, [0, 1], edges=[(0, 1)], category_map={7: 0})
        overlay.give_document(1, 100, [7])
        requester = overlay.peers[0]
        requester.nrt.remove(0, 0)
        requester.start_query(1, 7, 1, target_doc_id=100)
        overlay.run()
        assert not requester.dt.has_document(100)

    def test_response_charged_as_download(self):
        overlay = _cached_overlay()
        overlay.give_document(1, 100, [7], size=5_000_000)
        requester = overlay.peers[0]
        requester.nrt.remove(0, 0)
        requester.nrt.remove(0, 2)
        requester.start_query(1, 7, 1, target_doc_id=100)
        overlay.run()
        assert overlay.network.stats.bytes_by_kind["query_response"] >= 5_000_000


class TestSystemLevelCache:
    def test_caching_spreads_hot_load(self):
        """With caching on, the hottest documents' load spreads over the
        peers that retrieved them, improving load fairness."""
        instance, assignment, plan = build_world(scale=0.02, seed=41, hot_mass=0.0)
        workload = make_query_workload(instance, 4000, seed=42)

        def run_with(capacity):
            system = P2PSystem(
                instance,
                assignment,
                plan=plan,
                config=P2PSystemConfig(cache_capacity=capacity, seed=1),
            )
            system.run_workload(workload)
            loads = np.array(list(system.node_loads().values()), dtype=float)
            return jain_fairness(loads), float(loads.max() / max(1.0, loads.sum()))

        fairness_off, hottest_off = run_with(0)
        fairness_on, hottest_on = run_with(16)
        assert fairness_on > fairness_off
        assert hottest_on <= hottest_off
