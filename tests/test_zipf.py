"""Tests for repro.model.zipf."""

import numpy as np
import pytest

from repro.model.zipf import (
    estimate_theta,
    expected_top_mass,
    harmonic_generalized,
    mass_of_top,
    top_mass_count,
    zipf_cdf,
    zipf_pmf,
    zipf_sample,
)


class TestZipfPmf:
    def test_sums_to_one(self):
        assert zipf_pmf(100, 0.8).sum() == pytest.approx(1.0)

    def test_non_increasing(self):
        pmf = zipf_pmf(500, 0.7)
        assert np.all(np.diff(pmf) <= 0)

    def test_theta_zero_is_uniform(self):
        pmf = zipf_pmf(10, 0.0)
        assert np.allclose(pmf, 0.1)

    def test_single_item(self):
        assert zipf_pmf(1, 0.8) == pytest.approx([1.0])

    def test_higher_theta_is_more_skewed(self):
        low = zipf_pmf(100, 0.4)
        high = zipf_pmf(100, 0.9)
        assert high[0] > low[0]
        assert high[-1] < low[-1]

    def test_rank_ratio_matches_law(self):
        theta = 0.8
        pmf = zipf_pmf(1000, theta)
        # p(1)/p(2) = 2**theta
        assert pmf[0] / pmf[1] == pytest.approx(2**theta)

    def test_rejects_bad_n(self):
        with pytest.raises(ValueError):
            zipf_pmf(0, 0.8)

    def test_rejects_negative_theta(self):
        with pytest.raises(ValueError):
            zipf_pmf(10, -0.1)


class TestZipfCdf:
    def test_ends_at_one(self):
        assert zipf_cdf(50, 0.8)[-1] == pytest.approx(1.0)

    def test_monotone(self):
        cdf = zipf_cdf(50, 0.8)
        assert np.all(np.diff(cdf) > 0)


class TestZipfSample:
    def test_deterministic_for_seed(self):
        a = zipf_sample(np.random.default_rng(1), 100, 0.8, 50)
        b = zipf_sample(np.random.default_rng(1), 100, 0.8, 50)
        assert np.array_equal(a, b)

    def test_range(self):
        sample = zipf_sample(np.random.default_rng(2), 20, 0.8, 1000)
        assert sample.min() >= 0
        assert sample.max() < 20

    def test_rank_zero_most_frequent(self):
        sample = zipf_sample(np.random.default_rng(3), 50, 0.9, 20000)
        counts = np.bincount(sample, minlength=50)
        assert counts[0] == counts.max()

    def test_empty(self):
        assert len(zipf_sample(np.random.default_rng(4), 10, 0.8, 0)) == 0

    def test_rejects_negative_size(self):
        with pytest.raises(ValueError):
            zipf_sample(np.random.default_rng(5), 10, 0.8, -1)


class TestTopMass:
    def test_top_mass_count_basic(self):
        pmf = np.array([0.5, 0.3, 0.2])
        assert top_mass_count(pmf, 0.5) == 1
        assert top_mass_count(pmf, 0.6) == 2
        assert top_mass_count(pmf, 1.0) == 3

    def test_top_mass_count_unsorted_input(self):
        pmf = np.array([0.2, 0.5, 0.3])
        assert top_mass_count(pmf, 0.5) == 1

    def test_top_mass_count_empty(self):
        assert top_mass_count(np.array([]), 0.5) == 0

    def test_top_mass_count_rejects_bad_mass(self):
        with pytest.raises(ValueError):
            top_mass_count(np.array([1.0]), 1.5)

    def test_mass_of_top_inverse(self):
        pmf = zipf_pmf(1000, 0.8)
        count = top_mass_count(pmf, 0.35)
        assert mass_of_top(pmf, count) >= 0.35
        assert mass_of_top(pmf, count - 1) < 0.35

    def test_paper_claim_top_10pct_over_35pct(self):
        # Section 4.3.3: <10% of docs cover >35% of the mass for realistic
        # Zipf parameters.
        for n in (1000, 10_000):
            for theta in (0.6, 0.7, 0.8):
                assert expected_top_mass(n, theta, 0.10) > 0.35

    def test_mass_of_top_zero(self):
        assert mass_of_top(zipf_pmf(10, 0.8), 0) == 0.0


class TestEstimateTheta:
    def test_recovers_generating_parameter(self):
        rng = np.random.default_rng(6)
        sample = zipf_sample(rng, 2000, 0.8, 200_000)
        counts = np.bincount(sample, minlength=2000)
        assert estimate_theta(counts) == pytest.approx(0.8, abs=0.1)

    def test_uniform_counts_give_zero(self):
        assert estimate_theta(np.full(100, 7)) == pytest.approx(0.0, abs=1e-9)

    def test_degenerate_input(self):
        assert estimate_theta(np.array([5])) == 0.0
        assert estimate_theta(np.array([])) == 0.0


class TestHarmonic:
    def test_matches_direct_sum(self):
        assert harmonic_generalized(100, 0.8) == pytest.approx(
            sum(i**-0.8 for i in range(1, 101))
        )

    def test_rejects_bad_n(self):
        with pytest.raises(ValueError):
            harmonic_generalized(0, 0.8)

    def test_expected_top_mass_bounds(self):
        assert expected_top_mass(100, 0.8, 0.0) == 0.0
        assert expected_top_mass(100, 0.8, 1.0) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            expected_top_mass(100, 0.8, 1.5)
