"""Failure injection: network partitions during monitoring and gossip.

Section 6.1.2: "failures and faults may result in the physical
partitioning of clusters, resulting in turn in the creation of multiple
trees (sub-clusters) per cluster, which will participate independently in
the adaptation process" — and reconcile when the partition heals.
"""

from tests.helpers import MicroOverlay


def _partitioned_cluster():
    """Six nodes in one cluster; a partition splits {0,1,2} from {3,4,5}."""
    overlay = MicroOverlay()
    for node_id in range(6):
        overlay.add_peer(node_id, capacity=1.0 + node_id)
    edges = [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (0, 5)]
    overlay.wire_cluster(4, range(6), edges=edges, category_map={7: 4})
    for node_id in range(6):
        overlay.peers[node_id].hit_counters[7] = 10 * (node_id + 1)
    overlay.network.set_partition([0, 1, 2], 1)
    overlay.network.set_partition([3, 4, 5], 2)
    return overlay


class TestPartitionedMonitoring:
    def test_subcluster_trees_complete_independently(self):
        overlay = _partitioned_cluster()
        # One "leader" per side starts monitoring; cross-partition requests
        # are lost and the timeout closes each side's tree.
        overlay.peers[0].start_monitoring(cluster_id=4, round_id=1)
        overlay.peers[5].start_monitoring(cluster_id=4, round_id=1)
        overlay.run()
        results = {leader: counts for leader, _c, _r, counts, _w, _s
                   in overlay.hooks.monitoring}
        assert set(results) == {0, 5}
        # Side A: nodes 0,1,2 -> 10+20+30; side B: 3,4,5 -> 40+50+60.
        assert results[0] == {7: 60}
        assert results[5] == {7: 150}

    def test_healed_partition_monitors_whole_cluster(self):
        overlay = _partitioned_cluster()
        overlay.network.heal_partitions()
        overlay.peers[0].start_monitoring(cluster_id=4, round_id=2)
        overlay.run()
        assert overlay.hooks.monitoring[-1][3] == {7: 210}

    def test_gossip_reconciles_after_heal(self):
        overlay = _partitioned_cluster()
        # Side A learns of a category move while partitioned.
        from repro.overlay.metadata import DCRTEntry

        for node_id in (0, 1, 2):
            overlay.peers[node_id].dcrt.merge(7, DCRTEntry(9, move_counter=3))
        # While split, side B still believes the old mapping.
        for _ in range(3):
            for peer in overlay.peers.values():
                peer.gossip_once()
            overlay.run()
        assert overlay.peers[5].dcrt.cluster_of(7) == 4
        # Heal; epidemic exchange reconciles via the move counter.
        overlay.network.heal_partitions()
        for _ in range(8):
            for peer in overlay.peers.values():
                peer.gossip_once()
            overlay.run()
        for node_id in range(6):
            assert overlay.peers[node_id].dcrt.cluster_of(7) == 9, node_id

    def test_elections_diverge_per_partition(self):
        overlay = _partitioned_cluster()
        for _ in range(4):
            for peer in overlay.peers.values():
                peer.announce_capabilities()
            overlay.run()
        # Capability knowledge bootstrapped at wire time covers everyone,
        # so restrict the election to what each side can actually reach.
        side_a, side_b = {0, 1, 2}, {3, 4, 5}
        for node_id in side_a:
            overlay.peers[node_id].elect_leaders(alive=side_a)
        for node_id in side_b:
            overlay.peers[node_id].elect_leaders(alive=side_b)
        # Two leaders exist simultaneously — the paper says "this poses no
        # problem"; each side picks its most capable reachable node.
        assert overlay.peers[0].believed_leader[4] == 2
        assert overlay.peers[5].believed_leader[4] == 5
