"""Tests for the Gnutella flooding baseline."""

import numpy as np
import pytest

from repro.baselines.gnutella import GnutellaNetwork


@pytest.fixture()
def network():
    rng = np.random.default_rng(0)
    net = GnutellaNetwork(range(100), rng, degree=4)
    return net


class TestTopology:
    def test_connected(self, network):
        # BFS from node 0 must reach everyone (chain construction).
        seen = {0}
        frontier = [0]
        while frontier:
            current = frontier.pop()
            for neighbor in network.nodes[current].neighbors:
                if neighbor not in seen:
                    seen.add(neighbor)
                    frontier.append(neighbor)
        assert seen == set(range(100))

    def test_symmetric_edges(self, network):
        for node_id, node in network.nodes.items():
            for neighbor in node.neighbors:
                assert node_id in network.nodes[neighbor].neighbors

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            GnutellaNetwork([], np.random.default_rng(0))


class TestFlooding:
    def test_local_hit_zero_hops(self, network):
        network.place_document(5, [10])
        result = network.flood(10, 5, ttl=7)
        assert result.found
        assert result.hops == 0
        assert result.messages == 0

    def test_neighbor_hit_one_hop(self, network):
        start = 0
        neighbor = next(iter(network.nodes[0].neighbors))
        network.place_document(5, [neighbor])
        result = network.flood(start, 5, ttl=7)
        assert result.found
        assert result.hops == 1

    def test_ttl_zero_fails_remote(self, network):
        network.place_document(5, [50])
        result = network.flood(0, 5, ttl=0)
        assert not result.found or 0 == 50

    def test_missing_document_fails(self, network):
        result = network.flood(0, 424242, ttl=7)
        assert not result.found
        assert result.responder is None

    def test_higher_ttl_higher_success(self):
        rng = np.random.default_rng(2)
        net = GnutellaNetwork(range(200), rng, degree=3)
        holders = rng.integers(0, 200, size=100)
        for doc_id in range(100):
            net.place_document(doc_id, [int(holders[doc_id])])
        queries = list(range(100))

        def success(ttl):
            results, _ = net.run_queries(queries, np.random.default_rng(3), ttl=ttl)
            return sum(r.found for r in results) / len(results)

        assert success(2) <= success(4) <= success(8)

    def test_messages_grow_with_distance(self, network):
        # A document far away costs more messages than a nearby one.
        network.place_document(1, [0])
        network.place_document(2, [77])
        near = network.flood(0, 1, ttl=7)
        far = network.flood(0, 2, ttl=7)
        if far.found:
            assert far.messages >= near.messages

    def test_load_accounted_at_responder(self, network):
        network.place_document(5, [10])
        network.flood(10, 5, ttl=7)
        assert network.nodes[10].requests_served == 1

    def test_rejects_negative_ttl(self, network):
        with pytest.raises(ValueError):
            network.flood(0, 5, ttl=-1)

    def test_unknown_start_rejected(self, network):
        with pytest.raises(KeyError):
            network.flood(4242, 5, ttl=3)

    def test_replicas_shorten_search(self):
        rng = np.random.default_rng(4)
        net_single = GnutellaNetwork(range(200), rng, degree=3)
        rng2 = np.random.default_rng(4)
        net_replicated = GnutellaNetwork(range(200), rng2, degree=3)
        net_single.place_document(1, [150])
        net_replicated.place_document(1, [150, 50, 100, 0])
        queries = [1] * 50
        results_single, _ = net_single.run_queries(
            queries, np.random.default_rng(5), ttl=7
        )
        results_replicated, _ = net_replicated.run_queries(
            queries, np.random.default_rng(5), ttl=7
        )
        mean_single = np.mean([r.hops for r in results_single if r.found])
        mean_replicated = np.mean(
            [r.hops for r in results_replicated if r.found]
        )
        assert mean_replicated <= mean_single
