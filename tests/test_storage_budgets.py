"""Tests for storage-budget-constrained replica placement (§4.3.3 premise)."""

import numpy as np
import pytest

from repro.core.maxfair import maxfair
from repro.core.popularity import build_category_stats
from repro.core.replication import plan_replication
from repro.model.system import SystemConfig, build_system

MB = 1024 * 1024


def _budgeted_instance(budget_bytes, seed=71):
    config = SystemConfig(
        n_docs=400,
        n_nodes=60,
        n_categories=8,
        n_clusters=3,
        doc_size_bytes=MB,
        seed=seed,
    )
    instance = build_system(config)
    for node in instance.nodes.values():
        node.storage_bytes = budget_bytes
    return instance


class TestStorageBudgets:
    def test_budgets_respected(self):
        budget = 40 * MB
        instance = _budgeted_instance(budget)
        assignment = maxfair(instance)
        plan = plan_replication(instance, assignment, n_reps=2, hot_mass=0.35)
        for node_id, used in plan.node_bytes.items():
            assert used <= budget, node_id

    def test_unlimited_budget_unchanged(self):
        instance = _budgeted_instance(None)
        assignment = maxfair(instance)
        plan = plan_replication(instance, assignment, n_reps=2, hot_mass=0.35)
        assert plan.mean_node_bytes() > 0

    def test_tight_budget_reduces_replication(self):
        roomy = _budgeted_instance(None)
        tight = _budgeted_instance(15 * MB)
        assignment_roomy = maxfair(roomy)
        assignment_tight = maxfair(tight)
        plan_roomy = plan_replication(roomy, assignment_roomy, n_reps=3, hot_mass=0.35)
        plan_tight = plan_replication(tight, assignment_tight, n_reps=3, hot_mass=0.35)
        assert sum(plan_tight.node_bytes.values()) < sum(plan_roomy.node_bytes.values())

    def test_base_replicas_survive_tight_budgets(self):
        """Even with tight budgets, most documents keep at least one
        placed copy (budget-skipping falls through to nodes with room)."""
        instance = _budgeted_instance(20 * MB)
        assignment = maxfair(instance)
        plan = plan_replication(instance, assignment, n_reps=2, hot_mass=0.0)
        placed = set()
        for docs in plan.node_docs.values():
            placed.update(docs)
        coverage = len(placed) / len(instance.documents)
        assert coverage > 0.95

    def test_impossible_budget_places_nothing_quietly(self):
        # Budgets smaller than one document: nothing fits, nothing breaks.
        instance = _budgeted_instance(MB // 2)
        assignment = maxfair(instance)
        plan = plan_replication(instance, assignment, n_reps=1, hot_mass=0.0)
        assert sum(plan.node_bytes.values()) == 0
