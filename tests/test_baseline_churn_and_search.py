"""Tests: Chord churn and the [7] search strategy variants."""

import numpy as np
import pytest

from repro.baselines.chord import ChordNetwork
from repro.baselines.gnutella import GnutellaNetwork


class TestChordChurn:
    def _ring(self, n=50):
        network = ChordNetwork(range(n), bits=20)
        network.store_all(range(500))
        return network

    def test_join_preserves_all_keys(self):
        network = self._ring()
        network.join(label=999)
        stored = sorted(d for node in network.nodes.values() for d in node.keys)
        assert stored == list(range(500))

    def test_join_takes_over_correct_range(self):
        network = self._ring()
        new_id = network.join(label=999)
        newcomer = network.nodes[new_id]
        for doc_id in newcomer.keys:
            assert network.store(doc_id) == new_id  # idempotent re-store

    def test_lookup_correct_after_join(self):
        network = self._ring()
        network.join(label=999)
        for doc_id in (0, 100, 499):
            holder, _ = network.lookup(0, doc_id)
            assert doc_id in network.nodes[holder].keys

    def test_leave_moves_keys_to_successor(self):
        network = self._ring()
        victim = network.nodes[network._ring[3]].label
        keys_before = set(network.nodes[network._ring[3]].keys)
        network.leave(victim)
        stored = sorted(d for node in network.nodes.values() for d in node.keys)
        assert stored == list(range(500))
        if keys_before:
            for doc_id in keys_before:
                holder, _ = network.lookup(0, doc_id)
                assert doc_id in network.nodes[holder].keys

    def test_join_duplicate_label_rejected(self):
        network = self._ring()
        with pytest.raises(ValueError):
            network.join(label=0)

    def test_leave_unknown_label_rejected(self):
        network = self._ring()
        with pytest.raises(KeyError):
            network.leave(label=424242)

    def test_cannot_empty_the_ring(self):
        network = ChordNetwork([1], bits=20)
        with pytest.raises(ValueError):
            network.leave(1)

    def test_churn_storm_keeps_ring_consistent(self):
        network = self._ring(30)
        rng = np.random.default_rng(5)
        next_label = 1000
        for _ in range(20):
            if rng.random() < 0.5 and len(network.nodes) > 2:
                labels = [node.label for node in network.nodes.values()]
                network.leave(labels[int(rng.integers(0, len(labels)))])
            else:
                network.join(next_label)
                next_label += 1
        stored = sorted(d for node in network.nodes.values() for d in node.keys)
        assert stored == list(range(500))
        holder, hops = network.lookup(0, 123)
        assert 123 in network.nodes[holder].keys


class TestSearchStrategies:
    @pytest.fixture()
    def network(self):
        rng = np.random.default_rng(7)
        net = GnutellaNetwork(range(300), rng, degree=4)
        holders = rng.integers(0, 300, size=(120, 3))
        for doc_id in range(120):
            net.place_document(doc_id, {int(h) for h in holders[doc_id]})
        return net

    def test_iterative_deepening_finds_what_flood_finds(self, network):
        rng = np.random.default_rng(8)
        queries = list(range(60))
        flood_results, _ = network.run_queries(
            queries, rng, ttl=7, strategy="flood"
        )
        deep_results, _ = network.run_queries(
            queries, np.random.default_rng(8), strategy="iterative_deepening"
        )
        for flood_result, deep_result in zip(flood_results, deep_results):
            assert deep_result.found == flood_result.found

    def test_iterative_deepening_cheaper_on_average(self, network):
        """[7]'s claim: most content is near, so shallow-first saves
        messages versus always flooding to the full TTL of 7."""
        queries = list(range(120)) * 2
        flood_results, _ = network.run_queries(
            queries, np.random.default_rng(9), ttl=7, strategy="flood"
        )
        deep_results, _ = network.run_queries(
            queries, np.random.default_rng(9), strategy="iterative_deepening"
        )
        flood_msgs = np.mean([r.messages for r in flood_results])
        deep_msgs = np.mean([r.messages for r in deep_results])
        assert deep_msgs < flood_msgs

    def test_random_walk_bounded_messages(self, network):
        results, _ = network.run_queries(
            list(range(60)),
            np.random.default_rng(10),
            strategy="random_walk",
        )
        assert all(r.messages <= 4 * 128 for r in results)
        found = sum(r.found for r in results)
        assert found / len(results) > 0.5  # walkers usually succeed

    def test_unknown_strategy_rejected(self, network):
        with pytest.raises(ValueError):
            network.run_queries([1], np.random.default_rng(0), strategy="psychic")

    def test_local_hits_cost_nothing_everywhere(self, network):
        network.place_document(999, [42])
        for strategy in ("flood", "iterative_deepening", "random_walk"):
            if strategy == "random_walk":
                result = network.random_walk(42, 999, np.random.default_rng(1))
            elif strategy == "flood":
                result = network.flood(42, 999, ttl=7)
            else:
                result = network.iterative_deepening(42, 999)
            assert result.found
            assert result.hops == 0
            assert result.messages == 0
