"""Tests for repro.overlay.cluster — graphs, trees, leader election."""

import numpy as np
import pytest

from repro.overlay.cluster import (
    ClusterGraph,
    build_cluster_graph,
    elect_leader,
    spanning_tree,
)


class TestClusterGraph:
    def test_build_is_connected(self):
        rng = np.random.default_rng(0)
        for size in (1, 2, 5, 50):
            graph = build_cluster_graph(0, range(size), rng, degree=4)
            assert graph.is_connected()
            assert graph.members == set(range(size))

    def test_no_self_loops(self):
        graph = build_cluster_graph(0, range(30), np.random.default_rng(1))
        for node_id, neighbors in graph.adjacency.items():
            assert node_id not in neighbors

    def test_symmetry(self):
        graph = build_cluster_graph(0, range(30), np.random.default_rng(2))
        for node_id, neighbors in graph.adjacency.items():
            for neighbor in neighbors:
                assert node_id in graph.adjacency[neighbor]

    def test_empty(self):
        graph = build_cluster_graph(0, [], np.random.default_rng(3))
        assert graph.members == set()
        assert graph.is_connected()

    def test_add_member(self):
        graph = build_cluster_graph(0, range(5), np.random.default_rng(4))
        graph.add_member(99, attach_to=[0, 1])
        assert 99 in graph.members
        assert graph.neighbors(99) == {0, 1}
        assert 99 in graph.neighbors(0)

    def test_add_member_ignores_unknown_attach(self):
        graph = build_cluster_graph(0, range(3), np.random.default_rng(5))
        graph.add_member(99, attach_to=[12345])
        assert graph.neighbors(99) == set()

    def test_remove_member(self):
        graph = build_cluster_graph(0, range(5), np.random.default_rng(6))
        neighbors = set(graph.neighbors(2))
        graph.remove_member(2)
        assert 2 not in graph.members
        for other in neighbors:
            assert 2 not in graph.neighbors(other)

    def test_connectivity_with_alive_subset(self):
        graph = ClusterGraph(cluster_id=0)
        graph.adjacency = {1: {2}, 2: {1, 3}, 3: {2}, 4: set()}
        assert not graph.is_connected()
        assert graph.is_connected(alive={1, 2, 3})


class TestSpanningTree:
    def test_covers_reachable_nodes(self):
        graph = build_cluster_graph(0, range(40), np.random.default_rng(7))
        parent, children = spanning_tree(graph, root=0)
        assert set(parent) == graph.members
        assert parent[0] == 0

    def test_parent_child_consistency(self):
        graph = build_cluster_graph(0, range(40), np.random.default_rng(8))
        parent, children = spanning_tree(graph, root=0)
        for node, node_parent in parent.items():
            if node == 0:
                continue
            assert node in children[node_parent]
            assert node_parent in graph.neighbors(node)

    def test_tree_is_acyclic(self):
        graph = build_cluster_graph(0, range(40), np.random.default_rng(9))
        parent, children = spanning_tree(graph, root=0)
        edges = sum(len(c) for c in children.values())
        assert edges == len(parent) - 1

    def test_respects_alive_subset(self):
        graph = ClusterGraph(cluster_id=0)
        graph.adjacency = {1: {2}, 2: {1, 3}, 3: {2}}
        parent, _ = spanning_tree(graph, root=1, alive={1, 2})
        assert set(parent) == {1, 2}

    def test_dead_root_rejected(self):
        graph = build_cluster_graph(0, range(5), np.random.default_rng(10))
        with pytest.raises(ValueError):
            spanning_tree(graph, root=0, alive={1, 2})


class TestElection:
    def test_most_capable_wins(self):
        # Section 6.1.1: "the most powerful node in each cluster is chosen".
        assert elect_leader({1: 2.0, 2: 5.0, 3: 1.0}) == 2

    def test_tie_breaks_to_highest_id(self):
        assert elect_leader({1: 5.0, 2: 5.0}) == 2

    def test_respects_alive_filter(self):
        assert elect_leader({1: 2.0, 2: 5.0}, alive={1}) == 1

    def test_no_candidates(self):
        assert elect_leader({}, alive=set()) is None
        assert elect_leader({1: 1.0}, alive=set()) is None
