"""Multi-source fetch: scheduling, failover, read-repair, and eviction.

The integration tests run a small :class:`P2PSystem` with the content
data plane enabled (256 KiB documents -> four chunks each); the
rarest-first unit tests drive a bare :class:`PeerContent` with a
fabricated source map.
"""

import pytest

from repro.content.chunks import ContentConfig
from repro.content.manifest import build_manifest
from repro.core.maxfair import maxfair
from repro.core.popularity import build_category_stats
from repro.core.replication import plan_replication
from repro.model.system import SystemConfig, build_system
from repro.overlay.peer import DocInfo, PeerConfig
from repro.overlay.system import P2PSystem, P2PSystemConfig

from tests.helpers import MicroOverlay


def make_content_system(seed=7, cache_capacity=0, **content_kwargs):
    """A small live system with four-chunk documents and content on."""
    instance = build_system(SystemConfig(
        seed=seed,
        n_docs=40,
        n_nodes=10,
        n_categories=8,
        n_clusters=2,
        doc_size_bytes=262_144,
    ))
    stats = build_category_stats(instance)
    assignment = maxfair(instance, stats=stats)
    plan = plan_replication(instance, assignment, n_reps=2, hot_mass=0.35)
    return P2PSystem(
        instance,
        assignment,
        plan=plan,
        config=P2PSystemConfig(
            seed=seed,
            cache_capacity=cache_capacity,
            content=ContentConfig(enabled=True, **content_kwargs),
        ),
    )


def doc_with_holders(system, min_holders=2, exclude=()):
    """(doc_id, holders) for the first doc with enough live holders."""
    manager = system.content
    for doc_id in sorted(manager.manifests):
        holders = manager.live_holders(doc_id)
        if len(holders) >= min_holders and not set(holders) & set(exclude):
            return doc_id, holders
    raise AssertionError("no suitable document in this world")


def pick_requester(system, doc_id, exclude=()):
    for peer in system.alive_peers():
        if peer.node_id in exclude:
            continue
        if doc_id not in peer.docs:
            return peer
    raise AssertionError("every peer already holds the document")


class TestFetchHappyPath:
    def test_fetch_completes_verified_and_registers_holder(self):
        system = make_content_system()
        manager = system.content
        doc_id, holders = doc_with_holders(system)
        requester = pick_requester(system, doc_id)
        fetch_id = manager.fetch(requester.node_id, doc_id)
        assert fetch_id is not None
        system.sim.run()
        record = manager.record_for(fetch_id)
        assert record.completed_at is not None
        assert record.verified
        assert not record.failed
        manifest = manager.manifest_for(doc_id)
        assert record.chunk_hashes == manifest.chunk_hashes
        assert record.bytes_fetched == manifest.size_bytes
        assert requester.node_id in manager.live_holders(doc_id)
        # Completion cleared the partial-holder bookkeeping.
        assert doc_id not in manager.partials
        assert doc_id not in requester.content_state.partial

    def test_fetch_refuses_holders_dead_nodes_and_unknown_docs(self):
        system = make_content_system()
        manager = system.content
        doc_id, holders = doc_with_holders(system)
        assert manager.fetch(holders[0], doc_id) is None  # already holds
        requester = pick_requester(system, doc_id)
        assert manager.fetch(requester.node_id, 999_999) is None  # unknown
        system.crash_node(requester.node_id)
        assert manager.fetch(requester.node_id, doc_id) is None  # dead

    def test_unavailable_document_fails_into_the_ledger(self):
        system = make_content_system()
        manager = system.content
        doc_id, holders = doc_with_holders(system)
        for holder in holders:
            system.crash_node(holder)
        requester = pick_requester(system, doc_id)
        fetch_id = manager.fetch(requester.node_id, doc_id)
        assert fetch_id is not None  # unavailability is recorded, not hidden
        system.sim.run()
        record = manager.record_for(fetch_id)
        assert record.failed
        assert record.failure == "no-live-source"


class TestFailover:
    def test_holder_crash_mid_transfer_fails_over(self):
        system = make_content_system()
        manager = system.content
        doc_id, holders = doc_with_holders(system, min_holders=2)
        requester = pick_requester(system, doc_id)
        fetch_id = manager.fetch(requester.node_id, doc_id)
        # Kill one source while its chunk requests are still in flight.
        system.crash_node(holders[0])
        system.sim.run()
        record = manager.record_for(fetch_id)
        assert record.completed_at is not None
        assert record.verified
        assert record.failovers >= 1

    def test_cache_eviction_mid_transfer_fails_over(self):
        # A holder whose copy is cache-owned can evict it between the
        # moment a fetch resolved sources and the moment the chunk
        # request arrives.  The found=False reply must fail the chunk
        # over to a surviving source, not the whole fetch.
        system = make_content_system(cache_capacity=1)
        manager = system.content
        doc_id, holders = doc_with_holders(system, min_holders=2)
        survivor = holders[0]
        for extra in holders[2:]:
            system.crash_node(extra)
        # Give a third peer a *cache-owned* copy, as if it had retrieved
        # the document earlier.
        cacher = pick_requester(system, doc_id)
        cacher._cache_store(manager.doc_info(doc_id))
        system.sim.run()
        assert cacher.node_id in manager.live_holders(doc_id)
        system.crash_node(holders[1])  # sources are now survivor + cacher
        requester = pick_requester(system, doc_id, exclude=(cacher.node_id,))
        fetch_id = manager.fetch(requester.node_id, doc_id)
        # LRU eviction while the chunk requests are in flight: caching a
        # second document evicts the first and deregisters the holder.
        other = next(
            d for d in sorted(manager.manifests)
            if d != doc_id and d not in cacher.docs
        )
        cacher._cache_store(manager.doc_info(other))
        assert doc_id not in cacher.docs
        assert cacher.node_id not in manager.live_holders(doc_id)
        system.sim.run()
        record = manager.record_for(fetch_id)
        assert record.completed_at is not None, record.failure
        assert record.verified
        assert record.failovers >= 1
        assert requester.node_id in manager.live_holders(doc_id)


class TestReadRepair:
    def test_corrupt_replica_is_detected_and_repaired(self):
        system = make_content_system()
        manager = system.content
        doc_id, holders = doc_with_holders(system, min_holders=2)
        for extra in holders[2:]:
            system.crash_node(extra)
        good, bad = holders[0], holders[1]
        bad_peer = system.peer(bad)
        manifest = manager.manifest_for(doc_id)
        for index in range(manifest.n_chunks):
            assert bad_peer.content_state.mark_corrupt(doc_id, index)
        requester = pick_requester(system, doc_id)
        fetch_id = manager.fetch(requester.node_id, doc_id)
        system.sim.run()
        record = manager.record_for(fetch_id)
        # The fetch completed with verified bytes despite the bad source,
        assert record.completed_at is not None
        assert record.verified
        assert record.chunk_hashes == manager.manifest_for(doc_id).chunk_hashes
        # ... pushed correct chunks back to the stale replica,
        assert record.repairs >= 1
        assert bad_peer.content_state.repairs_received >= 1
        repaired = set(range(manifest.n_chunks)) - (
            bad_peer.content_state.corrupt.get(doc_id, set())
        )
        assert repaired  # at least the chunks it served corrupt are clean
        # ... and bumped the manifest version.
        assert manager.manifest_for(doc_id).version >= 1
        assert record.manifest_version >= 1

    def test_mark_corrupt_requires_holding_the_chunk(self):
        system = make_content_system()
        manager = system.content
        doc_id, _ = doc_with_holders(system)
        outsider = pick_requester(system, doc_id)
        assert not outsider.content_state.mark_corrupt(doc_id, 0)


class TestRarestFirst:
    def _fetcher(self):
        overlay = MicroOverlay()
        peer = overlay.add_peer(
            0, config=PeerConfig(content=ContentConfig(enabled=True))
        )
        return overlay, peer, peer.content_state

    def test_order_is_scarcity_then_index(self):
        overlay, peer, content = self._fetcher()
        sources = {0: (1, 2), 1: (1,), 2: (1, 2, 3), 3: (2,)}
        requested = []
        peer._send = lambda dst, kind, payload, **kw: requested.append(
            (payload.chunk_index, dst)
        )
        manifest = build_manifest(9, size_bytes=40, chunk_size=10)
        info = DocInfo(doc_id=9, categories=(0,), size_bytes=40)
        content.start_fetch(
            1, info, manifest, sources_fn=lambda: dict(sources)
        )
        # Scarcest chunks first (1 and 3 have one source each), ties
        # broken by chunk index; then 0 (two sources), then 2 (three).
        assert [index for index, _ in requested] == [1, 3, 0, 2]

    def test_order_is_deterministic_across_runs(self):
        runs = []
        for _ in range(2):
            overlay, peer, content = self._fetcher()
            sources = {i: (1, 2, 3) for i in range(6)}
            requested = []
            peer._send = lambda dst, kind, payload, **kw: requested.append(
                (payload.chunk_index, dst)
            )
            manifest = build_manifest(9, size_bytes=60, chunk_size=10)
            info = DocInfo(doc_id=9, categories=(0,), size_bytes=60)
            content.start_fetch(
                1, info, manifest, sources_fn=lambda: dict(sources)
            )
            runs.append(tuple(requested))
        # All sources tie -> pure index order, and the stagger spreads
        # the first wave round-robin over the sorted sources; both are
        # RNG-free, so two fresh worlds issue identical request streams.
        assert runs[0] == runs[1]
        assert [index for index, _ in runs[0]] == list(range(6))
        assert [dst for _, dst in runs[0]] == [1, 2, 3, 1, 2, 3]

    def test_end_to_end_fetch_sequence_is_deterministic(self):
        ledgers = []
        for _ in range(2):
            system = make_content_system(seed=11)
            manager = system.content
            doc_id, _ = doc_with_holders(system)
            requester = pick_requester(system, doc_id)
            manager.fetch(requester.node_id, doc_id)
            system.sim.run()
            ledgers.append([
                (r.doc_id, r.completed_at, r.failovers, r.bytes_fetched,
                 r.chunk_hashes)
                for r in manager.fetch_ledger()
            ])
        assert ledgers[0] == ledgers[1]


class TestCrashLifecycle:
    def test_requester_crash_fails_open_fetches(self):
        system = make_content_system()
        manager = system.content
        doc_id, _ = doc_with_holders(system)
        requester = pick_requester(system, doc_id)
        fetch_id = manager.fetch(requester.node_id, doc_id)
        system.crash_node(requester.node_id)
        system.sim.run()
        record = manager.record_for(fetch_id)
        assert record.failed
        assert record.failure == "requester-crashed"
        assert requester.content_state.in_flight() == 0
