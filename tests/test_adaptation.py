"""Tests for the four-phase adaptation mechanism over a live system."""

import pytest

from repro.model.workload import add_hot_documents, make_query_workload
from repro.overlay.adaptation import AdaptationConfig
from repro.overlay.peer import DocInfo

from tests.helpers import build_live_system


@pytest.fixture(scope="module")
def live_system():
    return build_live_system(scale=0.02, seed=5, with_stats=True)


class TestAdaptationConfig:
    def test_paper_defaults(self):
        config = AdaptationConfig()
        assert config.low_threshold == 0.83
        assert config.high_threshold == 0.92

    def test_rejects_inverted_thresholds(self):
        with pytest.raises(ValueError):
            AdaptationConfig(low_threshold=0.95, high_threshold=0.90)


class TestAdaptationRound:
    def test_leaders_elected_for_every_populated_cluster(self, live_system):
        instance, system = live_system
        system.run_workload(make_query_workload(instance, 500, seed=1))
        outcome = system.run_adaptation(round_id=0)
        populated = {
            cluster_id
            for cluster_id in range(system.assignment.n_clusters)
            if system.peers_in_cluster(cluster_id)
        }
        assert set(outcome.leaders) == populated

    def test_leader_is_most_capable_member(self, live_system):
        instance, system = live_system
        outcome = system.run_adaptation(round_id=1)
        for cluster_id, leader_id in outcome.leaders.items():
            members = system.peers_in_cluster(cluster_id)
            top = max(peer.capacity_units for peer in members)
            leader = system.peer(leader_id)
            assert leader.capacity_units == top

    def test_balanced_system_not_rebalanced(self, live_system):
        instance, system = live_system
        system.reset_hit_counters()
        system.run_workload(make_query_workload(instance, 2000, seed=2))
        outcome = system.run_adaptation(round_id=2)
        assert outcome.observed_fairness > 0.83
        assert not outcome.rebalanced

    def test_observed_fairness_in_unit_interval(self, live_system):
        instance, system = live_system
        outcome = system.run_adaptation(round_id=3)
        assert 0.0 <= outcome.observed_fairness <= 1.0

    def test_round_charges_network_traffic(self, live_system):
        instance, system = live_system
        outcome = system.run_adaptation(round_id=4)
        assert outcome.bytes_used > 0


class TestFlashCrowdRecovery:
    def test_full_loop(self):
        """Flash crowd -> detection -> rebalance -> stable."""
        instance, system = build_live_system(scale=0.02, seed=9, with_stats=True)

        perturbation = add_hot_documents(
            instance, mass_fraction=0.45, seed=3, category_subset_fraction=0.1
        )
        owner_of = {}
        for node_id, node in instance.nodes.items():
            for doc_id in node.contributed_doc_ids:
                owner_of[doc_id] = node_id
        for doc_id in perturbation.new_doc_ids:
            doc = instance.documents[doc_id]
            publisher = system.peer(owner_of[doc_id])
            if publisher is not None:
                publisher.publish_document(
                    DocInfo(doc_id, doc.categories, doc.size_bytes)
                )
        system.sim.run()

        config = AdaptationConfig(low_threshold=0.92, high_threshold=0.94)
        fairness = []
        rebalanced_rounds = 0
        for round_id in range(1, 5):
            system.reset_hit_counters()
            system.run_workload(
                make_query_workload(instance, 3000, seed=100 + round_id)
            )
            outcome = system.run_adaptation(round_id=round_id, config=config)
            fairness.append(outcome.observed_fairness)
            rebalanced_rounds += outcome.rebalanced
        # At least one round rebalanced, and the system ends above where
        # it started.
        assert rebalanced_rounds >= 1
        assert fairness[-1] > fairness[0]
        # Once stabilized the last round should not need to rebalance
        # (convergence, not oscillation).
        assert fairness[-1] >= config.low_threshold

    def test_moves_update_authoritative_assignment(self):
        instance, system = build_live_system(
            scale=0.02, seed=9, with_stats=True, with_plan=False
        )
        before = system.assignment.category_to_cluster.copy()

        add_hot_documents(
            instance, mass_fraction=0.5, seed=4, category_subset_fraction=0.05
        )
        system.reset_hit_counters()
        system.run_workload(make_query_workload(instance, 3000, seed=11))
        outcome = system.run_adaptation(
            round_id=1,
            config=AdaptationConfig(low_threshold=0.95, high_threshold=0.97),
        )
        if outcome.rebalanced and outcome.moved_categories:
            after = system.assignment.category_to_cluster
            changed = [
                s for s in outcome.moved_categories if after[s] != before[s]
            ]
            assert changed, "moves must be reflected in the assignment"
            for category_id in set(outcome.moved_categories):
                assert system.assignment.move_counters[category_id] >= 1
