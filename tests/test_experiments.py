"""Smoke tests over every experiment module at tiny scale.

These pin (a) that every experiment runs end to end, (b) that the shapes
the paper reports actually hold on the reproduced system, and (c) that
``format_result`` renders without error (what the benchmarks print).
"""

import pytest

from repro.experiments import EXPERIMENTS
from repro.experiments import (
    comparison,
    dynamics,
    figure2,
    figure3,
    figure4,
    figure5,
    intra_cluster,
    rebalance_cost,
    scaling,
    storage,
)

SCALE = 0.05  # tiny but structurally complete


class TestRegistry:
    def test_all_experiments_registered(self):
        assert set(EXPERIMENTS) == {
            "F2", "F3", "F4", "F5", "T1", "T2", "T3", "E1", "E2", "E3",
            "X1", "X2", "X3", "FUZZ", "LOSS", "OVERLOAD", "CACHE-QOS",
            "SCENARIO", "HEAL", "RECOVERY",
        }

    def test_every_module_has_run_and_format(self):
        for module in EXPERIMENTS.values():
            assert callable(module.run)
            assert callable(module.format_result)


class TestFigure2:
    def test_shape(self):
        result = figure2.run(scale=SCALE)
        # MaxFair keeps fairness very high (paper: 0.98 at full scale).
        assert result.achieved_fairness > 0.93
        assert len(result.normalized_popularity) >= 2
        text = figure2.format_result(result)
        assert "fairness" in text


class TestFigure3:
    def test_shape(self):
        result = figure3.run(scale=SCALE)
        assert result.achieved_fairness > 0.93
        figure3.format_result(result)


class TestFigure4:
    def test_shape(self):
        result = figure4.run(scale=SCALE, thetas=(0.4, 0.8), n_repeats=2)
        for point in result.points:
            assert point.initial_fairness > 0.95
            assert point.final_fairness < point.initial_fairness
        # The perturbation hurts but stays "tolerable" (paper: >= 0.78 at
        # full scale; tiny instances are noisier, so bound loosely).
        assert result.worst_final > 0.5
        figure4.format_result(result)


class TestFigure5:
    def test_shape(self):
        result = figure5.run(scale=SCALE, seeds=(3, 11), max_moves=40)
        for run_ in result.runs:
            trace = run_.fairness_trace
            assert all(b > a for a, b in zip(trace, trace[1:]))
        assert result.all_converged
        figure5.format_result(result)


class TestScaling:
    def test_shape(self):
        result = scaling.run(scale=SCALE)
        assert result.min_fairness > 0.80
        strategies = dict(result.strategy_ablation)
        single_pass = {
            name: value
            for name, value in strategies.items()
            if name != "maxfair+refine"
        }
        assert strategies["maxfair"] >= max(single_pass.values()) - 1e-9
        # Local-search refinement never loses to the plain greedy.
        assert strategies["maxfair+refine"] >= strategies["maxfair"] - 1e-9
        scaling.format_result(result)


class TestStorage:
    def test_paper_numbers(self):
        result = storage.run(scale=SCALE)
        gb = 1024**3
        assert result.size_per_category_bytes == pytest.approx(20_000 * 1024**2)
        assert result.base_bytes_per_node == pytest.approx(100 * 1024**2)
        # "< 10% of docs cover > 35% of the mass".
        assert result.hot_docs_count < 100
        assert result.top10_mass_theta08 > 0.35
        assert result.sim_storage_fairness > 0.5
        storage.format_result(result)


class TestRebalanceCost:
    def test_paper_numbers(self):
        result = rebalance_cost.run(scale=SCALE)
        mb = 1024**2
        assert result.bytes_per_category == 8000 * mb
        assert result.bytes_per_transfer == pytest.approx(16 * mb)
        assert result.engaged_pairs == 5000
        assert result.engaged_fraction == pytest.approx(0.025)
        # The simulated run moved something and the transfers were small.
        if result.sim_transfer_messages:
            assert result.sim_mean_transfer_bytes < result.bytes_per_category
        rebalance_cost.format_result(result)


class TestComparison:
    def test_paper_claims(self):
        result = comparison.run(scale=SCALE, n_queries=2000)
        clustered = result.row("clustered (paper)")
        chord = result.row("chord (DHT)")
        gnutella = result.row("gnutella (flood)")
        central = result.row("central index")
        # Bounded, small hop counts for the clustered architecture.
        assert clustered.mean_hops <= 3.0
        assert clustered.mean_hops < chord.mean_hops
        assert clustered.mean_hops < gnutella.mean_hops
        # Better load fairness than hash placement or flooding.
        assert clustered.load_fairness > chord.load_fairness
        assert clustered.load_fairness > gnutella.load_fairness
        # The central index's hottest node absorbs ~half of everything.
        assert central.hottest_share > 0.4
        assert clustered.hottest_share < central.hottest_share
        comparison.format_result(result)


class TestIntraCluster:
    def test_replication_monotone(self):
        result = intra_cluster.run(
            scale=SCALE, n_queries=2000, hot_masses=(0.0, 0.35)
        )
        bare, hot = result.rows
        assert hot.expected_fairness > bare.expected_fairness
        assert hot.observed_fairness > bare.observed_fairness
        assert hot.mean_storage_mb > bare.mean_storage_mb
        intra_cluster.format_result(result)


class TestDynamics:
    def test_full_loop(self):
        result = dynamics.run(
            scale=0.02,
            queries_per_round=1500,
            n_rounds_after_crowd=2,
            churn_leaves=4,
            churn_joins=2,
        )
        labels = [r.label for r in result.rounds]
        assert labels[0] == "baseline"
        assert labels[-1] == "post-churn"
        # Query success stays high throughout churn and rebalancing.
        assert all(r.query_success_rate > 0.9 for r in result.rounds)
        # Metadata eventually agrees with the authoritative assignment.
        assert result.final_dcrt_agreement > 0.95
        dynamics.format_result(result)
