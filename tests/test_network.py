"""Tests for repro.sim.network — delivery, faults, accounting."""

import numpy as np
import pytest

from repro.sim.engine import Simulator
from repro.sim.network import Network


def _make(drop=0.0, rng=None, **kwargs):
    sim = Simulator()
    network = Network(sim, drop_probability=drop, rng=rng, **kwargs)
    return sim, network


class TestDelivery:
    def test_message_delivered_with_latency(self):
        sim, network = _make(base_latency=0.1, bandwidth=None)
        received = []
        network.register(1, lambda msg: received.append((sim.now, msg.payload)))
        network.transmit(0, 1, "ping", "hello")
        sim.run()
        assert received == [(pytest.approx(0.1), "hello")]

    def test_size_adds_transfer_time(self):
        sim, network = _make(base_latency=0.1, bandwidth=1000.0)
        received = []
        network.register(1, lambda msg: received.append(sim.now))
        network.transmit(0, 1, "data", None, size_bytes=500)
        sim.run()
        assert received == [pytest.approx(0.6)]

    def test_latency_for(self):
        _, network = _make(base_latency=0.05, bandwidth=100.0)
        assert network.latency_for(10) == pytest.approx(0.15)

    def test_unregistered_destination_drops(self):
        sim, network = _make()
        network.transmit(0, 99, "ping", None)
        sim.run()
        assert network.stats.messages_dropped == 1
        assert network.stats.messages_delivered == 0

    def test_broadcast_counts(self):
        sim, network = _make()
        received = []
        for node in (1, 2, 3):
            network.register(node, lambda msg: received.append(msg.dst))
        count = network.broadcast(1, [1, 2, 3], "hi", None)
        sim.run()
        assert count == 2  # not sent to self
        assert sorted(received) == [2, 3]

    def test_delivery_order_is_fifo_per_latency(self):
        sim, network = _make(base_latency=0.1, bandwidth=None)
        received = []
        network.register(1, lambda msg: received.append(msg.payload))
        network.transmit(0, 1, "a", 1)
        network.transmit(0, 1, "b", 2)
        sim.run()
        assert received == [1, 2]


class TestFaults:
    def test_crashed_destination_loses_messages(self):
        sim, network = _make()
        received = []
        network.register(1, lambda msg: received.append(msg))
        network.crash(1)
        network.transmit(0, 1, "ping", None)
        sim.run()
        assert received == []
        assert network.stats.messages_dropped == 1

    def test_crash_in_flight(self):
        # The destination dies while the message travels.
        sim, network = _make(base_latency=1.0, bandwidth=None)
        received = []
        network.register(1, lambda msg: received.append(msg))
        network.transmit(0, 1, "ping", None)
        sim.schedule(0.5, lambda: network.crash(1))
        sim.run()
        assert received == []
        assert network.stats.messages_dropped == 1

    def test_recover(self):
        sim, network = _make()
        received = []
        network.register(1, lambda msg: received.append(msg))
        network.crash(1)
        network.recover(1)
        network.transmit(0, 1, "ping", None)
        sim.run()
        assert len(received) == 1

    def test_crashed_source_cannot_send(self):
        sim, network = _make()
        received = []
        network.register(1, lambda msg: received.append(msg))
        network.register(0, lambda msg: None)
        network.crash(0)
        network.transmit(0, 1, "ping", None)
        sim.run()
        assert received == []

    def test_partition_blocks_cross_traffic(self):
        sim, network = _make()
        received = []
        network.register(1, lambda msg: received.append(msg.src))
        network.register(2, lambda msg: received.append(msg.src))
        network.set_partition([1], 1)
        network.set_partition([2], 2)
        network.transmit(1, 2, "x", None)
        sim.run()
        assert received == []
        network.heal_partitions()
        network.transmit(1, 2, "x", None)
        sim.run()
        assert received == [1]

    def test_same_partition_ok(self):
        sim, network = _make()
        received = []
        network.register(1, lambda msg: None)
        network.register(2, lambda msg: received.append(msg))
        network.set_partition([1, 2], 5)
        network.transmit(1, 2, "x", None)
        sim.run()
        assert len(received) == 1

    def test_random_drops(self):
        rng = np.random.default_rng(0)
        sim, network = _make(drop=0.5, rng=rng)
        received = []
        network.register(1, lambda msg: received.append(msg))
        for _ in range(200):
            network.transmit(0, 1, "x", None)
        sim.run()
        assert 50 < len(received) < 150

    def test_drop_probability_requires_rng(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Network(sim, drop_probability=0.5)


class TestAccounting:
    def test_byte_and_kind_counters(self):
        sim, network = _make()
        network.register(1, lambda msg: None)
        network.transmit(0, 1, "query", None, size_bytes=100)
        network.transmit(0, 1, "query", None, size_bytes=150)
        network.transmit(0, 1, "transfer", None, size_bytes=1000)
        sim.run()
        stats = network.stats
        assert stats.messages_sent == 3
        assert stats.bytes_sent == 1250
        assert stats.by_kind == {"query": 2, "transfer": 1}
        assert stats.bytes_by_kind == {"query": 250, "transfer": 1000}

    def test_is_alive(self):
        _, network = _make()
        network.register(1, lambda msg: None)
        assert network.is_alive(1)
        assert not network.is_alive(2)
        network.crash(1)
        assert not network.is_alive(1)

    def test_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Network(sim, base_latency=-1)
        with pytest.raises(ValueError):
            Network(sim, bandwidth=0)
        with pytest.raises(ValueError):
            Network(sim, drop_probability=1.0)


class TestDropReasons:
    def test_dst_dead(self):
        sim, network = _make()
        network.transmit(0, 99, "ping", None)
        assert network.stats.drops_by_reason == {"dst-dead": 1}

    def test_src_crashed(self):
        sim, network = _make()
        network.register(0, lambda msg: None)
        network.register(1, lambda msg: None)
        network.crash(0)
        network.transmit(0, 1, "ping", None)
        assert network.stats.drops_by_reason == {"src-crashed": 1}

    def test_partitioned(self):
        sim, network = _make()
        network.register(1, lambda msg: None)
        network.register(2, lambda msg: None)
        network.set_partition([1], 1)
        network.set_partition([2], 2)
        network.transmit(1, 2, "x", None)
        assert network.stats.drops_by_reason == {"partitioned": 1}

    def test_random_loss(self):
        rng = np.random.default_rng(0)
        sim, network = _make(drop=0.5, rng=rng)
        network.register(1, lambda msg: None)
        for _ in range(50):
            network.transmit(0, 1, "x", None)
        sim.run()
        reasons = network.stats.drops_by_reason
        assert set(reasons) == {"random-loss"}
        assert reasons["random-loss"] == network.stats.messages_dropped

    def test_dead_at_delivery(self):
        sim, network = _make(base_latency=1.0, bandwidth=None)
        network.register(1, lambda msg: None)
        network.transmit(0, 1, "ping", None)
        sim.schedule(0.5, lambda: network.crash(1))
        sim.run()
        assert network.stats.drops_by_reason == {"dst-dead-at-delivery": 1}

    def test_reasons_sum_to_total(self):
        rng = np.random.default_rng(3)
        sim, network = _make(drop=0.3, rng=rng)
        network.register(1, lambda msg: None)
        network.transmit(0, 99, "x", None)  # dst-dead
        for _ in range(30):
            network.transmit(0, 1, "x", None)  # some random-loss
        sim.run()
        assert (
            sum(network.stats.drops_by_reason.values())
            == network.stats.messages_dropped
        )


class TestTracing:
    def test_send_deliver_drop_traced(self):
        from repro import obs

        obs.TRACE.clear()
        obs.TRACE.enable()
        try:
            sim, network = _make()
            network.register(1, lambda msg: None)
            network.transmit(0, 1, "query", None)
            network.transmit(0, 99, "query", None)
            sim.run()
        finally:
            obs.TRACE.disable()
        counts = obs.TRACE.counts_by_kind()
        assert counts["msg_send"] == 2
        assert counts["msg_deliver"] == 1
        assert counts["msg_drop"] == 1
        drop = obs.TRACE.events("msg_drop")[0]
        assert drop.fields["reason"] == "dst-dead"
        assert drop.fields["msg"] == "query"
        obs.TRACE.clear()

class TestEdgeCases:
    def test_unregister_mid_flight_drops_at_delivery(self):
        """A destination that *leaves* (unregisters) while a message is in
        flight loses it at delivery time, same as a crash would."""
        sim, network = _make(base_latency=1.0, bandwidth=None)
        received = []
        network.register(1, lambda msg: received.append(msg))
        network.transmit(0, 1, "ping", None)
        sim.schedule(0.5, lambda: network.unregister(1))
        sim.run()
        assert received == []
        assert network.stats.drops_by_reason == {"dst-dead-at-delivery": 1}

    def test_loss_ramp_single_step_zero_duration(self):
        """steps=1 with duration=0 is an immediate cliff, not an error."""
        rng = np.random.default_rng(0)
        sim, network = _make(drop=0.4, rng=rng)
        network.schedule_loss_ramp(0.0, duration=0.0, steps=1)
        sim.run()
        assert network.drop_probability == 0.0
        # And upward too: lands exactly on the target in one step.
        network.schedule_loss_ramp(0.25, duration=0.0, steps=1)
        sim.run()
        assert network.drop_probability == pytest.approx(0.25)

    def test_loss_ramp_rejects_bad_arguments(self):
        rng = np.random.default_rng(0)
        _, network = _make(rng=rng)
        with pytest.raises(ValueError):
            network.schedule_loss_ramp(0.2, duration=0.5, steps=0)
        with pytest.raises(ValueError):
            network.schedule_loss_ramp(0.2, duration=-1.0, steps=2)

    def test_kind_drop_override_targets_one_kind(self):
        rng = np.random.default_rng(1)
        sim, network = _make(rng=rng)
        received = {"ack": 0, "data": 0}
        network.register(1, lambda msg: received.__setitem__(
            msg.kind, received[msg.kind] + 1
        ))
        network.set_kind_drop_probability("ack", 0.9)
        for _ in range(40):
            network.transmit(0, 1, "ack", None)
            network.transmit(0, 1, "data", None)
        sim.run()
        assert received["ack"] < 40  # acks suffer the override...
        assert received["data"] == 40  # ...other kinds keep the default
        assert set(network.stats.drops_by_reason) == {"random-loss"}

    def test_kind_drop_override_can_shield_a_kind(self):
        rng = np.random.default_rng(2)
        sim, network = _make(drop=0.9, rng=rng)
        received = []
        network.register(1, lambda msg: received.append(msg.kind))
        network.set_kind_drop_probability("ack", 0.0)
        for _ in range(40):
            network.transmit(0, 1, "ack", None)
        sim.run()
        assert len(received) == 40  # the override shields acks entirely

    def test_kind_drop_validation_and_clear(self):
        rng = np.random.default_rng(0)
        _, network = _make(rng=rng)
        with pytest.raises(ValueError):
            network.set_kind_drop_probability("ack", 1.0)
        _, bare = _make()  # no rng
        with pytest.raises(ValueError):
            bare.set_kind_drop_probability("ack", 0.5)
        network.set_kind_drop_probability("ack", 0.5)
        network.clear_kind_drop_probabilities()
        assert network._kind_drop == {}


class TestDeprecatedShims:
    """Both legacy entry points warn exactly once, then stay quiet."""

    def test_network_send_warns_exactly_once_per_process(self):
        import warnings

        import repro.sim.network as network_module

        saved = network_module._SEND_SHIM_WARNED
        network_module._SEND_SHIM_WARNED = False
        try:
            sim, network = _make()
            network.register(1, lambda msg: None)
            with warnings.catch_warnings(record=True) as caught:
                # Even with an "always" filter the module-level gate
                # admits a single warning: repeated legacy sends in a
                # hot loop must not drown the log.
                warnings.simplefilter("always")
                network.send(0, 1, "x", None)
                network.send(0, 1, "x", None)
                network.send(0, 1, "x", None)
            sim.run()
            shim_warnings = [
                w
                for w in caught
                if issubclass(w.category, DeprecationWarning)
                and "Network.send is deprecated" in str(w.message)
            ]
            assert len(shim_warnings) == 1
        finally:
            network_module._SEND_SHIM_WARNED = saved

    def test_peer_network_property_warns_exactly_once_per_site(self):
        import warnings

        from repro.overlay.peer import Peer
        from repro.transport import as_transport

        sim, network = _make()
        peer = Peer(
            0,
            capacity_units=1.0,
            rng=np.random.default_rng(0),
            transport=as_transport(network),
        )
        with warnings.catch_warnings(record=True) as caught:
            # The property warns per access; the standard "default"
            # filter collapses repeats from the same call site to one.
            warnings.simplefilter("default")
            for _ in range(3):
                assert peer.network is network
        shim_warnings = [
            w
            for w in caught
            if issubclass(w.category, DeprecationWarning)
            and "Peer.network is deprecated" in str(w.message)
        ]
        assert len(shim_warnings) == 1
