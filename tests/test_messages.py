"""Tests for the protocol message payloads."""

import dataclasses

import pytest

from repro.overlay import messages as m
from repro.overlay.metadata import DCRTEntry


ALL_MESSAGE_TYPES = [
    m.QueryMessage,
    m.QueryResponse,
    m.QueryMiss,
    m.PublishRequest,
    m.PublishReply,
    m.JoinRequest,
    m.JoinReply,
    m.LeaveNotice,
    m.HitCountRequest,
    m.HitCountReply,
    m.LoadReport,
    m.ReassignNotice,
    m.TransferRequest,
    m.TransferData,
    m.GossipDigest,
    m.CapabilityAnnounce,
    m.LeaderProbe,
    m.LeaderProbeReply,
]


class TestMessageHygiene:
    def test_all_payloads_are_frozen_dataclasses(self):
        # Frozen payloads cannot be mutated in flight — the network may
        # deliver one object to many handlers.
        for message_type in ALL_MESSAGE_TYPES:
            assert dataclasses.is_dataclass(message_type), message_type
            params = message_type.__dataclass_params__
            assert params.frozen, message_type

    def test_query_message_defaults(self):
        query = m.QueryMessage(
            query_id=1, requester_id=2, category_id=3, remaining=4
        )
        assert query.hops == 0
        assert query.target_cluster == -1
        assert query.target_doc_id == -1

    def test_query_message_immutable(self):
        query = m.QueryMessage(
            query_id=1, requester_id=2, category_id=3, remaining=4
        )
        with pytest.raises(dataclasses.FrozenInstanceError):
            query.hops = 5

    def test_control_size_positive(self):
        assert m.CONTROL_SIZE > 0

    def test_doc_info_exported_from_messages_and_peer(self):
        from repro.overlay.peer import DocInfo as PeerDocInfo

        assert PeerDocInfo is m.DocInfo

    def test_reassign_notice_carries_source_docs(self):
        notice = m.ReassignNotice(
            category_id=1,
            source_cluster=0,
            target_cluster=2,
            move_counter=3,
            transfer_pairs=((10, 20),),
            source_docs=((10, (100, 101)),),
        )
        assert notice.source_docs[0][1] == (100, 101)

    def test_publish_request_default_entry(self):
        request = m.PublishRequest(publisher_id=1, doc_id=2, category_id=3)
        assert request.believed_entry == DCRTEntry(0, 0)
