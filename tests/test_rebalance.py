"""Tests for the lazy rebalancing protocol (Section 6.1.2) and cost model."""

import pytest

from repro.overlay import messages as m
from repro.overlay.rebalance import pair_nodes, rebalance_cost
from repro.sim.network import Message

from tests.helpers import MicroOverlay

MB = 1024 * 1024


class TestPairNodes:
    def test_one_to_one(self):
        assert pair_nodes([1, 2], [10, 20]) == [(1, 10), (2, 20)]

    def test_small_source_cycles(self):
        assert pair_nodes([1], [10, 20, 30]) == [(1, 10), (1, 20), (1, 30)]

    def test_large_source_truncates(self):
        # Every destination gets exactly one partner.
        pairs = pair_nodes([1, 2, 3, 4], [10, 20])
        assert [d for _, d in pairs] == [10, 20]

    def test_empty(self):
        assert pair_nodes([], [1]) == []
        assert pair_nodes([1], []) == []


class TestCostModel:
    def test_paper_example(self):
        """Section 6.1.3: 10 categories x 1000 docs x 4 MB x 2 replicas into
        clusters of 500 among 200k nodes."""
        model = rebalance_cost(
            n_categories=10,
            docs_per_category=1000,
            doc_size=4 * MB,
            n_reps=2,
            destination_size=500,
            total_nodes=200_000,
        )
        assert model.bytes_per_category == 8000 * MB  # 8 GB
        assert model.bytes_per_transfer == pytest.approx(16 * MB)
        assert model.engaged_node_pairs == 5000
        assert model.engaged_fraction == pytest.approx(0.025)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            rebalance_cost(0, 1, 1, 1, 1, 1)


def _two_cluster_overlay():
    """Cluster 0 = {0, 1} serving category 7; cluster 1 = {2, 3} empty."""
    overlay = MicroOverlay()
    for node_id in range(4):
        overlay.add_peer(node_id)
    overlay.wire_cluster(0, [0, 1], edges=[(0, 1)], category_map={7: 0})
    overlay.wire_cluster(1, [2, 3], edges=[(2, 3)])
    overlay.give_document(0, 100, [7], size=2 * MB)
    overlay.give_document(1, 101, [7], size=2 * MB)
    return overlay


def _notice(pairs, counter=1):
    return m.ReassignNotice(
        category_id=7,
        source_cluster=0,
        target_cluster=1,
        move_counter=counter,
        transfer_pairs=tuple(pairs),
    )


def _deliver(overlay, dst, notice):
    overlay.peers[dst].handle_message(
        Message(src=99, dst=dst, kind="reassign_notice", payload=notice)
    )


class TestReassignExecution:
    def test_metadata_updated_first(self):
        overlay = _two_cluster_overlay()
        notice = _notice([(0, 2), (1, 3)])
        for node_id in range(4):
            _deliver(overlay, node_id, notice)
        for node_id in range(4):
            assert overlay.peers[node_id].dcrt.cluster_of(7) == 1
            assert overlay.peers[node_id].dcrt.entry(7).move_counter == 1

    def test_transfers_populate_destination(self):
        overlay = _two_cluster_overlay()
        notice = _notice([(0, 2), (1, 3)])
        for node_id in range(4):
            _deliver(overlay, node_id, notice)
        overlay.run()
        assert overlay.peers[2].dt.has_document(100)
        assert overlay.peers[3].dt.has_document(101)
        assert overlay.hooks.transfers

    def test_transfer_bytes_accounted(self):
        overlay = _two_cluster_overlay()
        notice = _notice([(0, 2), (1, 3)])
        for node_id in range(4):
            _deliver(overlay, node_id, notice)
        overlay.run()
        stats = overlay.network.stats
        assert stats.bytes_by_kind.get("transfer_data", 0) >= 4 * MB

    def test_duplicate_notice_ignored(self):
        overlay = _two_cluster_overlay()
        notice = _notice([(0, 2), (1, 3)])
        for node_id in range(4):
            _deliver(overlay, node_id, notice)
        overlay.run()
        requests_before = overlay.network.stats.by_kind.get("transfer_request", 0)
        for node_id in range(4):
            _deliver(overlay, node_id, notice)
        overlay.run()
        requests_after = overlay.network.stats.by_kind.get("transfer_request", 0)
        assert requests_after == requests_before

    def test_stale_notice_does_not_roll_back(self):
        overlay = _two_cluster_overlay()
        fresh = m.ReassignNotice(
            category_id=7, source_cluster=1, target_cluster=0,
            move_counter=5, transfer_pairs=(),
        )
        _deliver(overlay, 2, fresh)
        stale = _notice([(0, 2)], counter=1)
        _deliver(overlay, 2, stale)
        assert overlay.peers[2].dcrt.cluster_of(7) == 0
        assert overlay.peers[2].dcrt.entry(7).move_counter == 5

    def test_query_during_transfer_pull_on_demand(self):
        """Lazy step 4: a destination node asked for a document it does not
        yet store pulls it from its coupled source node, then replies."""
        overlay = _two_cluster_overlay()
        notice = _notice([(0, 2), (1, 3)])
        # Only node 2 (destination) learns about the move for now.
        _deliver(overlay, 2, notice)
        # A query for category 7 reaches node 2 before its scheduled
        # transfer fired.
        query = m.QueryMessage(
            query_id=77, requester_id=1, category_id=7, remaining=1,
            hops=1, target_cluster=1, target_doc_id=100,
        )
        overlay.peers[2].handle_message(
            Message(src=1, dst=2, kind="query", payload=query)
        )
        overlay.run()
        # The requester got an answer served by node 2 after the pull.
        responders = [r.responder_id for _, r in overlay.hooks.responses]
        assert 2 in responders
        assert overlay.peers[2].dt.has_document(100)

    def test_one_source_splits_group_across_partners(self):
        # Round-robin pairing: node 0 serves two destinations.  Its group
        # is split, so the destination cluster *collectively* receives all
        # of node 0's documents (each exactly once).
        overlay = _two_cluster_overlay()
        overlay.give_document(0, 102, [7], size=MB)
        notice = _notice([(0, 2), (0, 3)])
        for node_id in range(4):
            _deliver(overlay, node_id, notice)
        overlay.run()
        received_2 = {d for d in (100, 102) if overlay.peers[2].dt.has_document(d)}
        received_3 = {d for d in (100, 102) if overlay.peers[3].dt.has_document(d)}
        assert received_2 | received_3 == {100, 102}
        assert not (received_2 & received_3)  # no duplication

    def test_designated_docs_deduplicate_replicas(self):
        # Both sources hold a replica of doc 100 (hot replication); the
        # coordinator designates only node 0 to ship it.
        overlay = _two_cluster_overlay()
        overlay.give_document(1, 100, [7], size=2 * MB)  # replica at node 1
        notice = m.ReassignNotice(
            category_id=7,
            source_cluster=0,
            target_cluster=1,
            move_counter=1,
            transfer_pairs=((0, 2), (1, 3)),
            source_docs=((0, (100,)), (1, (101,))),
        )
        for node_id in range(4):
            _deliver(overlay, node_id, notice)
        overlay.run()
        transferred = overlay.network.stats.bytes_by_kind.get("transfer_data", 0)
        # Doc 100 (2 MB) once + doc 101 (2 MB) once — not doc 100 twice.
        assert transferred <= 4 * MB + 4096
