"""Tests for the super-peer (hybrid) metadata mode (future-work item iv)."""

import numpy as np
import pytest

from repro.metrics.response import summarize_responses
from repro.model.workload import make_query_workload
from repro.overlay.system import P2PSystem, P2PSystemConfig

from tests.helpers import build_world


@pytest.fixture(scope="module")
def world():
    return build_world(scale=0.02, seed=51, hot_mass=0.0)


def _run(world, mode):
    instance, assignment, plan = world
    system = P2PSystem(
        instance,
        assignment,
        plan=plan,
        config=P2PSystemConfig(metadata_mode=mode, seed=1),
    )
    workload = make_query_workload(instance, 2500, seed=52)
    outcomes = system.run_workload(workload)
    return system, summarize_responses(outcomes)


class TestSuperPeerMode:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            P2PSystemConfig(metadata_mode="holographic")

    def test_super_peer_is_most_capable(self, world):
        instance, assignment, plan = world
        system = P2PSystem(
            instance, assignment, plan=plan,
            config=P2PSystemConfig(metadata_mode="super_peer"),
        )
        for cluster_id, super_peer in system._super_peers.items():
            members = system.peers_in_cluster(cluster_id)
            top = max(peer.capacity_units for peer in members)
            assert system.peer(super_peer).capacity_units == top

    def test_queries_still_succeed(self, world):
        _, stats = _run(world, "super_peer")
        assert stats.success_rate > 0.99

    def test_extra_hop_through_super_peer(self, world):
        _, replicated = _run(world, "replicated")
        _, hybrid = _run(world, "super_peer")
        # Routing through the super peer costs about one extra hop.
        assert hybrid.mean_hops > replicated.mean_hops
        assert hybrid.max_hops <= replicated.max_hops + 2

    def test_routing_load_concentrates_on_super_peers(self, world):
        system, _ = _run(world, "super_peer")
        super_peers = set(system._super_peers.values())
        routed_by_super = sum(
            peer.queries_routed
            for peer in system.alive_peers()
            if peer.node_id in super_peers
        )
        routed_total = sum(peer.queries_routed for peer in system.alive_peers())
        assert routed_total > 0
        # Every non-local retrieval routes once at its entry node and once
        # at the super peer, so the (few) super peers absorb half of all
        # routing steps — and the single busiest router is a super peer.
        assert routed_by_super / routed_total >= 0.45
        busiest = max(system.alive_peers(), key=lambda p: p.queries_routed)
        assert busiest.node_id in super_peers

    def test_replicated_mode_spreads_routing(self, world):
        system, _ = _run(world, "replicated")
        routers = [
            peer.node_id
            for peer in system.alive_peers()
            if peer.queries_routed > 0
        ]
        # Many nodes participate in routing when metadata is everywhere.
        assert len(routers) > 10
