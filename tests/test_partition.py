"""Tests for repro.core.partition — the ICLB formalization."""

import numpy as np
import pytest

from repro.core.fairness import jain_fairness
from repro.core.maxfair import maxfair_from_stats
from repro.core.partition import (
    ICLBInstance,
    balanced_partition_decision,
    best_assignment_exhaustive,
    iclb_decision,
    partition_decision,
    partition_to_iclb,
)
from repro.core.popularity import CategoryStats


class TestICLBInstance:
    def test_normalized_popularities(self):
        instance = ICLBInstance(
            category_popularity=(0.6, 0.4), category_nodes=(2, 1), k=2
        )
        values = instance.normalized_popularities((0, 1))
        assert values[0] == pytest.approx(0.3)
        assert values[1] == pytest.approx(0.4)

    def test_rejects_mismatched_vectors(self):
        with pytest.raises(ValueError):
            ICLBInstance(category_popularity=(0.5,), category_nodes=(1, 1), k=2)

    def test_rejects_zero_nodes(self):
        with pytest.raises(ValueError):
            ICLBInstance(category_popularity=(0.5,), category_nodes=(0,), k=2)

    def test_rejects_bad_assignment(self):
        instance = ICLBInstance(
            category_popularity=(0.5,), category_nodes=(1,), k=2
        )
        with pytest.raises(ValueError):
            instance.normalized_popularities((5,))


class TestDecision:
    def test_yes_instance(self):
        # Categories {3, 1, 2, 2} over one node each: {3,1} vs {2,2} works.
        instance = ICLBInstance(
            category_popularity=(3.0, 1.0, 2.0, 2.0),
            category_nodes=(1, 1, 1, 1),
            k=2,
        )
        assert iclb_decision(instance)

    def test_no_instance(self):
        instance = ICLBInstance(
            category_popularity=(3.0, 1.0, 1.0),
            category_nodes=(1, 1, 1),
            k=2,
        )
        assert not iclb_decision(instance)

    def test_node_counts_matter(self):
        # Same popularities, but node counts make a perfect split possible:
        # p/n of 4/2 equals 2/1.
        instance = ICLBInstance(
            category_popularity=(4.0, 2.0), category_nodes=(2, 1), k=2
        )
        assert iclb_decision(instance)


class TestExhaustiveOracle:
    def test_best_assignment_is_optimal(self):
        instance = ICLBInstance(
            category_popularity=(0.4, 0.3, 0.2, 0.1),
            category_nodes=(1, 1, 1, 1),
            k=2,
        )
        _assignment, best = best_assignment_exhaustive(instance)
        assert best == pytest.approx(1.0)

    def test_maxfair_near_oracle_on_small_instances(self):
        """MaxFair is greedy and incomplete (the paper says so): it must
        never beat the exhaustive optimum and should land within a small
        gap of it on tiny instances."""
        rng = np.random.default_rng(17)
        for _ in range(15):
            popularity = rng.integers(1, 10, size=6).astype(float)
            instance = ICLBInstance(
                category_popularity=tuple(popularity),
                category_nodes=tuple([1] * 6),
                k=3,
            )
            _, optimal = best_assignment_exhaustive(instance)
            stats = CategoryStats(
                popularity=popularity,
                contributor_count=np.ones(6),
                capacity_units=np.ones(6),
                storage_weight=np.ones(6),
            )
            assignment = maxfair_from_stats(stats, n_clusters=3)
            greedy = jain_fairness(
                instance.normalized_popularities(
                    tuple(int(c) for c in assignment.category_to_cluster)
                )
            )
            assert greedy <= optimal + 1e-9
            assert greedy >= optimal - 0.05


class TestPartitionReduction:
    def test_reduction_shape(self):
        instance = partition_to_iclb([3, 1, 1, 3])
        assert instance.k == 2
        assert instance.category_nodes == (1, 1, 1, 1)

    def test_reduction_preserves_yes(self):
        weights = [3, 1, 1, 3]  # balanced partition {3,1} / {1,3}
        assert partition_decision(weights)
        assert iclb_decision(partition_to_iclb(weights))

    def test_reduction_preserves_no(self):
        weights = [3, 1, 1]  # total 5, odd -> no
        assert not partition_decision(weights)
        assert not iclb_decision(partition_to_iclb(weights))

    def test_reduction_agreement_randomized(self):
        # For equal-cardinality-feasible instances the ICLB answer equals
        # the BALANCED PARTITION answer (the paper's reduction source).
        rng = np.random.default_rng(23)
        for _ in range(20):
            weights = [int(w) for w in rng.integers(1, 8, size=6)]
            balanced = balanced_partition_decision(weights)
            # BALANCED PARTITION = ICLB with the equal-|N_i| requirement.
            # Our ICLB constraint 2 alone can be satisfiable more often
            # (unequal cardinality with equal p/|N| is impossible here
            # since every category has exactly 1 node and equal normalized
            # popularity with different counts requires different sums).
            if balanced:
                assert iclb_decision(partition_to_iclb(weights))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            partition_to_iclb([])

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            partition_to_iclb([-1])


class TestPartitionDP:
    def test_classic_yes(self):
        assert partition_decision([1, 5, 11, 5])

    def test_classic_no(self):
        assert not partition_decision([1, 2, 5])

    def test_balanced_requires_even_count(self):
        assert not balanced_partition_decision([2, 1, 1])
        assert balanced_partition_decision([2, 2, 1, 1])

    def test_balanced_no_when_sums_cannot_match(self):
        assert not balanced_partition_decision([10, 1, 1, 1])
