"""Tests for the Section 3.3 query processing at the peer level."""

import pytest

from repro.overlay.metadata import DCRTEntry

from tests.helpers import MicroOverlay


def _three_node_cluster(category_map=None):
    """Peers 0-1-2 in cluster 0, a chain 0-1-2."""
    overlay = MicroOverlay()
    for node_id in (0, 1, 2):
        overlay.add_peer(node_id)
    overlay.wire_cluster(
        0, [0, 1, 2], edges=[(0, 1), (1, 2)],
        category_map=category_map or {7: 0},
    )
    return overlay


class TestCategoryQueries:
    def test_direct_hit_one_hop(self):
        overlay = _three_node_cluster()
        overlay.give_document(1, 100, [7])
        # Requester 0 asks; NRT random choice may pick any member, but
        # member 1 is the only one with content; to pin the path, query
        # node 1 directly via its handler by making 0 know only node 1.
        requester = overlay.peers[0]
        requester.nrt.remove(0, 0)
        requester.nrt.remove(0, 2)
        requester.start_query(query_id=1, category_id=7, m_results=1)
        overlay.run()
        assert len(overlay.hooks.responses) == 1
        node_id, response = overlay.hooks.responses[0]
        assert node_id == 0
        assert response.doc_ids == (100,)
        assert response.hops == 1

    def test_forwarding_reaches_content(self):
        overlay = _three_node_cluster()
        overlay.give_document(2, 100, [7])
        requester = overlay.peers[0]
        # Force first hop to node 0 itself (no content) -> forwards along
        # the chain until node 2 answers.
        requester.nrt.remove(0, 1)
        requester.nrt.remove(0, 2)
        requester.start_query(query_id=1, category_id=7, m_results=1)
        overlay.run()
        assert len(overlay.hooks.responses) == 1
        _, response = overlay.hooks.responses[0]
        assert response.responder_id == 2
        assert response.hops == 3  # 0 (1) -> 1 (2) -> 2 (3)

    def test_m_results_collected_from_several_nodes(self):
        overlay = _three_node_cluster()
        overlay.give_document(0, 100, [7])
        overlay.give_document(1, 101, [7])
        overlay.give_document(2, 102, [7])
        requester = overlay.peers[0]
        requester.nrt.remove(0, 1)
        requester.nrt.remove(0, 2)
        requester.start_query(query_id=1, category_id=7, m_results=3)
        overlay.run()
        served = [d for _, r in overlay.hooks.responses for d in r.doc_ids]
        assert set(served) == {100, 101, 102}

    def test_loop_detection_prevents_duplicates(self):
        overlay = MicroOverlay()
        for node_id in (0, 1, 2):
            overlay.add_peer(node_id)
        # Triangle: loops exist; each node must serve at most once.
        overlay.wire_cluster(
            0, [0, 1, 2], edges=[(0, 1), (1, 2), (0, 2)], category_map={7: 0}
        )
        for node_id in (0, 1, 2):
            overlay.give_document(node_id, 100 + node_id, [7])
        requester = overlay.peers[0]
        requester.nrt.remove(0, 1)
        requester.nrt.remove(0, 2)
        requester.start_query(query_id=1, category_id=7, m_results=10)
        overlay.run()
        responders = [r.responder_id for _, r in overlay.hooks.responses]
        assert sorted(responders) == sorted(set(responders))

    def test_query_fails_without_known_member(self):
        overlay = MicroOverlay()
        peer = overlay.add_peer(0)
        peer.dcrt.set(7, 3)  # cluster 3, nobody known there
        peer.start_query(query_id=9, category_id=7, m_results=1)
        overlay.run()
        assert overlay.hooks.failures == [(0, 9, "no-known-member")]

    def test_served_load_and_hit_counters(self):
        overlay = _three_node_cluster()
        overlay.give_document(1, 100, [7])
        requester = overlay.peers[0]
        requester.nrt.remove(0, 0)
        requester.nrt.remove(0, 2)
        requester.start_query(query_id=1, category_id=7, m_results=1)
        overlay.run()
        assert overlay.peers[1].requests_served == 1
        assert overlay.peers[1].hit_counters == {7: 1}

    def test_rejects_bad_m(self):
        overlay = _three_node_cluster()
        with pytest.raises(ValueError):
            overlay.peers[0].start_query(query_id=1, category_id=7, m_results=0)


class TestDocTargetedQueries:
    def test_served_by_holder_via_metadata(self):
        overlay = _three_node_cluster()
        overlay.give_document(2, 100, [7])
        requester = overlay.peers[0]
        requester.nrt.remove(0, 1)
        requester.nrt.remove(0, 2)  # first hop lands on node 0 (no doc)
        requester.start_query(
            query_id=1, category_id=7, m_results=1, target_doc_id=100
        )
        overlay.run()
        assert len(overlay.hooks.responses) == 1
        _, response = overlay.hooks.responses[0]
        assert response.responder_id == 2
        assert response.doc_ids == (100,)
        assert response.hops == 2  # first node + metadata redirect

    def test_local_hit_single_hop(self):
        overlay = _three_node_cluster()
        overlay.give_document(1, 100, [7])
        requester = overlay.peers[0]
        requester.nrt.remove(0, 0)
        requester.nrt.remove(0, 2)
        requester.start_query(
            query_id=1, category_id=7, m_results=1, target_doc_id=100
        )
        overlay.run()
        _, response = overlay.hooks.responses[0]
        assert response.hops == 1

    def test_unknown_document_gets_no_answer(self):
        overlay = _three_node_cluster()
        requester = overlay.peers[0]
        requester.start_query(
            query_id=1, category_id=7, m_results=1, target_doc_id=424242
        )
        overlay.run()
        assert overlay.hooks.responses == []


class TestMovedCategoryRedirect:
    def test_stale_requester_is_redirected_and_corrected(self):
        """Lazy-rebalancing steps 3-4: a node of the old cluster forwards
        to the new cluster, and the response piggybacks the correction."""
        overlay = MicroOverlay()
        for node_id in (0, 1, 2):
            overlay.add_peer(node_id)
        # Node 1 in (old) cluster 0, node 2 in cluster 1.
        overlay.wire_cluster(0, [1], edges=[])
        overlay.wire_cluster(1, [2], edges=[])
        overlay.give_document(2, 100, [7])
        # Node 1 knows the category moved to cluster 1 (move counter 1)
        # and knows node 2 as a member of cluster 1.
        overlay.peers[1].dcrt.set(7, 1, move_counter=1)
        overlay.peers[1].nrt.add(1, 2)
        overlay.peers[2].dcrt.set(7, 1, move_counter=1)
        # Requester 0 still believes cluster 0 serves category 7.
        requester = overlay.peers[0]
        requester.dcrt.set(7, 0, move_counter=0)
        requester.nrt.add(0, 1)
        requester.start_query(query_id=1, category_id=7, m_results=1)
        overlay.run()
        assert len(overlay.hooks.responses) == 1
        _, response = overlay.hooks.responses[0]
        assert response.responder_id == 2
        assert response.hops == 2
        # The piggybacked DCRT update corrected the requester's mapping.
        assert requester.dcrt.cluster_of(7) == 1
        assert requester.dcrt.entry(7).move_counter == 1

    def test_stale_update_does_not_roll_back(self):
        overlay = MicroOverlay()
        peer = overlay.add_peer(0)
        peer.dcrt.set(7, 2, move_counter=5)
        # A very late response carrying an older mapping must be ignored.
        from repro.overlay import messages as m
        from repro.sim.network import Message

        response = m.QueryResponse(
            query_id=1,
            doc_ids=(1,),
            responder_id=9,
            hops=1,
            dcrt_updates=((7, DCRTEntry(0, move_counter=2)),),
        )
        peer.handle_message(
            Message(src=9, dst=0, kind="query_response", payload=response)
        )
        assert peer.dcrt.cluster_of(7) == 2
        assert peer.dcrt.entry(7).move_counter == 5
