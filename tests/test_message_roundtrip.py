"""Property tests: every protocol payload survives the wire codec.

For each registered wire type, Hypothesis builds payloads from the
dataclass field annotations (including nested ``DCRTEntry``/``DocInfo``
values and empty/large collections) and asserts that
``from_wire(json(to_wire(p))) == p`` — tuples stay tuples, nested types
come back as their own classes, floats round-trip bit-exactly.
"""

from __future__ import annotations

import dataclasses
import json
import typing

import pytest
from hypothesis import given, settings, strategies as st

from repro.overlay import messages as m
from repro.overlay.metadata import DCRTEntry

WIRE_CLASSES = sorted(m.WIRE_TYPES.values(), key=lambda cls: cls.__name__)


def _strategy_for(annotation):
    if annotation is int:
        return st.integers(min_value=-(2**31), max_value=2**31 - 1)
    if annotation is float:
        return st.floats(allow_nan=False, allow_infinity=False, width=64)
    if annotation is bool:
        return st.booleans()
    if annotation is str:
        return st.text(max_size=16)
    if dataclasses.is_dataclass(annotation):
        return _payload_strategy(annotation)
    origin = typing.get_origin(annotation)
    if origin is tuple:
        args = typing.get_args(annotation)
        if len(args) == 2 and args[1] is Ellipsis:
            return st.lists(_strategy_for(args[0]), max_size=4).map(tuple)
        return st.tuples(*(_strategy_for(arg) for arg in args))
    raise NotImplementedError(
        f"no strategy for field annotation {annotation!r}"
    )


def _payload_strategy(cls):
    hints = typing.get_type_hints(cls)
    return st.builds(
        cls,
        **{
            field.name: _strategy_for(hints[field.name])
            for field in dataclasses.fields(cls)
        },
    )


def test_every_message_type_is_registered():
    # The codec registry must cover the full protocol: every dataclass
    # exported by the messages module is a wire type.
    exported = {
        name
        for name in m.__all__
        if isinstance(getattr(m, name, None), type)
        and dataclasses.is_dataclass(getattr(m, name))
    }
    assert exported == set(m.WIRE_TYPES)
    assert len(WIRE_CLASSES) >= 18


@pytest.mark.parametrize("cls", WIRE_CLASSES, ids=lambda cls: cls.__name__)
@settings(max_examples=30, deadline=None)
@given(data=st.data())
def test_wire_roundtrip_identity(cls, data):
    payload = data.draw(_payload_strategy(cls))
    record = json.loads(json.dumps(m.to_wire(payload)))
    decoded = m.from_wire(record)
    assert type(decoded) is cls
    assert decoded == payload


@pytest.mark.parametrize("cls", WIRE_CLASSES, ids=lambda cls: cls.__name__)
def test_wire_roundtrip_boundary_payloads(cls):
    """Defaults-only and extreme-scalar payloads survive the codec."""
    hints = typing.get_type_hints(cls)
    boundary: dict[str, object] = {}
    for field in dataclasses.fields(cls):
        annotation = hints[field.name]
        if annotation is int:
            boundary[field.name] = 2**31 - 1
        elif annotation is float:
            boundary[field.name] = 0.1 + 0.2  # not exactly representable
        elif annotation is bool:
            boundary[field.name] = False
        elif annotation is DCRTEntry:
            boundary[field.name] = DCRTEntry(0, 2**31 - 1)
        elif typing.get_origin(annotation) is tuple:
            boundary[field.name] = ()
        else:  # pragma: no cover - future field types
            raise NotImplementedError(annotation)
    payload = cls(**boundary)
    assert m.from_wire(json.loads(json.dumps(m.to_wire(payload)))) == payload


def test_unregistered_payload_rejected():
    with pytest.raises(TypeError):
        m.to_wire(object())
    with pytest.raises(TypeError):
        m.from_wire({"type": "NotAMessage", "fields": {}})
