"""Tests for the demand-adaptive replication control loop.

Pins the behaviours :mod:`repro.overlay.replication_manager` promises:
off by default, pressure-driven growth (served hits + weighted sheds per
live replica), grow-fast/shrink-slow hysteresis, capacity-biased
placement through real document transfers, promotion of cached copies
instead of re-shipping, the ``max_replicas`` ceiling, and clean retire
semantics (contributions and cache-owned copies are never dropped).
"""

import pytest

from repro.chaos import InvariantChecker
from repro.core.maxfair import maxfair
from repro.core.popularity import build_category_stats
from repro.core.replication import plan_replication
from repro.model.system import SystemConfig, build_system
from repro.overlay.peer import DocInfo
from repro.overlay.replication_manager import ReplicationConfig
from repro.overlay.system import P2PSystem, P2PSystemConfig

from tests.helpers import build_live_system


def _adaptive_system(seed=7, **replication_overrides):
    """A multi-cluster world with the manager on.

    Built from explicit counts (like the chaos and CACHE-QOS worlds):
    the paper-scale knobs collapse to a single cluster at test-friendly
    sizes, where the baseline plan already replicates the hottest
    documents onto every member and placement would be vacuous.
    """
    defaults = dict(
        enabled=True,
        grow_threshold=8.0,
        shrink_threshold=1.0,
        grow_after=1,
        shrink_after=3,
        grow_step=2,
        max_replicas=8,
        docs_per_replica=2,
    )
    defaults.update(replication_overrides)
    instance = build_system(SystemConfig(
        seed=seed,
        n_docs=200,
        n_nodes=12,
        n_categories=12,
        n_clusters=4,
        doc_size_bytes=65_536,
    ))
    stats = build_category_stats(instance)
    assignment = maxfair(instance, stats=stats)
    plan = plan_replication(instance, assignment, n_reps=2, hot_mass=0.35)
    config = P2PSystemConfig(
        seed=seed,
        cache_capacity=8,
        replication=ReplicationConfig(**defaults),
    )
    return P2PSystem(instance, assignment, plan=plan, config=config)


def _heat(system, category_id, hits=10_000):
    """Make ``category_id`` look hot: credit hits to one live holder."""
    manager = system.replication
    doc_ids = manager._category_docs[category_id]
    holders_view = system.doc_holders_view()
    holder_id = next(
        node_id
        for doc_id in doc_ids
        for node_id in sorted(holders_view.get(doc_id, ()))
        if system.network.is_alive(node_id)
    )
    peer = system._peers[holder_id]
    peer.hit_counters[category_id] = (
        peer.hit_counters.get(category_id, 0) + hits
    )


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ReplicationConfig(grow_threshold=1.0, shrink_threshold=2.0)
        with pytest.raises(ValueError):
            ReplicationConfig(grow_step=0)
        with pytest.raises(ValueError):
            ReplicationConfig(shed_weight=-1.0)

    def test_disabled_by_default(self):
        _instance, system = build_live_system(scale=0.02, seed=31)
        assert system.replication is None
        assert system.replication_enabled is False
        assert system.run_replication_round() is None


class TestGrow:
    def test_quiet_world_never_grows(self):
        system = _adaptive_system()
        for _ in range(5):
            report = system.run_replication_round()
            assert report.grown == {}
        assert system.replication.total_managed() == 0

    def test_hot_category_grows_real_replicas(self):
        system = _adaptive_system()
        manager = system.replication
        category_id = min(manager._category_docs)
        _heat(system, category_id)
        report = system.run_replication_round()

        (grown_nodes,) = [report.grown[category_id]]
        assert len(grown_nodes) == manager.config.grow_step
        assert manager.replica_count(category_id) == len(grown_nodes)
        # The transfers actually landed: every managed doc is stored and
        # registered in the holder directory.
        holders_view = system.doc_holders_view()
        for node_id in grown_nodes:
            peer = system._peers[node_id]
            for doc_id in manager.managed_view()[category_id][node_id]:
                assert doc_id in peer.docs
                assert node_id in holders_view[doc_id]

    def test_placement_prefers_high_capacity(self):
        system = _adaptive_system(grow_step=1)
        manager = system.replication
        category_id = min(manager._category_docs)
        _heat(system, category_id)
        wanted = manager._hot_docs(category_id)
        expected = manager._placement_candidates(category_id, wanted)[0]
        report = system.run_replication_round()
        assert report.grown[category_id] == (expected,)
        cluster_id = int(system.assignment.category_to_cluster[category_id])
        chosen = system._peers[expected]
        for peer in system.peers_in_cluster(cluster_id):
            if peer.node_id == expected or peer.node_id in report.grown.get(
                category_id, ()
            ):
                continue
            durably_all = all(
                doc_id in peer.docs and not peer.cache_owns(doc_id)
                for doc_id in wanted
            )
            assert durably_all or peer.capacity_units <= chosen.capacity_units

    def test_max_replicas_caps_growth(self):
        system = _adaptive_system(max_replicas=2, grow_step=2)
        manager = system.replication
        category_id = min(manager._category_docs)
        for _ in range(4):
            _heat(system, category_id)
            system.run_replication_round()
        assert manager.replica_count(category_id) <= 2

    def test_cached_copy_promoted_not_reshipped(self):
        system = _adaptive_system(grow_step=1)
        manager = system.replication
        category_id = min(manager._category_docs)
        wanted = manager._hot_docs(category_id)
        target_id = manager._placement_candidates(category_id, wanted)[0]
        target = system._peers[target_id]
        # Seed the target's cache with the first hot doc via the real
        # retrieval-fill path.
        doc_id = next(d for d in wanted if d not in target.docs)
        info = DocInfo(
            doc_id=doc_id,
            categories=(category_id,),
            size_bytes=1000,
        )
        target._cache_store(info)
        assert target.cache_owns(doc_id)

        _heat(system, category_id)
        report = system.run_replication_round()
        assert report.grown[category_id] == (target_id,)
        assert doc_id in manager.managed_view()[category_id][target_id]
        # Promoted, not re-transferred: the copy is pinned out of the
        # cache but still stored.
        assert not target.cache_owns(doc_id)
        assert doc_id in target.docs


class TestHysteresis:
    def test_grow_waits_for_grow_after_rounds(self):
        system = _adaptive_system(grow_after=2)
        manager = system.replication
        category_id = min(manager._category_docs)
        _heat(system, category_id)
        first = system.run_replication_round()
        assert first.grown == {}  # one hot round is not enough
        _heat(system, category_id)
        second = system.run_replication_round()
        assert category_id in second.grown

    def test_shrink_slowly_one_per_round(self):
        system = _adaptive_system(shrink_after=3)
        manager = system.replication
        category_id = min(manager._category_docs)
        _heat(system, category_id)
        system.run_replication_round()
        placed = manager.replica_count(category_id)
        assert placed > 0

        counts = []
        for _ in range(placed + 4):
            system.run_replication_round()
            counts.append(manager.replica_count(category_id))
        # The first shrink_after - 1 quiet rounds must not retire anything.
        assert counts[: 3 - 1] == [placed] * (3 - 1)
        # Then exactly one replica retires per round, down to zero.
        assert counts[-1] == 0
        drops = [a - b for a, b in zip(counts, counts[1:])]
        assert all(drop in (0, 1) for drop in drops)

    def test_shrink_drops_managed_docs_only(self):
        system = _adaptive_system(grow_step=1, shrink_after=1)
        manager = system.replication
        category_id = min(manager._category_docs)
        _heat(system, category_id)
        report = system.run_replication_round()
        (node_id,) = report.grown[category_id]
        peer = system._peers[node_id]
        managed_docs = set(manager.managed_view()[category_id][node_id])
        contributions = set(peer.docs) - managed_docs

        while manager.replica_count(category_id):
            system.run_replication_round()
        for doc_id in managed_docs:
            assert doc_id not in peer.docs
        for doc_id in contributions:
            assert doc_id in peer.docs

    def test_dead_managed_node_is_forgotten_without_drops(self):
        system = _adaptive_system(grow_step=1, shrink_after=1)
        manager = system.replication
        category_id = min(manager._category_docs)
        _heat(system, category_id)
        report = system.run_replication_round()
        (node_id,) = report.grown[category_id]
        docs_before = set(system._peers[node_id].docs)
        system.crash_node(node_id)

        while manager.replica_count(category_id):
            system.run_replication_round()
        # The corpse's disk is dark but untouched — doc conservation
        # still counts its copies.
        assert set(system._peers[node_id].docs) == docs_before


class TestInvariant:
    def test_replication_bounds_clean_through_grow_and_shrink(self):
        system = _adaptive_system()
        checker = InvariantChecker(system)
        category_id = min(system.replication._category_docs)
        _heat(system, category_id)
        system.run_replication_round()
        checker.check_structural()
        for _ in range(12):
            system.run_replication_round()
        checker.check_structural()
        assert checker.violations == []

    def test_over_ceiling_is_flagged(self):
        system = _adaptive_system(max_replicas=1)
        checker = InvariantChecker(system)
        manager = system.replication
        category_id = min(manager._category_docs)
        manager._managed[category_id] = {1: {0}, 2: {0}}  # defect injection
        checker.check_structural()
        assert "replication-bounds" in checker.violated_invariants
