"""Fault robustness: lossy links, dead clusters, stale routing tables."""

import numpy as np
import pytest

from repro.metrics.response import summarize_responses
from repro.model.workload import make_query_workload
from repro.overlay.epidemic import dcrt_convergence
from repro.overlay.metadata import DCRTEntry
from repro.sim.engine import Simulator
from repro.sim.network import Network

from tests.helpers import MicroOverlay, build_live_system


class TestLossyGossip:
    def test_gossip_converges_despite_drops(self):
        """Anti-entropy is idempotent, so a lossy network only slows it."""
        overlay = MicroOverlay(
            drop_probability=0.3, rng=np.random.default_rng(0)
        )
        for node_id in range(8):
            overlay.add_peer(node_id)
        edges = [(i, (i + 1) % 8) for i in range(8)] + [(0, 4), (2, 6)]
        overlay.wire_cluster(3, range(8), edges=edges)
        # Node 0 learns a fresh mapping; gossip must spread it to all.
        overlay.peers[0].dcrt.set(7, 5, move_counter=2)
        for _ in range(40):
            for peer in overlay.peers.values():
                peer.gossip_once()
            overlay.run()
        for node_id in range(8):
            assert overlay.peers[node_id].dcrt.cluster_of(7) == 5, node_id


class TestDeadClusterQueries:
    def test_query_fails_cleanly_when_cluster_dies(self):
        overlay = MicroOverlay()
        requester = overlay.add_peer(0)
        holder = overlay.add_peer(1)
        overlay.wire_cluster(2, [1], edges=[], category_map={7: 2})
        overlay.give_document(1, 100, [7])
        requester.dcrt.set(7, 2)
        requester.nrt.add(2, 1)
        overlay.network.crash(1)
        requester.start_query(1, 7, 1, target_doc_id=100)
        overlay.run()
        # No crash, no answer: the message was dropped silently (the
        # paper's "if no live node exists, the query will fail" case is
        # the NRT-empty variant; a dead-but-known node is a network loss).
        assert overlay.hooks.responses == []

    def test_whole_cluster_crash_bounded_failure(self):
        instance, system = build_live_system(scale=0.05, seed=91)
        # Kill every *exclusive* member of the smallest cluster (members
        # shared with other clusters stay up, as they would in practice).
        sizes = {
            cluster_id: len(system.peers_in_cluster(cluster_id))
            for cluster_id in range(system.assignment.n_clusters)
            if system.peers_in_cluster(cluster_id)
        }
        victim_cluster = min(sizes, key=sizes.get)
        victims = [
            peer.node_id
            for peer in system.peers_in_cluster(victim_cluster)
            if peer.memberships == {victim_cluster}
        ]
        for node_id in victims:
            system.crash_node(node_id)
        outcomes = system.run_workload(make_query_workload(instance, 1500, seed=92))
        stats = summarize_responses(outcomes)
        # The rest of the system keeps serving; losses stay bounded by the
        # victim cluster's (replicated) share of the content.
        assert stats.n_succeeded > 0
        assert stats.success_rate > 0.5


class TestStaleRouting:
    def test_very_stale_dcrt_still_resolves_through_redirects(self):
        """A node whose DCRT is several moves behind reaches content via
        the chain of redirects plus piggybacked corrections."""
        overlay = MicroOverlay()
        requester = overlay.add_peer(0)
        old_member = overlay.add_peer(1)
        mid_member = overlay.add_peer(2)
        new_member = overlay.add_peer(3)
        overlay.wire_cluster(1, [1], edges=[])
        overlay.wire_cluster(2, [2], edges=[])
        overlay.wire_cluster(3, [3], edges=[])
        overlay.give_document(3, 100, [7])
        # History: category 7 moved 1 -> 2 -> 3.
        requester.dcrt.set(7, 1, move_counter=0)
        old_member.dcrt.set(7, 2, move_counter=1)   # knows the first move
        mid_member.dcrt.set(7, 3, move_counter=2)   # knows the second
        new_member.dcrt.set(7, 3, move_counter=2)
        requester.nrt.add(1, 1)
        old_member.nrt.add(2, 2)
        mid_member.nrt.add(3, 3)
        requester.start_query(1, 7, 1, target_doc_id=100)
        overlay.run()
        assert len(overlay.hooks.responses) == 1
        _, response = overlay.hooks.responses[0]
        assert response.responder_id == 3
        assert response.hops == 3
        # The requester ends up with the freshest mapping.
        assert requester.dcrt.cluster_of(7) == 3
        assert requester.dcrt.entry(7).move_counter == 2


class TestNetworkChaos:
    def test_duplicate_registration_overwrites_handler(self):
        sim = Simulator()
        network = Network(sim)
        seen = []
        network.register(1, lambda msg: seen.append("a"))
        network.register(1, lambda msg: seen.append("b"))
        network.transmit(0, 1, "x", None)
        sim.run()
        assert seen == ["b"]

    def test_unregister_then_send(self):
        sim = Simulator()
        network = Network(sim)
        network.register(1, lambda msg: None)
        network.unregister(1)
        network.transmit(0, 1, "x", None)
        sim.run()
        assert network.stats.messages_dropped == 1
