"""Service-queue lifecycle across crashes and capacity changes.

Regression tests for two bugs in :mod:`repro.overlay.service`:

* a scheduled ``_complete`` used to fire on a peer whose host had
  crashed, silently "serving" queries from a dead node while the queries
  admitted behind it leaked forever — now ``Peer.handle_crash`` disarms
  the completion (epoch bump) and sheds every admitted query, and the
  overload invariants cover crashed peer objects so an *unwired* crash
  path is caught instead of masked;
* ``service_time`` was computed once at construction, so a capacity
  change mid-run (adaptation moving load) kept the stale service rate —
  now it is a property over the live ``capacity_units``.
"""

import pytest

from repro.chaos import InvariantChecker
from repro.overlay.peer import PeerConfig
from repro.overlay.service import ServiceConfig
from repro.overlay.system import P2PSystemConfig

from tests.helpers import MicroOverlay, build_live_system


def _service_config(**overrides) -> ServiceConfig:
    defaults = dict(
        enabled=True,
        base_service_time=0.4,
        queue_capacity=4,
        policy="drop-tail",
    )
    defaults.update(overrides)
    return ServiceConfig(**defaults)


def _busy_server_world(config=None):
    """Client 0 -> server 1; a burst leaves server 1 mid-service with a
    full queue at t = 1.0."""
    overlay = MicroOverlay(seed=0)
    server = overlay.add_peer(
        1, config=PeerConfig(service=config or _service_config(
            base_service_time=5.0
        ))
    )
    client = overlay.add_peer(0)
    overlay.wire_cluster(0, [1], edges=[], category_map={0: 0})
    overlay.give_document(1, 7, [0])
    client.dcrt.set(0, 0)
    client.nrt.add(0, 1)
    for offset, query_id in enumerate(range(5)):
        overlay.sim.schedule(
            offset * 1e-4,
            lambda q=query_id: client.start_query(q, 0, 1, target_doc_id=7),
        )
    return overlay, server, client


class TestCrashLifecycle:
    def test_crash_sheds_admitted_work_and_disarms_completion(self):
        overlay, server, client = _busy_server_world()
        # Crash mid-first-service: one query in service, four queued.
        overlay.sim.schedule(1.0, lambda: overlay.network.crash(1))
        overlay.sim.schedule(1.0, server.handle_crash)
        overlay.run()

        snap = server.service_snapshot()
        # Nothing was served by the corpse; everything admitted was shed.
        assert snap["processed"] == 0
        assert snap["shed"] == 5
        assert snap["depth"] == 0
        assert snap["in_service"] is False
        assert (
            snap["processed"] + snap["shed"] + snap["redirected"]
            == snap["offered"]
        )
        assert overlay.hooks.responses == []
        # The BUSY notifications originate from a crashed node, so the
        # network drops them: the requester hears nothing, but the
        # server-side accounting still conserves every query.
        assert overlay.hooks.failures == []

    def test_completion_scheduled_before_crash_never_fires(self):
        overlay, server, client = _busy_server_world()
        processed_at_crash = {}

        def crash():
            overlay.network.crash(1)
            server.handle_crash()
            processed_at_crash["value"] = server.service_snapshot()["processed"]

        overlay.sim.schedule(1.0, crash)
        overlay.run()
        # The completion armed at admission time was still pending at the
        # crash; the epoch guard must have swallowed it.
        assert (
            server.service_snapshot()["processed"]
            == processed_at_crash["value"]
            == 0
        )

    def test_recovered_server_serves_again(self):
        """A crash wipes admitted work, not the server: after recovery a
        fresh query is admitted, served, and accounted under the same
        conservation identity."""
        overlay, server, client = _busy_server_world()
        overlay.sim.schedule(1.0, lambda: overlay.network.crash(1))
        overlay.sim.schedule(1.0, server.handle_crash)
        overlay.run()
        overlay.network.recover(1)
        client.start_query(99, 0, 1, target_doc_id=7)
        overlay.run()
        snap = server.service_snapshot()
        assert snap["processed"] == 1
        assert snap["shed"] == 5
        assert [e[1].query_id for e in overlay.hooks.responses] == [99]


class TestInvariantCoverageOfCrashedPeers:
    def _system_with_busy_victim(self):
        """A live system where one sole-holder node sits mid-service with
        queued work at t = 3.0 — the moment the tests crash it."""
        config = P2PSystemConfig(
            seed=31,
            service=ServiceConfig(
                enabled=True, base_service_time=5.0, queue_capacity=8
            ),
        )
        _instance, system = build_live_system(
            scale=0.02, seed=31, config=config, with_plan=False
        )
        holders = system.doc_holders_view()
        victim_id, doc_id = next(
            (next(iter(nodes)), doc_id)
            for doc_id, nodes in sorted(holders.items())
            if len(nodes) == 1
        )
        requester = next(
            peer
            for peer in system.alive_peers()
            if peer.node_id != victim_id
        )
        category_id = system._peers[victim_id].dt.categories_of(doc_id)[0]
        for offset, query_id in enumerate(range(4)):
            system.sim.schedule(
                offset * 1e-3,
                lambda q=query_id: requester.start_query(
                    q, category_id, 1, target_doc_id=doc_id
                ),
            )
        return system, victim_id

    def test_unwired_crash_path_is_caught(self):
        """Crashing the network without the peer-side lifecycle (the old
        bug) leaves the corpse's queue undrained — and the overload
        invariants, which cover crashed peer objects, flag it."""
        system, victim_id = self._system_with_busy_victim()
        checker = InvariantChecker(system)

        def bad_crash():
            system.network.crash(victim_id)
            system._departed.add(victim_id)  # no peer.handle_crash()

        system.sim.schedule(3.0, bad_crash)
        system.sim.run()
        checker.check_structural()
        assert "overload-drain" in checker.violated_invariants

    def test_wired_crash_path_is_clean(self):
        """The same scenario through ``P2PSystem.crash_node`` (which calls
        ``Peer.handle_crash``) passes every structural invariant."""
        system, victim_id = self._system_with_busy_victim()
        checker = InvariantChecker(system)
        system.sim.schedule(3.0, lambda: system.crash_node(victim_id))
        system.sim.run()
        checker.check_structural()
        assert checker.violations == []


class TestServiceTimeTracksCapacity:
    def test_property_follows_capacity_changes(self):
        overlay = MicroOverlay()
        peer = overlay.add_peer(
            1, capacity=2.0,
            config=PeerConfig(service=_service_config(base_service_time=0.4)),
        )
        assert peer._service.service_time == pytest.approx(0.2)
        peer.capacity_units = 4.0
        assert peer._service.service_time == pytest.approx(0.1)

    def test_capacity_change_mid_run_changes_service_rate(self):
        overlay = MicroOverlay(seed=0)
        server = overlay.add_peer(
            1, capacity=1.0,
            config=PeerConfig(service=_service_config(base_service_time=0.4)),
        )
        client = overlay.add_peer(0)
        overlay.wire_cluster(0, [1], edges=[], category_map={0: 0})
        overlay.give_document(1, 7, [0])
        client.dcrt.set(0, 0)
        client.nrt.add(0, 1)

        client.start_query(1, 0, 1, target_doc_id=7)
        overlay.run()
        first_done = overlay.sim.now
        assert first_done >= 0.4

        server.capacity_units = 8.0  # the node got faster mid-run
        client.start_query(2, 0, 1, target_doc_id=7)
        overlay.run()
        second_elapsed = overlay.sim.now - first_done
        # 0.05s of service plus two network hops: far under the stale
        # 0.4s the at-construction snapshot would still be charging.
        assert second_elapsed < 0.4
        assert len(overlay.hooks.responses) == 2
