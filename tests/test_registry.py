"""Tests for the ExperimentSpec registry and the runner's dispatch."""

import dataclasses
import inspect

import pytest

from repro.experiments import EXPERIMENTS, REGISTRY, ExperimentResult
from repro.experiments.registry import build_registry, experiment_spec
from repro.experiments.runner import _describe, main


class TestRegistry:
    def test_every_experiment_registers(self):
        assert set(REGISTRY) == set(EXPERIMENTS)
        for exp_id, module in EXPERIMENTS.items():
            assert module.EXPERIMENT is REGISTRY[exp_id]

    def test_names_unique_and_match_ids(self):
        names = [spec.name for spec in REGISTRY.values()]
        assert len(names) == len(set(names))
        for exp_id, spec in REGISTRY.items():
            assert spec.name == exp_id
            assert spec.description  # one-line listing text

    def test_params_mirror_run_signatures(self):
        for exp_id, module in EXPERIMENTS.items():
            spec = REGISTRY[exp_id]
            signature = inspect.signature(module.run)
            fields = {f.name for f in dataclasses.fields(spec.params_cls)}
            assert fields == set(signature.parameters), exp_id
            for field in dataclasses.fields(spec.params_cls):
                default = signature.parameters[field.name].default
                if default is not inspect.Parameter.empty:
                    assert field.default == default, (exp_id, field.name)

    def test_unknown_params_rejected(self):
        with pytest.raises(TypeError, match="does not accept"):
            REGISTRY["F2"].make_params(banana=1)

    def test_specs_runnable_through_call(self):
        result = REGISTRY["T3"].call()
        assert isinstance(result, ExperimentResult)
        assert result.name == "T3"
        assert result.metrics  # scalar fields surfaced
        formatted = REGISTRY["T3"].format_result(result)
        assert "T3" in formatted

    def test_envelope_rows_and_seed(self):
        result = REGISTRY["F2"].call(scale=0.02, seed=7)
        assert result.seed == 7
        assert result.rows  # per-cluster columns become rows
        columns = set(result.rows[0])
        assert all(set(row) == columns for row in result.rows)
        assert result.raw is not None

    def test_duplicate_names_rejected(self):
        f2 = EXPERIMENTS["F2"]
        with pytest.raises(ValueError, match="registers as"):
            build_registry({"F2": f2, "F3": f2})

    def test_missing_experiment_rejected(self):
        class Empty:
            __name__ = "empty"

        with pytest.raises(TypeError, match="no EXPERIMENT"):
            build_registry({"ZZ": Empty()})

    def test_var_kwargs_rejected(self):
        def run(**kwargs):
            return None

        with pytest.raises(TypeError, match="named parameters"):
            experiment_spec(name="ZZ", run=run, format_result=str)


class TestRunnerDispatch:
    def test_describe_shim_warns(self):
        with pytest.warns(DeprecationWarning, match="_describe"):
            line = _describe(EXPERIMENTS["F2"])
        assert line == REGISTRY["F2"].description

    def test_seeds_alias_warns_and_works(self, capsys):
        with pytest.warns(DeprecationWarning, match="--fuzz-seeds"):
            code = main(["FUZZ", "--seeds", "1", "--steps", "5"])
        assert code == 0
        assert "chaos fuzz" in capsys.readouterr().out

    def test_fuzz_seeds_canonical_flag(self, capsys):
        assert main(["FUZZ", "--fuzz-seeds", "1", "--steps", "5"]) == 0
        assert "seeds 7..7" in capsys.readouterr().out

    def test_repro_out_precheck_names_flag(self, capsys, tmp_path):
        code = main(["T3", "--repro-out", str(tmp_path / "no" / "x.py")])
        assert code == 2
        assert "--repro-out" in capsys.readouterr().err

    def test_metrics_out_precheck_names_flag(self, capsys, tmp_path):
        code = main(["T3", "--metrics-out", str(tmp_path / "no" / "x.jsonl")])
        assert code == 2
        assert "--metrics-out" in capsys.readouterr().err

    def test_precheck_leaves_no_empty_file(self, capsys, tmp_path):
        """--repro-out writes nothing on success — not even an empty
        file from the writability precheck."""
        out = tmp_path / "repro.py"
        assert main(["T3", "--repro-out", str(out)]) == 0
        capsys.readouterr()
        assert not out.exists()
