"""Free-rider wiring: placement exclusion, capacity accounting, fairness."""

import numpy as np
import pytest

from repro.core.fairness import jain_fairness
from repro.core.maxfair import maxfair
from repro.core.popularity import build_category_stats
from repro.core.replication import plan_replication
from repro.model.system import SystemConfig, build_system
from repro.overlay.replication_manager import ReplicationConfig
from repro.overlay.system import P2PSystem, P2PSystemConfig
from repro.scenario import designate_free_riders, generate_events, ScenarioSpec

WORLD = SystemConfig(
    seed=23,
    n_docs=160,
    n_nodes=12,
    n_categories=12,
    n_clusters=4,
    doc_size_bytes=65_536,
)


def build_free_rider_world(fraction=0.25, seed=23):
    instance = build_system(WORLD)
    free = designate_free_riders(instance, fraction, seed=seed)
    stats = build_category_stats(instance)
    assignment = maxfair(instance, stats=stats)
    return instance, assignment, free


class TestPlanExclusion:
    def test_plan_skips_free_riders_when_asked(self):
        instance, assignment, free = build_free_rider_world()
        plan = plan_replication(
            instance, assignment, n_reps=2, hot_mass=0.35,
            exclude_free_riders=True,
        )
        placed_on = {
            node_id for node_id, docs in plan.node_docs.items() if docs
        }
        assert placed_on, "plan placed nothing"
        assert not placed_on & set(free)

    def test_default_plan_behavior_unchanged(self):
        # Off by default: generated worlds contain contribution-less
        # capacity providers that *should* receive replicas.
        instance = build_system(WORLD)
        stats = build_category_stats(instance)
        assignment = maxfair(instance, stats=stats)
        default_plan = plan_replication(instance, assignment, n_reps=2)
        other = build_system(WORLD)
        other_stats = build_category_stats(other)
        fresh = plan_replication(
            other, maxfair(other, stats=other_stats), n_reps=2
        )
        assert default_plan.node_docs == fresh.node_docs


class TestSystemTracking:
    def test_designated_nodes_tracked_by_system(self):
        instance, assignment, free = build_free_rider_world()
        system = P2PSystem(instance, assignment)
        assert set(free) <= system.free_rider_ids()
        for node_id in free:
            assert system.is_free_rider(node_id)

    def test_empty_handed_joiner_becomes_free_rider(self):
        instance, assignment, _ = build_free_rider_world(fraction=0.0)
        system = P2PSystem(instance, assignment)
        node_id = max(system.all_node_ids()) + 1
        system.join_node(node_id, 2.0, doc_infos=[])
        assert system.is_free_rider(node_id)

    def test_contributing_joiner_is_not_free_rider(self):
        from repro.overlay.peer import DocInfo

        instance, assignment, _ = build_free_rider_world(fraction=0.0)
        system = P2PSystem(instance, assignment)
        node_id = max(system.all_node_ids()) + 1
        doc = DocInfo(
            doc_id=max(instance.documents) + 1,
            categories=(0,),
            size_bytes=65_536,
        )
        system.join_node(node_id, 2.0, doc_infos=[doc])
        assert not system.is_free_rider(node_id)

    def test_contributing_capacity_excludes_free_riders(self):
        instance, assignment, free = build_free_rider_world()
        system = P2PSystem(instance, assignment)
        total = sum(
            instance.nodes[n].capacity_units for n in system.all_node_ids()
        )
        free_capacity = sum(
            instance.nodes[n].capacity_units for n in system.free_rider_ids()
        )
        assert system.contributing_capacity() == pytest.approx(
            total - free_capacity
        )


class TestManagerExclusion:
    def test_adaptive_manager_never_places_on_free_riders(self):
        instance, assignment, free = build_free_rider_world()
        plan = plan_replication(
            instance, assignment, n_reps=2, exclude_free_riders=True
        )
        system = P2PSystem(
            instance,
            assignment,
            plan=plan,
            config=P2PSystemConfig(
                seed=23,
                cache_capacity=8,
                replication=ReplicationConfig(
                    enabled=True, exclude_free_riders=True, grow_threshold=2.0
                ),
            ),
        )
        manager = system.replication
        # Force demand pressure on one category so the manager grows.
        hot_category = min(manager._category_docs)
        cluster_id = int(system.assignment.category_to_cluster[hot_category])
        holder = system.peers_in_cluster(cluster_id)[0]
        for _ in range(6):
            holder.hit_counters[hot_category] = (
                holder.hit_counters.get(hot_category, 0) + 10_000
            )
            system.run_replication_round()
        placed = {
            node_id
            for nodes in manager.managed_view().values()
            for node_id in nodes
        }
        assert placed, "manager never grew despite forced pressure"
        assert not placed & set(free)


class TestFairnessRegression:
    def test_contributor_fairness_stays_high_with_free_riders(self):
        # Free riders issue queries but never serve; the serving work
        # must still spread evenly across the contributors.
        instance, assignment, free = build_free_rider_world()
        plan = plan_replication(
            instance, assignment, n_reps=2, exclude_free_riders=True
        )
        system = P2PSystem(instance, assignment, plan=plan)
        spec = ScenarioSpec(name="fair", seed=23, duration=5.0, base_rate=80.0)
        stream = generate_events(spec, instance)
        system.run_workload(stream.workload, at_times=list(stream.times))
        contributors = [
            peer
            for peer in system.alive_peers()
            if not system.is_free_rider(peer.node_id)
        ]
        served = [peer.requests_served for peer in contributors]
        assert sum(served) > 0
        fairness = jain_fairness(served)
        assert fairness > 0.5, f"contributor fairness collapsed: {fairness}"

    def test_free_riders_serve_nothing(self):
        instance, assignment, free = build_free_rider_world()
        plan = plan_replication(
            instance, assignment, n_reps=2, exclude_free_riders=True
        )
        system = P2PSystem(instance, assignment, plan=plan)
        spec = ScenarioSpec(name="fair", seed=23, duration=5.0, base_rate=80.0)
        stream = generate_events(spec, instance)
        system.run_workload(stream.workload, at_times=list(stream.times))
        for node_id in free:
            peer = system.peer(node_id)
            # A designated free rider holds no replicas, so it can serve
            # no documents (it may still forward queries).
            assert peer.requests_served == 0
