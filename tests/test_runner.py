"""Tests for the repro-experiments CLI."""

import pytest

from repro.experiments.runner import main


class TestCLI:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "F2" in out
        assert "E3" in out
        assert "X3" in out

    def test_no_args_lists(self, capsys):
        assert main([]) == 0
        assert "available experiments" in capsys.readouterr().out

    def test_unknown_id_rejected(self, capsys):
        assert main(["ZZ"]) == 2
        err = capsys.readouterr().err
        assert "unknown experiment" in err

    def test_runs_single_experiment(self, capsys):
        assert main(["F2", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "Figure 2" in out
        assert "completed in" in out

    def test_case_insensitive_ids(self, capsys):
        assert main(["f2", "--scale", "0.05"]) == 0
        assert "Figure 2" in capsys.readouterr().out

    def test_seed_flag(self, capsys):
        def run_once() -> str:
            assert main(["F2", "--scale", "0.05", "--seed", "11"]) == 0
            out = capsys.readouterr().out
            # Drop the wall-time footer, which legitimately varies.
            return "\n".join(
                line for line in out.splitlines() if "completed in" not in line
            )

        assert run_once() == run_once()  # deterministic for a seed
