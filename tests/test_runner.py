"""Tests for the repro-experiments CLI."""

import pytest

from repro.experiments.runner import main


class TestCLI:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "F2" in out
        assert "E3" in out
        assert "X3" in out

    def test_no_args_lists(self, capsys):
        assert main([]) == 0
        assert "available experiments" in capsys.readouterr().out

    def test_unknown_id_rejected(self, capsys):
        assert main(["ZZ"]) == 2
        err = capsys.readouterr().err
        assert "unknown experiment" in err

    def test_runs_single_experiment(self, capsys):
        assert main(["F2", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "Figure 2" in out
        assert "completed in" in out

    def test_case_insensitive_ids(self, capsys):
        assert main(["f2", "--scale", "0.05"]) == 0
        assert "Figure 2" in capsys.readouterr().out

    def test_metrics_out_writes_snapshot(self, capsys, tmp_path):
        import json

        path = tmp_path / "metrics.jsonl"
        assert main(["F2", "--scale", "0.05", "--metrics-out", str(path)]) == 0
        assert "metrics snapshot" in capsys.readouterr().out
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert records[0]["type"] == "meta"
        names = {record.get("name") for record in records}
        assert "experiment.f2_s" in names

    def test_trace_flag_disabled_after_run(self, capsys, tmp_path):
        from repro import obs

        path = tmp_path / "metrics.jsonl"
        assert (
            main(
                ["F2", "--scale", "0.05", "--trace", "--metrics-out", str(path)]
            )
            == 0
        )
        capsys.readouterr()
        assert not obs.TRACE.enabled  # the CLI restores the global switch

    def test_seed_flag(self, capsys):
        def run_once() -> str:
            assert main(["F2", "--scale", "0.05", "--seed", "11"]) == 0
            out = capsys.readouterr().out
            # Drop the wall-time footer, which legitimately varies.
            return "\n".join(
                line for line in out.splitlines() if "completed in" not in line
            )

        assert run_once() == run_once()  # deterministic for a seed

    def test_deterministic_metrics_snapshots_byte_identical(
        self, capsys, tmp_path
    ):
        """Two figure-2 runs with the same seed produce byte-identical
        metrics snapshots in --metrics-deterministic mode (wall-clock
        timer histograms are excluded; everything else must match)."""

        def run_once(path) -> bytes:
            assert (
                main(
                    [
                        "F2",
                        "--scale",
                        "0.05",
                        "--seed",
                        "5",
                        "--metrics-out",
                        str(path),
                        "--metrics-deterministic",
                    ]
                )
                == 0
            )
            capsys.readouterr()
            return path.read_bytes()

        first = run_once(tmp_path / "a.jsonl")
        second = run_once(tmp_path / "b.jsonl")
        assert first == second
        assert b'"type": "histogram"' not in first  # wall-clock excluded
