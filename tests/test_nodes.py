"""Tests for repro.model.nodes."""

import pytest

from repro.model.nodes import Node


class TestNode:
    def test_contribute_stores_locally(self):
        node = Node(node_id=1)
        node.contribute(10)
        assert 10 in node.stored_doc_ids
        assert node.contributed_doc_ids == [10]
        assert not node.is_free_rider

    def test_free_rider(self):
        assert Node(node_id=1).is_free_rider

    def test_store_and_drop_replica(self):
        node = Node(node_id=1)
        node.store_replica(5)
        assert 5 in node.stored_doc_ids
        node.drop_replica(5)
        assert 5 not in node.stored_doc_ids

    def test_cannot_drop_contribution_as_replica(self):
        node = Node(node_id=1)
        node.contribute(5)
        with pytest.raises(ValueError):
            node.drop_replica(5)

    def test_drop_missing_replica_is_noop(self):
        node = Node(node_id=1)
        node.drop_replica(99)  # must not raise

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            Node(node_id=1, capacity_units=0)

    def test_rejects_negative_storage(self):
        with pytest.raises(ValueError):
            Node(node_id=1, storage_bytes=-1)

    def test_stored_bytes(self):
        node = Node(node_id=1)
        node.store_replica(1)
        node.store_replica(2)
        assert node.stored_bytes({1: 100, 2: 50}) == 150

    def test_has_room_unlimited(self):
        node = Node(node_id=1, storage_bytes=None)
        assert node.has_room_for(10**12, {})

    def test_has_room_respects_budget(self):
        node = Node(node_id=1, storage_bytes=100)
        node.store_replica(1)
        sizes = {1: 80}
        assert node.has_room_for(20, sizes)
        assert not node.has_room_for(21, sizes)
