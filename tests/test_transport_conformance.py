"""Transport conformance: one contract suite, every backend.

Protocol code sees the world only through :class:`repro.transport.
Transport`, so the behavioural contract the simulator honours must hold
over real sockets too.  Each contract here is written once against the
interface and runs parametrized over:

* ``sim`` — :class:`SimTransport` over the discrete-event network;
* ``live`` — two :class:`AsyncioTransport` endpoints exchanging UDP
  datagrams over loopback (the socket path);
* ``live-local`` — one :class:`AsyncioTransport` hosting both nodes
  (the in-process fast path, which still pays the codec round trip).

Contracts: payload fidelity, per-pair ordering, no transport-level
deduplication (dedup is the peer's job), silent counted drops for
unknown or unregistered destinations, declared-size accounting, timer
scheduling and cancellation, and a monotonic clock.
"""

import asyncio

import pytest

from repro.live.transport import AsyncioTransport
from repro.overlay import messages as m
from repro.sim.engine import Simulator
from repro.sim.network import Network
from repro.transport import as_transport

BACKENDS = ("sim", "live", "live-local")

#: a registered wire type, so live backends can encode it.
PAYLOAD = m.QueryMessage(query_id=1, requester_id=1, category_id=0, remaining=1)


class SimWorld:
    """Both endpoints share the one simulated network."""

    def __init__(self):
        self.sim = Simulator()
        self.network = Network(self.sim, base_latency=0.01, bandwidth=None)
        transport = as_transport(self.network)
        self.transports = {1: transport, 2: transport}

    async def start(self):
        pass

    async def stop(self):
        pass

    def stats_for(self, node_id):
        return self.network.stats

    async def settle(self):
        self.sim.run()


class LiveWorld:
    """One AsyncioTransport per node, datagrams over loopback."""

    def __init__(self):
        self.transports = {1: AsyncioTransport(), 2: AsyncioTransport()}

    async def start(self):
        addrs = {}
        for node_id, transport in self.transports.items():
            addrs[node_id] = await transport.start()
        for transport in self.transports.values():
            for node_id, (host, port) in addrs.items():
                transport.add_route(node_id, host, port)

    async def stop(self):
        for transport in self.transports.values():
            await transport.stop()

    def stats_for(self, node_id):
        return self.transports[node_id].stats

    async def settle(self):
        # Loopback UDP lands within a few loop iterations; a couple of
        # short sleeps lets the receiving endpoint drain.
        for _ in range(20):
            await asyncio.sleep(0.005)


class LiveLocalWorld(LiveWorld):
    """Both nodes on one AsyncioTransport (the local fast path)."""

    def __init__(self):
        transport = AsyncioTransport()
        self.transports = {1: transport, 2: transport}

    async def start(self):
        await self.transports[1].start()


def make_world(backend):
    return {
        "sim": SimWorld,
        "live": LiveWorld,
        "live-local": LiveLocalWorld,
    }[backend]()


def run(backend, contract):
    async def runner():
        world = make_world(backend)
        await world.start()
        try:
            await contract(world)
        finally:
            await world.stop()

    asyncio.run(runner())


@pytest.mark.parametrize("backend", BACKENDS)
def test_delivery_and_payload_fidelity(backend):
    async def contract(world):
        received = []
        world.transports[2].register(2, received.append)
        world.transports[1].send(1, 2, "query", PAYLOAD, size_bytes=512)
        await world.settle()
        assert len(received) == 1
        message = received[0]
        assert message.src == 1
        assert message.dst == 2
        assert message.kind == "query"
        assert message.payload == PAYLOAD
        assert message.size_bytes == 512

    run(backend, contract)


@pytest.mark.parametrize("backend", BACKENDS)
def test_none_payload(backend):
    async def contract(world):
        received = []
        world.transports[2].register(2, received.append)
        world.transports[1].send(1, 2, "tick", None)
        await world.settle()
        assert len(received) == 1
        assert received[0].payload is None

    run(backend, contract)


@pytest.mark.parametrize("backend", BACKENDS)
def test_per_pair_ordering(backend):
    async def contract(world):
        received = []
        world.transports[2].register(2, received.append)
        for i in range(20):
            world.transports[1].send(
                1,
                2,
                "query",
                m.QueryMessage(
                    query_id=i, requester_id=1, category_id=0, remaining=1
                ),
            )
        await world.settle()
        assert [msg.payload.query_id for msg in received] == list(range(20))

    run(backend, contract)


@pytest.mark.parametrize("backend", BACKENDS)
def test_no_transport_level_dedup(backend):
    # At-least-once reliability retransmits with the same delivery_id;
    # suppression is the receiving *peer's* job (its dedup window), so
    # the transport must deliver every copy it carries.
    async def contract(world):
        received = []
        world.transports[2].register(2, received.append)
        for attempt in range(2):
            world.transports[1].send(
                1, 2, "query", PAYLOAD, delivery_id=7, attempt=attempt
            )
        await world.settle()
        assert len(received) == 2
        assert [msg.delivery_id for msg in received] == [7, 7]
        assert [msg.attempt for msg in received] == [0, 1]

    run(backend, contract)


@pytest.mark.parametrize("backend", BACKENDS)
def test_unknown_destination_drops_silently(backend):
    async def contract(world):
        stats = world.stats_for(1)
        before = stats.messages_dropped
        world.transports[1].send(1, 99, "query", PAYLOAD)  # must not raise
        await world.settle()
        # The sim counts the drop at send time ("dst-dead"); a live
        # sender without a route counts "no-route".  Either way the
        # message is gone and accounted on the sending side.
        assert stats.messages_dropped == before + 1

    run(backend, contract)


@pytest.mark.parametrize("backend", BACKENDS)
def test_unregister_stops_delivery(backend):
    async def contract(world):
        received = []
        world.transports[2].register(2, received.append)
        world.transports[1].send(1, 2, "query", PAYLOAD)
        await world.settle()
        world.transports[2].unregister(2)
        world.transports[1].send(1, 2, "query", PAYLOAD)
        await world.settle()
        assert len(received) == 1

    run(backend, contract)


@pytest.mark.parametrize("backend", BACKENDS)
def test_declared_size_accounting(backend):
    async def contract(world):
        world.transports[2].register(2, lambda msg: None)
        stats = world.stats_for(1)
        bytes_before = stats.bytes_sent
        sent_before = stats.messages_sent
        for size in (100, 300, 256):
            world.transports[1].send(1, 2, "query", PAYLOAD, size_bytes=size)
        await world.settle()
        # Accounting uses the *declared* protocol size (the simulated
        # cost model), not the codec's frame length — both worlds must
        # report identical traffic volumes for identical workloads.
        assert stats.bytes_sent - bytes_before == 100 + 300 + 256
        assert stats.messages_sent - sent_before == 3
        assert stats.by_kind.get("query", 0) >= 3

    run(backend, contract)


@pytest.mark.parametrize("backend", BACKENDS)
def test_broadcast_skips_source(backend):
    async def contract(world):
        received = []
        world.transports[1].register(1, received.append)
        world.transports[2].register(2, received.append)
        count = world.transports[1].broadcast(1, [1, 2], "tick", None)
        await world.settle()
        assert count == 1
        assert [msg.dst for msg in received] == [2]

    run(backend, contract)


@pytest.mark.parametrize("backend", BACKENDS)
def test_schedule_fires_and_cancels(backend):
    async def contract(world):
        transport = world.transports[1]
        fired = []
        transport.schedule(0.01, lambda: fired.append("kept"))
        cancelled = transport.schedule(0.01, lambda: fired.append("cancelled"))
        cancelled.cancel()
        await world.settle()
        if isinstance(world, SimWorld):
            world.sim.run()
        else:
            await asyncio.sleep(0.05)
        assert fired == ["kept"]

    run(backend, contract)


@pytest.mark.parametrize("backend", BACKENDS)
def test_clock_is_monotonic(backend):
    async def contract(world):
        transport = world.transports[1]
        first = transport.now
        world.transports[2].register(2, lambda msg: None)
        transport.send(1, 2, "tick", None)
        await world.settle()
        assert transport.now >= first

    run(backend, contract)


@pytest.mark.parametrize("backend", BACKENDS)
def test_is_alive_tracks_registration(backend):
    async def contract(world):
        world.transports[2].register(2, lambda msg: None)
        assert world.transports[2].is_alive(2)
        world.transports[2].unregister(2)
        assert not world.transports[2].is_alive(2) or 2 in getattr(
            world.transports[2], "routes", {}
        )

    run(backend, contract)


def test_asyncio_transport_requires_start():
    transport = AsyncioTransport()
    with pytest.raises(RuntimeError, match="before start"):
        transport.send(1, 2, "tick", None)
    with pytest.raises(RuntimeError, match="before start"):
        transport.now
    with pytest.raises(RuntimeError, match="before start"):
        transport.schedule(0.1, lambda: None)


def test_asyncio_transport_rejects_bad_loss():
    with pytest.raises(ValueError, match="loss_probability"):
        AsyncioTransport(loss_probability=1.5)


def test_injected_loss_is_counted():
    async def scenario():
        transport = AsyncioTransport(loss_probability=0.999999, loss_seed=1)
        await transport.start()
        received = []
        transport.register(2, received.append)
        for _ in range(20):
            transport.send(1, 2, "tick", None)
        await asyncio.sleep(0.05)
        dropped = transport.stats.drops_by_reason.get("injected-loss", 0)
        await transport.stop()
        assert dropped == 20
        assert received == []

    asyncio.run(scenario())


def test_decode_errors_counted_not_fatal():
    async def scenario():
        transport = AsyncioTransport()
        host, port = await transport.start()
        received = []
        transport.register(2, received.append)
        import socket as socketlib

        with socketlib.socket(
            socketlib.AF_INET, socketlib.SOCK_DGRAM
        ) as raw:
            raw.sendto(b"garbage that is not a frame", (host, port))
        # A valid frame after the garbage must still get through.
        transport.send(1, 2, "tick", None)
        for _ in range(40):
            if received and transport.decode_errors:
                break
            await asyncio.sleep(0.01)
        await transport.stop()
        assert transport.decode_errors == 1
        assert len(received) == 1

    asyncio.run(scenario())


def test_handler_exception_does_not_kill_delivery():
    async def scenario():
        transport = AsyncioTransport()
        await transport.start()
        received = []

        def bad_handler(message):
            received.append(message)
            raise RuntimeError("boom")

        transport.register(2, bad_handler)
        transport.send(1, 2, "tick", None)
        transport.send(1, 2, "tick", None)
        await asyncio.sleep(0.05)
        await transport.stop()
        assert len(received) == 2
        assert transport.handler_errors == 2

    asyncio.run(scenario())
