"""Integration tests for the live P2PSystem façade."""

import numpy as np
import pytest

from repro.metrics.response import summarize_responses
from repro.model.workload import make_query_workload
from repro.overlay.peer import DocInfo
from repro.overlay.system import P2PSystem, P2PSystemConfig

from tests.helpers import build_world


@pytest.fixture(scope="module")
def world():
    return build_world(scale=0.02, seed=31, with_stats=True)


@pytest.fixture()
def system(world):
    instance, assignment, plan = world
    return P2PSystem(instance, assignment, plan=plan)


class TestBootstrap:
    def test_all_nodes_have_peers(self, world, system):
        instance, _, _ = world
        assert len(system.alive_peers()) == len(instance.nodes)

    def test_dcrt_matches_assignment(self, world, system):
        instance, assignment, _ = world
        peer = system.alive_peers()[0]
        for category_id in range(len(instance.categories)):
            assert peer.dcrt.cluster_of(category_id) == assignment.cluster_of(
                category_id
            )

    def test_contributors_are_members(self, world, system):
        instance, assignment, _ = world
        for node_id, cats in instance.node_categories.items():
            peer = system.peer(node_id)
            for category_id in cats:
                assert assignment.cluster_of(category_id) in peer.memberships

    def test_documents_placed_per_plan(self, world, system):
        _, _, plan = world
        for node_id, docs in plan.node_docs.items():
            peer = system.peer(node_id)
            if peer is not None:
                for doc_id in docs:
                    assert peer.dt.has_document(doc_id)

    def test_cluster_neighbors_are_members(self, world, system):
        instance, assignment, _ = world
        for peer in system.alive_peers():
            for cluster_id, neighbors in peer.cluster_neighbors.items():
                members = {
                    p.node_id for p in system.peers_in_cluster(cluster_id)
                }
                assert neighbors <= members

    def test_incomplete_assignment_rejected(self, world):
        instance, assignment, _ = world
        from repro.core.maxfair import Assignment

        incomplete = Assignment(
            category_to_cluster=np.full(len(instance.categories), -1),
            n_clusters=instance.n_clusters,
        )
        with pytest.raises(ValueError):
            P2PSystem(instance, incomplete)


class TestWorkloadExecution:
    def test_queries_succeed_with_bounded_hops(self, world, system):
        instance, _, _ = world
        outcomes = system.run_workload(make_query_workload(instance, 800, seed=1))
        stats = summarize_responses(outcomes)
        assert stats.success_rate > 0.99
        # The paper's architectural claim: a few hops in the common case.
        assert stats.mean_hops <= 3.0
        largest_cluster = max(
            len(system.peers_in_cluster(c))
            for c in range(system.assignment.n_clusters)
        )
        assert stats.max_hops <= largest_cluster

    def test_repeat_workloads_independent(self, world, system):
        instance, _, _ = world
        first = system.run_workload(make_query_workload(instance, 200, seed=2))
        second = system.run_workload(make_query_workload(instance, 200, seed=3))
        assert summarize_responses(first).n_queries == 200
        assert summarize_responses(second).n_queries == 200
        assert summarize_responses(second).success_rate > 0.99

    def test_loads_accumulate(self, world, system):
        instance, _, _ = world
        system.reset_hit_counters()
        system.run_workload(make_query_workload(instance, 300, seed=4))
        assert sum(system.node_loads().values()) >= 300 * 0.99

    def test_category_level_workload(self, world, system):
        instance, _, _ = world
        outcomes = system.run_workload(
            make_query_workload(instance, 100, seed=5), doc_targeted=False
        )
        assert summarize_responses(outcomes).success_rate > 0.99


class TestChurn:
    def test_leave_keeps_queries_working(self, world):
        instance, assignment, plan = world
        system = P2PSystem(instance, assignment, plan=plan)
        leavers = [p.node_id for p in system.alive_peers()[:5]]
        for node_id in leavers:
            system.leave_node(node_id)
        assert all(system.peer(n) is None for n in leavers)
        outcomes = system.run_workload(make_query_workload(instance, 500, seed=6))
        stats = summarize_responses(outcomes)
        # Requesters that left are skipped; surviving queries should
        # overwhelmingly succeed thanks to replicas.
        assert stats.n_queries <= 500
        assert stats.success_rate > 0.9

    def test_crash_is_tolerated(self, world):
        instance, assignment, plan = world
        system = P2PSystem(instance, assignment, plan=plan)
        victims = [p.node_id for p in system.alive_peers()[:3]]
        for node_id in victims:
            system.crash_node(node_id)
        outcomes = system.run_workload(make_query_workload(instance, 500, seed=7))
        stats = summarize_responses(outcomes)
        assert stats.success_rate > 0.85

    def test_join_new_contributor(self, world):
        instance, assignment, plan = world
        system = P2PSystem(instance, assignment, plan=plan)
        new_id = max(instance.nodes) + 1
        category_id = 0
        peer = system.join_node(
            new_id,
            capacity_units=3.0,
            doc_infos=[
                DocInfo(doc_id=10**6, categories=(category_id,), size_bytes=100)
            ],
        )
        target_cluster = assignment.cluster_of(category_id)
        assert target_cluster in peer.memberships
        assert peer.dcrt.cluster_of(category_id) == target_cluster
        # The joiner is known to at least one member of the cluster.
        known_by = sum(
            1
            for member in system.peers_in_cluster(target_cluster)
            if new_id in member.nrt.nodes_in(target_cluster)
        )
        assert known_by >= 1

    def test_join_free_rider(self, world):
        instance, assignment, plan = world
        system = P2PSystem(instance, assignment, plan=plan)
        new_id = max(instance.nodes) + 50
        peer = system.join_node(new_id, capacity_units=1.0)
        assert 0 in peer.memberships  # dummy publish -> cluster 0

    def test_double_join_rejected(self, world):
        instance, assignment, plan = world
        system = P2PSystem(instance, assignment, plan=plan)
        existing = system.alive_peers()[0].node_id
        with pytest.raises(ValueError):
            system.join_node(existing, capacity_units=1.0)


class TestConfig:
    def test_nrt_capacity_applied(self, world):
        instance, assignment, plan = world
        system = P2PSystem(
            instance, assignment, plan=plan,
            config=P2PSystemConfig(nrt_capacity=16),
        )
        for peer in system.alive_peers():
            for cluster_id in peer.nrt.clusters():
                assert len(peer.nrt.nodes_in(cluster_id)) <= 16

    def test_deterministic_for_seed(self, world):
        instance, assignment, plan = world
        a = P2PSystem(instance, assignment, plan=plan,
                      config=P2PSystemConfig(seed=5))
        b = P2PSystem(instance, assignment, plan=plan,
                      config=P2PSystemConfig(seed=5))
        workload = make_query_workload(instance, 200, seed=8)
        outcomes_a = a.run_workload(workload)
        outcomes_b = b.run_workload(workload)
        assert [o.results for o in outcomes_a] == [o.results for o in outcomes_b]
        assert a.node_loads() == b.node_loads()
