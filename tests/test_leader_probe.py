"""Tests for leader liveness probing and failover (Section 6.1.1)."""

from tests.helpers import MicroOverlay


def _cluster_with_leader():
    """Three nodes; node 2 (capacity 9) is everyone's believed leader."""
    overlay = MicroOverlay()
    for node_id, capacity in ((0, 1.0), (1, 3.0), (2, 9.0)):
        overlay.add_peer(node_id, capacity=capacity)
    overlay.wire_cluster(4, [0, 1, 2], edges=[(0, 1), (1, 2), (0, 2)])
    for _ in range(2):
        for peer in overlay.peers.values():
            peer.announce_capabilities()
        overlay.run()
    for peer in overlay.peers.values():
        peer.elect_leaders()
    return overlay


class TestLeaderProbe:
    def test_alive_leader_confirms(self):
        overlay = _cluster_with_leader()
        assert overlay.peers[0].believed_leader[4] == 2
        overlay.peers[0].probe_leader(4, round_id=1)
        overlay.run()
        # Confirmed: belief unchanged, no pending probes.
        assert overlay.peers[0].believed_leader[4] == 2
        assert not overlay.peers[0]._pending_probes

    def test_dead_leader_triggers_failover(self):
        overlay = _cluster_with_leader()
        overlay.network.crash(2)
        overlay.peers[0].probe_leader(4, round_id=1)
        overlay.run()
        # The next most capable node (1, capacity 3) takes over.
        assert overlay.peers[0].believed_leader[4] == 1

    def test_node_that_does_not_think_it_leads_stays_silent(self):
        overlay = _cluster_with_leader()
        # Node 0 wrongly believes node 1 is the leader; node 1 does not
        # believe it leads, so it will not confirm — node 0 fails over.
        overlay.peers[0].believed_leader[4] = 1
        overlay.peers[0].probe_leader(4, round_id=2)
        overlay.run()
        # Failover excludes node 1, electing the true top node 2.
        assert overlay.peers[0].believed_leader[4] == 2

    def test_self_leader_needs_no_probe(self):
        overlay = _cluster_with_leader()
        leader = overlay.peers[2]
        sent_before = overlay.network.stats.messages_sent
        leader.probe_leader(4, round_id=3)
        overlay.run()
        assert overlay.network.stats.messages_sent == sent_before

    def test_probe_rounds_independent(self):
        overlay = _cluster_with_leader()
        overlay.peers[0].probe_leader(4, round_id=1)
        overlay.peers[0].probe_leader(4, round_id=2)
        overlay.run()
        assert not overlay.peers[0]._pending_probes
        assert overlay.peers[0].believed_leader[4] == 2
