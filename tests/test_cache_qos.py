"""Smoke tests for the CACHE-QOS experiment and adaptive-replication fuzz.

The full experiment (CI's ``cache-qos`` job) pins the headline claims;
these tests run a shortened crowd so the suite stays fast, asserting the
structural properties that must hold at any scale: identical offered
load across arms, a static arm with no caches and no managed replicas,
an adaptive arm whose replica trace rises under the crowd and returns to
baseline, and goodput no worse than static.
"""

from repro.experiments import cache_qos

#: shortened phases shared by the smoke tests (the full-length defaults
#: run in CI's dedicated cache-qos job).
SHORT = dict(
    crowd_chunks=2, chunk_window=1.5, warmup_window=2.0, cooldown_rounds=8
)


class TestCacheQosExperiment:
    def test_run_and_format(self):
        result = cache_qos.run(seed=7, **SHORT)
        static, adaptive = result.static, result.adaptive

        # Both arms saw the exact same offered load.
        assert static.n_queries == adaptive.n_queries > 0

        # The static arm runs no adaptive machinery at all.
        assert static.cache_fills == 0
        assert static.cache_served_hits == 0
        assert (static.replicas_baseline, static.replicas_peak,
                static.replicas_final) == (0, 0, 0)

        # The adaptive arm grows replicas under the crowd and the slow
        # shrink retires every one of them afterwards (hysteresis works
        # in both directions).
        assert adaptive.replicas_baseline == 0
        assert adaptive.replicas_peak > 0
        assert adaptive.replicas_final == 0
        assert adaptive.cache_fills > 0

        # Extra servable copies never make things worse.
        assert adaptive.goodput >= static.goodput
        assert adaptive.success_rate >= static.success_rate

        text = cache_qos.format_result(result)
        assert "CACHE-QOS" in text
        assert "hysteresis" in text

    def test_deterministic(self):
        assert cache_qos.run(seed=7, **SHORT) == cache_qos.run(seed=7, **SHORT)


class TestAdaptiveFuzz:
    def test_adaptive_replication_seeds_run_clean(self):
        from repro.experiments import fuzz

        result = fuzz.run(
            seed=0,
            seeds=2,
            steps=8,
            overload=True,
            adaptive_replication=True,
            shrink_failing=False,
        )
        assert result.failing_seeds == []
        assert result.adaptive_replication is True
        text = fuzz.format_result(result)
        assert "adaptive replication on" in text

    def test_flag_does_not_change_schedules(self):
        """Schedule generation must ignore the world-side flag, so a seed
        replays the same fault sequence with or without the manager."""
        from repro.chaos import ScenarioConfig, generate_schedule

        base = ScenarioConfig(n_steps=12)
        adaptive = ScenarioConfig(n_steps=12, adaptive_replication=True)
        assert generate_schedule(5, base) == generate_schedule(5, adaptive)

    def test_cli_flag(self, capsys):
        from repro.experiments.runner import main

        assert main([
            "fuzz", "--fuzz-seeds", "1", "--steps", "6",
            "--overload-actions", "--adaptive-replication",
        ]) == 0
        out = capsys.readouterr().out
        assert "adaptive replication on" in out
