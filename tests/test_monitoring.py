"""Tests for the Phase-1 monitoring tree (Section 6.1.2)."""

import pytest

from repro.overlay.peer import PeerConfig

from tests.helpers import MicroOverlay


def _cluster_with_hits(edges, hits_per_node, category_map=None):
    """Build a cluster over nodes 0..n-1 with given hit counters."""
    overlay = MicroOverlay()
    node_ids = sorted(hits_per_node)
    for node_id in node_ids:
        overlay.add_peer(node_id)
    overlay.wire_cluster(
        4, node_ids, edges=edges, category_map=category_map or {7: 4}
    )
    for node_id, hits in hits_per_node.items():
        for category_id, count in hits.items():
            overlay.peers[node_id].hit_counters[category_id] = count
    return overlay


class TestHitCountAggregation:
    def test_chain_aggregates_all_counters(self):
        overlay = _cluster_with_hits(
            edges=[(0, 1), (1, 2)],
            hits_per_node={0: {7: 5}, 1: {7: 3}, 2: {7: 2}},
        )
        overlay.peers[0].start_monitoring(cluster_id=4, round_id=1)
        overlay.run()
        assert len(overlay.hooks.monitoring) == 1
        leader_id, cluster_id, round_id, counts, _w, subtree = (
            overlay.hooks.monitoring[0]
        )
        assert leader_id == 0
        assert cluster_id == 4
        assert counts == {7: 10}
        assert subtree == 3

    def test_cycle_counts_each_node_once(self):
        # Triangle: duplicate requests answered with empty "already
        # counted" replies, so no double counting.
        overlay = _cluster_with_hits(
            edges=[(0, 1), (1, 2), (0, 2)],
            hits_per_node={0: {7: 5}, 1: {7: 3}, 2: {7: 2}},
        )
        overlay.peers[0].start_monitoring(cluster_id=4, round_id=1)
        overlay.run()
        _, _, _, counts, _w, subtree = overlay.hooks.monitoring[0]
        assert counts == {7: 10}
        assert subtree == 3

    def test_multiple_categories(self):
        overlay = _cluster_with_hits(
            edges=[(0, 1)],
            hits_per_node={0: {7: 1, 8: 2}, 1: {7: 4, 8: 8}},
            category_map={7: 4, 8: 4},
        )
        overlay.peers[0].start_monitoring(cluster_id=4, round_id=1)
        overlay.run()
        _, _, _, counts, _w, _ = overlay.hooks.monitoring[0]
        assert counts == {7: 5, 8: 10}

    def test_only_own_cluster_categories_counted(self):
        # Node 1's hits on category 9 (another cluster) must not pollute
        # cluster 4's report.
        overlay = _cluster_with_hits(
            edges=[(0, 1)],
            hits_per_node={0: {7: 1}, 1: {7: 2, 9: 50}},
            category_map={7: 4, 9: 0},
        )
        overlay.peers[0].start_monitoring(cluster_id=4, round_id=1)
        overlay.run()
        _, _, _, counts, _w, _ = overlay.hooks.monitoring[0]
        assert counts == {7: 3}

    def test_singleton_cluster(self):
        overlay = _cluster_with_hits(edges=[], hits_per_node={0: {7: 5}})
        overlay.peers[0].start_monitoring(cluster_id=4, round_id=1)
        overlay.run()
        _, _, _, counts, _w, subtree = overlay.hooks.monitoring[0]
        assert counts == {7: 5}
        assert subtree == 1

    def test_weights_follow_stored_docs(self):
        overlay = _cluster_with_hits(
            edges=[(0, 1)], hits_per_node={0: {}, 1: {}}
        )
        overlay.give_document(0, 100, [7])
        overlay.give_document(0, 101, [7])
        overlay.peers[0].start_monitoring(cluster_id=4, round_id=1)
        overlay.run()
        _, _, _, _counts, weights, _ = overlay.hooks.monitoring[0]
        # Node 0 holds 2 docs of category 7, all of its stored content ->
        # its whole capacity (1.0) is attributed to category 7.
        assert weights[7] == pytest.approx(1.0)

    def test_dead_child_handled_by_timeout(self):
        overlay = _cluster_with_hits(
            edges=[(0, 1), (1, 2)],
            hits_per_node={0: {7: 5}, 1: {7: 3}, 2: {7: 2}},
        )
        overlay.network.crash(2)
        overlay.peers[0].start_monitoring(cluster_id=4, round_id=1)
        overlay.run()
        # The run completes (timeout fires) with the live nodes' counts.
        assert len(overlay.hooks.monitoring) == 1
        _, _, _, counts, _w, subtree = overlay.hooks.monitoring[0]
        assert counts == {7: 8}
        assert subtree == 2

    def test_two_rounds_are_independent(self):
        overlay = _cluster_with_hits(
            edges=[(0, 1)], hits_per_node={0: {7: 5}, 1: {7: 3}}
        )
        overlay.peers[0].start_monitoring(cluster_id=4, round_id=1)
        overlay.run()
        overlay.peers[1].hit_counters[7] = 10
        overlay.peers[0].start_monitoring(cluster_id=4, round_id=2)
        overlay.run()
        assert len(overlay.hooks.monitoring) == 2
        assert overlay.hooks.monitoring[0][3] == {7: 8}
        assert overlay.hooks.monitoring[1][3] == {7: 15}

    def test_non_member_cannot_start(self):
        overlay = MicroOverlay()
        peer = overlay.add_peer(0)
        with pytest.raises(ValueError):
            peer.start_monitoring(cluster_id=9, round_id=1)
