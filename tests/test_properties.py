"""Property-based tests (hypothesis) on core invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fairness import gini, jain_fairness, lorenz_curve, majorizes
from repro.core.maxfair import Assignment, maxfair_from_stats
from repro.core.popularity import CategoryStats
from repro.core.reassign import maxfair_reassign_from_stats
from repro.model.zipf import top_mass_count, zipf_pmf
from repro.overlay.metadata import DCRT, DCRTEntry

allocations = st.lists(
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
    min_size=1,
    max_size=40,
)

positive_allocations = st.lists(
    st.floats(min_value=1e-6, max_value=1e6, allow_nan=False),
    min_size=2,
    max_size=40,
)


class TestFairnessProperties:
    @given(allocations)
    def test_jain_in_unit_interval(self, x):
        assert 0.0 < jain_fairness(x) <= 1.0 or sum(x) == 0.0

    @given(positive_allocations, st.floats(min_value=0.1, max_value=100.0))
    def test_jain_scale_invariant(self, x, scale):
        assert abs(jain_fairness(x) - jain_fairness([v * scale for v in x])) < 1e-6

    @given(positive_allocations)
    def test_jain_permutation_invariant(self, x):
        shuffled = list(reversed(x))
        assert abs(jain_fairness(x) - jain_fairness(shuffled)) < 1e-9

    @given(positive_allocations)
    def test_jain_lower_bound_one_over_n(self, x):
        assert jain_fairness(x) >= 1.0 / len(x) - 1e-12

    @given(positive_allocations)
    def test_gini_in_unit_interval(self, x):
        assert -1e-9 <= gini(x) < 1.0

    @given(positive_allocations)
    def test_lorenz_endpoints_and_monotone(self, x):
        curve = lorenz_curve(x)
        assert curve[0] == 0.0
        assert abs(curve[-1] - 1.0) < 1e-9
        assert np.all(np.diff(curve) >= -1e-12)

    @given(positive_allocations)
    def test_equalizing_transfer_improves_jain(self, x):
        """A Pigou-Dalton transfer (rich to poor, without overshooting)
        never decreases the Jain index."""
        x = list(x)
        hi = max(range(len(x)), key=lambda i: x[i])
        lo = min(range(len(x)), key=lambda i: x[i])
        if hi == lo or x[hi] - x[lo] < 1e-9:
            return
        delta = (x[hi] - x[lo]) / 4
        y = list(x)
        y[hi] -= delta
        y[lo] += delta
        assert jain_fairness(y) >= jain_fairness(x) - 1e-9

    @given(positive_allocations)
    def test_self_majorization_reflexive(self, x):
        assert majorizes(x, x)


class TestZipfProperties:
    @given(
        st.integers(min_value=1, max_value=2000),
        st.floats(min_value=0.0, max_value=1.5),
    )
    def test_pmf_sums_to_one_and_sorted(self, n, theta):
        pmf = zipf_pmf(n, theta)
        assert abs(pmf.sum() - 1.0) < 1e-9
        assert np.all(np.diff(pmf) <= 1e-15)

    @given(
        st.integers(min_value=1, max_value=500),
        st.floats(min_value=0.0, max_value=1.2),
        st.floats(min_value=0.0, max_value=1.0),
    )
    def test_top_mass_count_is_minimal(self, n, theta, mass):
        pmf = zipf_pmf(n, theta)
        count = top_mass_count(pmf, mass)
        assert 0 <= count <= n
        if count > 0:
            assert pmf[:count].sum() >= mass - 1e-9
        if count > 1:
            assert pmf[: count - 1].sum() < mass


stats_strategy = st.integers(min_value=2, max_value=30).flatmap(
    lambda n: st.tuples(
        st.lists(
            st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
            min_size=n,
            max_size=n,
        ),
        st.lists(
            st.floats(min_value=0.1, max_value=10.0, allow_nan=False),
            min_size=n,
            max_size=n,
        ),
        st.integers(min_value=1, max_value=6),
    )
)


def _make_stats(popularity, weights):
    popularity = np.asarray(popularity)
    weights = np.asarray(weights)
    return CategoryStats(
        popularity=popularity,
        contributor_count=weights,
        capacity_units=weights,
        storage_weight=weights,
    )


class TestMaxFairProperties:
    @settings(max_examples=50, deadline=None)
    @given(stats_strategy)
    def test_assignment_complete_and_in_range(self, data):
        popularity, weights, k = data
        stats = _make_stats(popularity, weights)
        assignment = maxfair_from_stats(stats, n_clusters=k)
        assert assignment.is_complete()
        assert assignment.category_to_cluster.min() >= 0
        assert assignment.category_to_cluster.max() < k

    @settings(max_examples=50, deadline=None)
    @given(stats_strategy)
    def test_single_cluster_trivial(self, data):
        popularity, weights, _ = data
        stats = _make_stats(popularity, weights)
        assignment = maxfair_from_stats(stats, n_clusters=1)
        assert set(assignment.category_to_cluster.tolist()) == {0}

    @settings(max_examples=30, deadline=None)
    @given(stats_strategy)
    def test_reassign_never_worsens(self, data):
        popularity, weights, k = data
        stats = _make_stats(popularity, weights)
        rng = np.random.default_rng(0)
        assignment = Assignment(
            category_to_cluster=rng.integers(0, k, size=len(popularity)),
            n_clusters=k,
        )
        result = maxfair_reassign_from_stats(
            stats, assignment, fairness_threshold=0.99, max_moves=20
        )
        assert result.final_fairness >= result.initial_fairness - 1e-9
        # Trace strictly improves step over step.
        for earlier, later in zip(result.fairness_trace, result.fairness_trace[1:]):
            assert later > earlier


class TestDCRTProperties:
    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=5),  # cluster
                st.integers(min_value=0, max_value=10),  # move counter
            ),
            min_size=1,
            max_size=20,
        )
    )
    def test_merge_order_independent(self, updates):
        """DCRT merge is a join-semilattice: any delivery order of the same
        update set converges to the same entry (eventual consistency of the
        lazy-rebalance metadata)."""
        entries = [DCRTEntry(cluster, counter) for cluster, counter in updates]
        forward = DCRT()
        backward = DCRT()
        for entry in entries:
            forward.merge(7, entry)
        for entry in reversed(entries):
            backward.merge(7, entry)
        assert forward.entry(7).move_counter == backward.entry(7).move_counter
        # Note: ties on move counter keep the first-arrived entry, so the
        # *counter* converges always; the cluster converges whenever
        # counters are unique, which the protocol guarantees (each move
        # increments the category's counter exactly once).
        unique_counters = len({e.move_counter for e in entries}) == len(entries)
        if unique_counters:
            assert forward.entry(7).cluster_id == backward.entry(7).cluster_id
