"""Tests for epidemic metadata dissemination."""

import pytest

from repro.overlay.epidemic import (
    GossipDriver,
    dcrt_convergence,
    run_gossip_until_converged,
)

from tests.helpers import build_live_system


@pytest.fixture()
def gossip_system():
    _instance, system = build_live_system(scale=0.02, seed=21, with_plan=False)
    return system


class TestConvergenceMeasurement:
    def test_bootstrap_state_is_converged(self, gossip_system):
        report = dcrt_convergence(gossip_system)
        assert report.agreement == pytest.approx(1.0)
        assert report.fully_converged == report.n_peers

    def test_divergence_detected_after_move(self, gossip_system):
        system = gossip_system
        category_id = 0
        old = system.assignment.cluster_of(category_id)
        new = (old + 1) % system.assignment.n_clusters
        system.apply_reassignment(category_id, new)
        report = dcrt_convergence(system)
        assert report.agreement < 1.0


class TestGossipSpreadsUpdates:
    def test_converges_after_move(self, gossip_system):
        system = gossip_system
        category_id = 0
        old = system.assignment.cluster_of(category_id)
        new = (old + 1) % system.assignment.n_clusters
        system.apply_reassignment(category_id, new)
        counter = int(system.assignment.move_counters[category_id])
        # Seed the new mapping at a handful of peers (as reassign notices
        # would), then let gossip do the rest.
        for peer in system.alive_peers()[:5]:
            peer.dcrt.set(category_id, new, move_counter=counter)
        rounds, report = run_gossip_until_converged(
            system, max_rounds=40, target_agreement=1.0
        )
        assert report.agreement == pytest.approx(1.0)
        assert rounds < 40

    def test_gossip_does_not_resurrect_stale_mappings(self, gossip_system):
        system = gossip_system
        category_id = 0
        current = system.assignment.cluster_of(category_id)
        # One peer holds a *stale* belief with a lower move counter than
        # everyone's bootstrap entry... give everyone counter 2 first.
        for peer in system.alive_peers():
            peer.dcrt.set(category_id, current, move_counter=2)
        straggler = system.alive_peers()[0]
        straggler.dcrt.set(category_id, (current + 1) % system.assignment.n_clusters, 1)
        system.run_gossip_rounds(6)
        # The fresher mapping wins everywhere, including at the straggler.
        for peer in system.alive_peers():
            assert peer.dcrt.cluster_of(category_id) == current


class TestGossipDriver:
    def test_periodic_rounds_run(self, gossip_system):
        driver = GossipDriver(gossip_system, interval=1.0)
        driver.start()
        gossip_system.sim.run(until=5.5)
        driver.stop()
        assert driver.rounds_run == 5

    def test_double_start_rejected(self, gossip_system):
        driver = GossipDriver(gossip_system, interval=1.0)
        driver.start()
        with pytest.raises(RuntimeError):
            driver.start()
        driver.stop()

    def test_rejects_bad_interval(self, gossip_system):
        with pytest.raises(ValueError):
            GossipDriver(gossip_system, interval=0)
