"""The SCENARIO experiment: matrix shape, clean invariants, registry."""

import pytest

from repro.experiments import REGISTRY, scenario


@pytest.fixture(scope="module")
def result():
    return scenario.run(seed=7)


class TestMatrixRun:
    def test_all_specs_and_phases_reported(self, result):
        assert result.n_specs == 4
        assert result.n_phases == 4
        assert len(result.spec_names) == 16
        assert set(result.spec_names) == {
            "stationary",
            "diurnal-regional",
            "drift-flip",
            "freeride-misbehave",
        }
        for name in set(result.spec_names):
            phases = [
                result.phase_index[i]
                for i in range(len(result.spec_names))
                if result.spec_names[i] == name
            ]
            assert phases == [0, 1, 2, 3]

    def test_invariants_clean(self, result):
        assert result.violations == 0, result.violation_details

    def test_every_phase_issued_queries(self, result):
        assert all(n > 0 for n in result.n_queries)

    def test_goodput_positive_everywhere(self, result):
        # Even the misbehaving/partitioned phases must keep serving.
        assert all(g > 0.0 for g in result.goodput)

    def test_fairness_in_unit_interval(self, result):
        assert all(0.0 < f <= 1.0 for f in result.fairness)

    def test_format_result_renders_table(self, result):
        text = scenario.format_result(result)
        assert "SCENARIO matrix" in text
        assert "stationary" in text
        assert "invariant violations: 0" in text


class TestRegistry:
    def test_registered(self):
        assert "SCENARIO" in REGISTRY

    def test_envelope_exposes_phase_rows(self):
        spec = REGISTRY["SCENARIO"]
        envelope = spec.call(seed=7)
        assert envelope.metrics["violations"] == 0
        assert len(envelope.rows) == 16

    def test_accepts_seed(self):
        assert REGISTRY["SCENARIO"].accepts("seed")
