"""OVERLOAD experiment: graceful degradation instead of a goodput cliff.

The headline acceptance run (default window) is deterministic simulated
time, so the degradation shape itself is asserted: with protections on,
goodput at twice the saturating load stays near the peak; without them
the backlog outgrows the SLO and goodput collapses.
"""

import pytest

from repro.experiments import EXPERIMENTS, overload


class TestStructure:
    def test_registered(self):
        assert "OVERLOAD" in EXPERIMENTS
        assert EXPERIMENTS["OVERLOAD"].EXPERIMENT.name == "OVERLOAD"

    def test_small_run_shape(self):
        result = overload.run(loads=(1.0, 2.0), window=1.5, seed=11)
        assert result.seed == 11
        assert result.window_s == 1.5
        assert result.saturation_rate > 0
        assert len(result.rows) == 4  # 2 loads x (unprotected, protected)
        for load in (1.0, 2.0):
            for protected in (False, True):
                row = result.row(load, protected)
                assert row.n_queries >= 1
                assert row.offered_rate == pytest.approx(
                    load * result.saturation_rate
                )
                assert 0.0 <= row.timely_rate <= row.success_rate <= 1.0
                assert row.goodput >= 0.0
                assert row.drain_s >= 0.0
        # Only the protected arm can shed or redirect.
        assert result.row(2.0, False).shed == 0
        assert result.row(2.0, False).redirected == 0

    def test_unknown_row_raises(self):
        result = overload.run(loads=(1.0,), window=1.0)
        with pytest.raises(KeyError):
            result.row(9.9, True)

    def test_format_result_mentions_both_arms(self):
        result = overload.run(loads=(1.0, 2.0), window=1.5)
        text = overload.format_result(result)
        assert "OVERLOAD" in text
        assert "protected" in text
        assert "unprotected" in text
        assert "goodput" in text


class TestDegradationShape:
    def test_protection_flattens_the_cliff(self):
        """The acceptance criterion, at the experiment's real window.

        Deterministic (simulated clock), ~2s wall time: the protected arm
        retains >= 75% of its peak goodput at 2x saturation while the
        unprotected arm loses far more.
        """
        result = overload.run()
        assert result.peak_goodput(True) > 0
        assert result.degradation(True) >= 0.75
        assert result.degradation(False) <= 0.7
        assert result.degradation(True) > result.degradation(False)
        # The unprotected backlog blows the SLO by an order of magnitude.
        assert result.row(2.0, False).p99_latency > result.slo
        # Admission control is what buys the shape: the overflow was
        # redirected to replica holders instead of queueing unboundedly.
        protected_worst = result.row(2.0, True)
        assert protected_worst.redirected + protected_worst.shed > 0
        assert protected_worst.p99_latency < result.row(2.0, False).p99_latency
