"""Client-side overload protection: retry budgets, breakers, RTT adaptation.

Exercises :class:`repro.reliability.channel.ReliableChannel` standalone
(two hand-wired channels on a raw network) plus the end-to-end
BUSY-failover path through real peers.
"""

import numpy as np
import pytest

from repro import obs
from repro.overlay.peer import PeerConfig
from repro.overlay.service import ServiceConfig
from repro.reliability.channel import ReliabilityConfig, ReliableChannel
from repro.sim.engine import Simulator
from repro.sim.network import Network
from tests.helpers import MicroOverlay

SENDER, RECEIVER = 0, 99


def _channel_pair(config: ReliabilityConfig, base_latency: float = 0.05):
    """Two wired channels: SENDER's acks and RECEIVER's observes flow."""
    sim = Simulator()
    network = Network(sim, base_latency=base_latency, bandwidth=None)
    give_ups: list[tuple[int, str]] = []
    sender = ReliableChannel(
        SENDER,
        network,
        config,
        jitter_rng=np.random.default_rng(1),
        on_give_up=lambda dst, kind: give_ups.append((dst, kind)),
    )
    receiver = ReliableChannel(RECEIVER, network, config)
    network.register(
        SENDER,
        lambda message: (
            sender.handle_ack(message.payload) if message.kind == "ack" else None
        ),
    )
    network.register(RECEIVER, receiver.observe)
    return sim, network, sender, give_ups


def _advance(sim: Simulator, delay: float) -> None:
    sim.schedule(delay, lambda: None)
    sim.run()


class TestRetryBudget:
    def test_budget_exhaustion_dead_letters_instead_of_retrying(self):
        c_refused = obs.counter("reliability.retry_budget_refusals")
        c_retries = obs.counter("reliability.retries")
        c_gave_up = obs.counter("reliability.gave_up")
        refused0, retries0, gave_up0 = (
            c_refused.value, c_retries.value, c_gave_up.value,
        )
        config = ReliabilityConfig(
            enabled=True,
            ack_timeout=0.2,
            max_attempts=10,
            retry_budget_ratio=0.5,
            retry_budget_cap=2.0,
            jitter_fraction=0.0,
        )
        sim, network, sender, give_ups = _channel_pair(config)
        network.crash(RECEIVER)

        sender.send(RECEIVER, "publish_request", None)
        sim.run()

        # Two retry tokens bought two retransmissions; the third was
        # refused and the delivery dead-lettered well short of
        # max_attempts.
        assert c_retries.value - retries0 == 2
        assert c_refused.value - refused0 == 1
        assert c_gave_up.value - gave_up0 == 0  # refusal is not a give-up
        assert sender.dead_letters == 1
        assert sender.outstanding() == 0
        assert give_ups == [(RECEIVER, "publish_request")]
        # The bucket never overdrafts.
        assert sender.budget_tokens(RECEIVER) == pytest.approx(0.0)
        assert sender.min_budget_tokens() >= 0.0

    def test_fresh_sends_replenish_the_bucket(self):
        config = ReliabilityConfig(
            enabled=True,
            retry_budget_ratio=0.5,
            retry_budget_cap=2.0,
        )
        sim, network, sender, _ = _channel_pair(config)
        for _ in range(3):
            sender.send(RECEIVER, "publish_request", None)
        sim.run()
        # Acked cleanly: deposits happened, nothing was spent or capped out.
        assert sender.budget_tokens(RECEIVER) == pytest.approx(2.0)
        assert sender.dead_letters == 0

    def test_budgets_off_by_default(self):
        config = ReliabilityConfig(enabled=True)
        _, _, sender, _ = _channel_pair(config)
        assert sender.budget_tokens(RECEIVER) is None
        assert sender.min_budget_tokens() is None


class TestCircuitBreaker:
    CONFIG = ReliabilityConfig(
        enabled=True,
        ack_timeout=0.1,
        max_attempts=2,
        breaker_threshold=2,
        breaker_reset_timeout=5.0,
        jitter_fraction=0.0,
    )

    def test_open_half_open_close_cycle(self):
        c_refused = obs.counter("reliability.breaker_refusals")
        g_open = obs.gauge("reliability.breakers_open")
        refused0, open0 = c_refused.value, g_open.value
        sim, network, sender, _ = _channel_pair(self.CONFIG)
        network.crash(RECEIVER)

        # Two give-ups trip the breaker.
        for _ in range(2):
            sender.send(RECEIVER, "publish_request", None)
            sim.run()
        assert sender.breaker_state(RECEIVER) == "open"
        assert g_open.value - open0 == 1

        # While open, sends are refused locally: no id, no network traffic.
        sent_before = network.stats.messages_sent
        assert sender.send(RECEIVER, "publish_request", None) == -1
        assert network.stats.messages_sent == sent_before
        assert c_refused.value - refused0 == 1
        assert sender.dead_letters == 3  # 2 give-ups + 1 refusal

        # After the reset timeout one half-open trial probes the (now
        # recovered) destination; its ack closes the circuit.
        network.recover(RECEIVER)
        _advance(sim, self.CONFIG.breaker_reset_timeout + 0.1)
        delivery_id = sender.send(RECEIVER, "publish_request", None)
        assert delivery_id > 0
        sim.run()
        assert sender.breaker_state(RECEIVER) == "closed"
        assert g_open.value - open0 == 0  # gauge restored on close

    def test_failed_half_open_trial_reopens(self):
        g_open = obs.gauge("reliability.breakers_open")
        open0 = g_open.value
        sim, network, sender, _ = _channel_pair(self.CONFIG)
        network.crash(RECEIVER)
        for _ in range(2):
            sender.send(RECEIVER, "publish_request", None)
            sim.run()
        assert sender.breaker_state(RECEIVER) == "open"

        # Still crashed: the half-open trial gives up and re-opens.
        _advance(sim, self.CONFIG.breaker_reset_timeout + 0.1)
        assert sender.send(RECEIVER, "publish_request", None) > 0
        sim.run()
        assert sender.breaker_state(RECEIVER) == "open"
        assert g_open.value - open0 == 1  # still exactly one open circuit

    def test_breaker_off_by_default(self):
        config = ReliabilityConfig(enabled=True, ack_timeout=0.1, max_attempts=1)
        sim, network, sender, _ = _channel_pair(config)
        network.crash(RECEIVER)
        for _ in range(5):
            sender.send(RECEIVER, "publish_request", None)
        sim.run()
        # Plenty of give-ups, but no breaker configured: never refused.
        assert sender.breaker_state(RECEIVER) == "closed"
        assert all(
            sender.send(RECEIVER, "publish_request", None) > 0
            for _ in range(2)
        )
        sim.run()


class TestAdaptiveTimeout:
    CONFIG = ReliabilityConfig(
        enabled=True,
        ack_timeout=2.0,
        adaptive_timeout=True,
        min_ack_timeout=0.05,
        jitter_fraction=0.0,
    )

    def test_timeout_tracks_observed_rtt(self):
        sim, network, sender, _ = _channel_pair(self.CONFIG, base_latency=0.05)
        for _ in range(5):
            sender.send(RECEIVER, "publish_request", None)
            sim.run()
        # RTT is 2 x base_latency = 0.1s; srtt + 4*rttvar lands far below
        # the 2s configured base but above the lower clamp.
        adapted = sender._attempt_timeout(0, RECEIVER)
        assert self.CONFIG.min_ack_timeout <= adapted < 0.5
        # Destinations without samples keep the configured base.
        assert sender._attempt_timeout(0, dst=42) == pytest.approx(2.0)

    def test_karn_rule_ignores_retransmitted_acks(self):
        config = ReliabilityConfig(
            enabled=True,
            ack_timeout=0.2,
            adaptive_timeout=True,
            jitter_fraction=0.0,
        )
        sim, network, sender, _ = _channel_pair(config)
        # First attempt is lost; the destination heals before the retry,
        # so the ack answers attempt 1 — ambiguous, and never sampled.
        network.crash(RECEIVER)
        sim.schedule(0.15, lambda: network.recover(RECEIVER))
        sender.send(RECEIVER, "publish_request", None)
        sim.run()
        assert sender.outstanding() == 0  # the retry was acked
        assert sender._rtt == {}  # but produced no RTT sample
        assert sender._attempt_timeout(0, RECEIVER) == pytest.approx(0.2)


class TestDeadLetters:
    def test_exhausted_attempts_dead_letter_with_counters(self):
        c_dead = obs.counter("reliability.dead_letters")
        c_gave_up = obs.counter("reliability.gave_up")
        dead0, gave_up0 = c_dead.value, c_gave_up.value
        config = ReliabilityConfig(
            enabled=True,
            ack_timeout=0.1,
            max_attempts=2,
            adaptive_timeout=True,  # any protection knob registers metrics
            jitter_fraction=0.0,
        )
        sim, network, sender, give_ups = _channel_pair(config)
        network.crash(RECEIVER)
        sender.send(RECEIVER, "transfer_request", None)
        sim.run()
        assert c_gave_up.value - gave_up0 == 1
        assert c_dead.value - dead0 == 1
        assert sender.dead_letters == 1
        assert give_ups == [(RECEIVER, "transfer_request")]

    def test_unprotected_channel_counts_locally_only(self):
        c_dead = obs.counter("reliability.dead_letters")
        dead0 = c_dead.value
        config = ReliabilityConfig(
            enabled=True, ack_timeout=0.1, max_attempts=1, jitter_fraction=0.0
        )
        assert not config.overload_protected
        sim, network, sender, _ = _channel_pair(config)
        network.crash(RECEIVER)
        sender.send(RECEIVER, "publish_request", None)
        sim.run()
        # The plain attribute always counts; the process-wide counter is
        # only wired up when a protection knob is on.
        assert sender.dead_letters == 1
        assert c_dead.value == dead0


class TestBusyFailover:
    def test_shed_queries_fail_over_to_another_member(self):
        c_busy = obs.counter("overload.busy_signals")
        c_failover = obs.counter("reliability.query_failovers")
        busy0, failover0 = c_busy.value, c_failover.value

        overlay = MicroOverlay(seed=3)
        reliability = ReliabilityConfig(
            enabled=True, query_deadline=5.0, query_attempts=6
        )
        slow = overlay.add_peer(
            1,
            config=PeerConfig(
                reliability=reliability,
                service=ServiceConfig(
                    enabled=True,
                    base_service_time=0.4,
                    queue_capacity=1,
                    policy="drop-tail",
                    busy_retry_after=0.2,
                ),
            ),
        )
        overlay.add_peer(
            2,
            config=PeerConfig(
                reliability=reliability,
                service=ServiceConfig(
                    enabled=True, base_service_time=0.01, queue_capacity=0
                ),
            ),
        )
        client = overlay.add_peer(0, config=PeerConfig(reliability=reliability))
        overlay.wire_cluster(0, [1, 2], edges=[(1, 2)], category_map={0: 0})
        overlay.give_document(1, 7, [0])
        overlay.give_document(2, 7, [0])
        client.dcrt.set(0, 0)
        client.nrt.add(0, 1)
        client.nrt.add(0, 2)

        n_queries = 10
        for index in range(n_queries):
            overlay.sim.schedule_at(
                index * 1e-3,
                lambda q=index: client.start_query(q, 0, 1, target_doc_id=7),
            )
        overlay.run()

        # The slow member shed part of the burst; every shed query backed
        # off and was re-dispatched to the healthy member — none failed.
        assert c_busy.value - busy0 > 0
        assert c_failover.value - failover0 > 0
        assert not overlay.hooks.failures
        answered = {e[1].query_id for e in overlay.hooks.responses}
        assert answered == set(range(n_queries))
        assert slow.service_snapshot()["shed"] > 0
