"""Tests for repro.sim.engine — the discrete-event core."""

import pytest

from repro.sim.engine import SimulationError, Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        log = []
        sim.schedule(3.0, lambda: log.append("c"))
        sim.schedule(1.0, lambda: log.append("a"))
        sim.schedule(2.0, lambda: log.append("b"))
        sim.run()
        assert log == ["a", "b", "c"]

    def test_simultaneous_events_fire_in_schedule_order(self):
        sim = Simulator()
        log = []
        for name in "abc":
            sim.schedule(1.0, lambda n=name: log.append(n))
        sim.run()
        assert log == ["a", "b", "c"]

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(2.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [2.5]
        assert sim.now == 2.5

    def test_nested_scheduling(self):
        sim = Simulator()
        log = []

        def outer():
            log.append(("outer", sim.now))
            sim.schedule(1.0, lambda: log.append(("inner", sim.now)))

        sim.schedule(1.0, outer)
        sim.run()
        assert log == [("outer", 1.0), ("inner", 2.0)]

    def test_schedule_at_absolute(self):
        sim = Simulator()
        seen = []
        sim.schedule_at(5.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [5.0]

    def test_schedule_in_past_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(1.0, lambda: None)

    def test_cancelled_event_skipped(self):
        sim = Simulator()
        log = []
        event = sim.schedule(1.0, lambda: log.append("x"))
        event.cancel()
        sim.run()
        assert log == []

    def test_events_processed_counter(self):
        sim = Simulator()
        for _ in range(5):
            sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.events_processed == 5


class TestRunBounds:
    def test_until_stops_early(self):
        sim = Simulator()
        log = []
        sim.schedule(1.0, lambda: log.append(1))
        sim.schedule(10.0, lambda: log.append(10))
        sim.run(until=5.0)
        assert log == [1]
        assert sim.now == 5.0
        sim.run()
        assert log == [1, 10]

    def test_until_advances_clock_with_no_events(self):
        sim = Simulator()
        sim.run(until=7.0)
        assert sim.now == 7.0

    def test_max_events_guard(self):
        sim = Simulator()

        def loop():
            sim.schedule(0.1, loop)

        sim.schedule(0.0, loop)
        with pytest.raises(SimulationError):
            sim.run(max_events=100)

    def test_max_events_preserves_budget_tripping_event(self):
        # Regression: the event that trips the budget must stay queued so
        # the caller can catch the error and resume without losing it.
        sim = Simulator()
        log = []
        for name in "abc":
            sim.schedule(1.0, lambda n=name: log.append(n))
        with pytest.raises(SimulationError):
            sim.run(max_events=1)
        assert log == ["a"]
        assert sim.pending() == 2  # 'b' and 'c' survive the exhaustion
        sim.run()
        assert log == ["a", "b", "c"]  # each fires exactly once, in order

    def test_max_events_resume_in_steps(self):
        sim = Simulator()
        log = []
        for i in range(5):
            sim.schedule(float(i), lambda i=i: log.append(i))
        for _ in range(2):
            with pytest.raises(SimulationError):
                sim.run(max_events=2)
        sim.run()
        assert log == [0, 1, 2, 3, 4]

    def test_cancelled_events_do_not_consume_budget(self):
        sim = Simulator()
        log = []
        for i in range(3):
            sim.schedule(1.0, lambda i=i: log.append(i)).cancel()
        sim.schedule(2.0, lambda: log.append("live"))
        sim.run(max_events=1)
        assert log == ["live"]

    def test_reentrant_run_rejected(self):
        sim = Simulator()
        errors = []

        def reenter():
            try:
                sim.run()
            except SimulationError as exc:
                errors.append(exc)

        sim.schedule(1.0, reenter)
        sim.run()
        assert len(errors) == 1

    def test_pending_and_clear(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        assert sim.pending() == 2
        event.cancel()
        assert sim.pending() == 1
        sim.clear()
        assert sim.pending() == 0

    def test_pending_exact_under_double_cancel(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        event.cancel()
        event.cancel()  # idempotent: must not decrement twice
        assert sim.pending() == 1

    def test_cancel_after_fire_does_not_corrupt_pending(self):
        sim = Simulator()
        fired = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        sim.run(until=1.5)
        fired.cancel()  # already dispatched; must be a no-op for pending
        assert sim.pending() == 1

    def test_cancel_after_clear_does_not_go_negative(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        sim.clear()
        event.cancel()
        assert sim.pending() == 0

    def test_pending_tracks_drain(self):
        sim = Simulator()
        for i in range(4):
            sim.schedule(float(i + 1), lambda: None)
        sim.run(until=2.5)
        assert sim.pending() == 2
        sim.run()
        assert sim.pending() == 0


class TestInstrumentation:
    def test_event_hook_times_callbacks(self):
        sim = Simulator()
        seen = []
        sim.event_hook = lambda event, elapsed: seen.append((event.seq, elapsed))
        sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        sim.run()
        assert [seq for seq, _ in seen] == [0, 1]
        assert all(elapsed >= 0.0 for _, elapsed in seen)

    def test_hook_installed_mid_run_takes_effect(self):
        sim = Simulator()
        seen = []

        def install():
            sim.event_hook = lambda event, elapsed: seen.append(event.seq)

        sim.schedule(1.0, install)
        sim.schedule(2.0, lambda: None)
        sim.run()
        assert seen == [1]  # only the event after installation is timed

    def test_events_processed_counter_in_registry(self):
        from repro import obs

        counter = obs.counter("sim.events_processed")
        before = counter.value
        sim = Simulator()
        for _ in range(3):
            sim.schedule(1.0, lambda: None)
        sim.run()
        assert counter.value == before + 3

    def test_event_dispatch_traced_when_enabled(self):
        from repro import obs

        log = obs.TRACE
        log.clear()
        log.enable()
        try:
            sim = Simulator()
            sim.schedule(1.0, lambda: None)
            sim.run()
        finally:
            log.disable()
        kinds = [event.kind for event in log.events()]
        assert "event_dispatch" in kinds
        log.clear()


class TestPeriodic:
    def test_fires_until_cancelled(self):
        sim = Simulator()
        ticks = []
        cancel = sim.schedule_periodic(1.0, lambda: ticks.append(sim.now))
        sim.run(until=3.5)
        cancel()
        sim.run()
        assert ticks == [1.0, 2.0, 3.0]

    def test_start_delay(self):
        sim = Simulator()
        ticks = []
        cancel = sim.schedule_periodic(
            2.0, lambda: ticks.append(sim.now), start_delay=0.5
        )
        sim.run(until=5.0)
        cancel()
        assert ticks == [0.5, 2.5, 4.5]

    def test_rejects_nonpositive_interval(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule_periodic(0.0, lambda: None)

    def test_cancel_mid_flight(self):
        sim = Simulator()
        ticks = []
        cancel = sim.schedule_periodic(1.0, lambda: ticks.append(sim.now))
        sim.schedule(2.5, cancel)
        sim.run()
        assert ticks == [1.0, 2.0]
