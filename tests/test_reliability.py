"""Tests for the ack/retry channel, failure detector, and query failover."""

import numpy as np
import pytest

from repro import obs
from repro.overlay import messages as m
from repro.overlay.peer import DocInfo, PeerConfig
from repro.reliability import (
    RELIABLE_KINDS,
    FailureDetector,
    ReliabilityConfig,
    ReliableChannel,
)
from repro.sim.engine import Simulator
from repro.sim.network import Network
from tests.helpers import MicroOverlay

FAST = ReliabilityConfig(
    enabled=True,
    ack_timeout=0.5,
    backoff_factor=2.0,
    max_backoff=2.0,
    max_attempts=3,
    query_deadline=1.5,
    query_attempts=3,
    probe_timeout=0.5,
    suspicion_threshold=2,
)


def _delta(name: str):
    counter = obs.counter(name)
    start = counter.value

    def read() -> float:
        return counter.value - start

    return read


class _Endpoint:
    """Minimal channel user: applies non-duplicate messages, honours acks."""

    def __init__(
        self, node_id: int, network: Network, config: ReliabilityConfig,
        drop_acks: bool = False,
    ) -> None:
        self.channel = ReliableChannel(node_id, network, config)
        self.applied: list[tuple[str, int]] = []
        self.drop_acks = drop_acks
        network.register(node_id, self.handle)

    def handle(self, message) -> None:
        if message.kind == "ack":
            if not self.drop_acks:
                self.channel.handle_ack(message.payload)
            return
        if self.channel.observe(message):
            return
        self.applied.append((message.kind, message.delivery_id))


class TestReliableChannel:
    def test_ack_settles_delivery(self):
        sim = Simulator()
        network = Network(sim)
        sender = _Endpoint(0, network, FAST)
        receiver = _Endpoint(1, network, FAST)
        retries = _delta("reliability.retries")
        sender.channel.send(1, "publish_request", "payload")
        sim.run()
        assert receiver.applied == [("publish_request", 1)]
        assert sender.channel.outstanding() == 0
        assert retries() == 0

    def test_retransmits_until_destination_appears(self):
        sim = Simulator()
        network = Network(sim)
        sender = _Endpoint(0, network, FAST)
        retries = _delta("reliability.retries")
        sender.channel.send(1, "transfer_request", "payload")
        # The receiver registers only after the first attempt was dropped.
        receiver_box = []
        sim.schedule(0.6, lambda: receiver_box.append(_Endpoint(1, network, FAST)))
        sim.run()
        assert receiver_box[0].applied == [("transfer_request", 1)]
        assert sender.channel.outstanding() == 0
        assert retries() >= 1

    def test_gives_up_after_max_attempts(self):
        sim = Simulator()
        network = Network(sim)
        gave_up = []
        channel = ReliableChannel(
            0, network, FAST, on_give_up=lambda dst, kind: gave_up.append((dst, kind))
        )
        network.register(0, lambda message: None)
        retries = _delta("reliability.retries")
        gave_up_counter = _delta("reliability.gave_up")
        channel.send(9, "publish_reply", "payload")  # node 9 never exists
        sim.run()
        assert channel.outstanding() == 0
        assert gave_up == [(9, "publish_reply")]
        assert retries() == FAST.max_attempts - 1
        assert gave_up_counter() == 1

    def test_lost_acks_cause_suppressed_duplicates(self):
        sim = Simulator()
        network = Network(sim)
        sender = _Endpoint(0, network, FAST, drop_acks=True)
        receiver = _Endpoint(1, network, FAST)
        duplicates = _delta("reliability.duplicates_suppressed")
        sender.channel.send(1, "reassign_notice", "payload")
        sim.run()
        # Applied exactly once; every retransmission was re-acked but
        # suppressed before reaching the handler.
        assert receiver.applied == [("reassign_notice", 1)]
        assert duplicates() == FAST.max_attempts - 1

    def test_backoff_is_capped_exponential(self):
        sim = Simulator()
        network = Network(sim)
        channel = ReliableChannel(0, network, FAST)
        assert channel._attempt_timeout(0) == 0.5
        assert channel._attempt_timeout(1) == 1.0
        assert channel._attempt_timeout(2) == 2.0  # capped at max_backoff
        assert channel._attempt_timeout(5) == 2.0

    def test_jitter_drawn_only_on_retries(self):
        class CountingRng:
            calls = 0

            def random(self):
                self.calls += 1
                return 0.5

        rng = CountingRng()
        sim = Simulator()
        channel = ReliableChannel(0, Network(sim), FAST, jitter_rng=rng)
        first = channel._attempt_timeout(0)
        assert rng.calls == 0  # first attempts never consult the stream
        retry = channel._attempt_timeout(1)
        assert rng.calls == 1
        assert retry == pytest.approx(1.0 * (1.0 + FAST.jitter_fraction * 0.5))
        assert first == 0.5

    def test_query_kind_is_not_reliable(self):
        # Query requests get end-to-end failover instead of same-target
        # retries; acks/pings/gossip are fire-and-forget by design.
        assert "query" not in RELIABLE_KINDS
        assert "ack" not in RELIABLE_KINDS
        assert "gossip" not in RELIABLE_KINDS
        assert "publish_request" in RELIABLE_KINDS
        assert "transfer_data" in RELIABLE_KINDS

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ReliabilityConfig(ack_timeout=0.0)
        with pytest.raises(ValueError):
            ReliabilityConfig(max_attempts=0)
        with pytest.raises(ValueError):
            ReliabilityConfig(jitter_fraction=1.0)
        with pytest.raises(ValueError):
            ReliabilityConfig(dedup_capacity=0)


class TestFailureDetector:
    def test_suspicion_threshold_and_rehabilitation(self):
        detector = FailureDetector(0, Network(Simulator()), FAST)
        cleared = _delta("reliability.suspicions_cleared")
        detector.note_missed(5)
        assert not detector.is_suspect(5)
        detector.note_missed(5)
        assert detector.is_suspect(5)
        detector.note_alive(5)  # a suspect that speaks is rehabilitated
        assert not detector.is_suspect(5)
        assert cleared() == 1

    def test_probe_timeout_counts_a_miss(self):
        sim = Simulator()
        network = Network(sim)
        network.register(0, lambda message: None)
        config = ReliabilityConfig(enabled=True, suspicion_threshold=1)
        detector = FailureDetector(0, network, config)
        detector.probe(7)  # node 7 does not exist
        sim.run()
        assert detector.is_suspect(7)

    def test_pong_clears_pending_probe(self):
        overlay = _reliable_overlay()
        peer = overlay.peers[0]
        peer.detector.probe(1)
        overlay.run()
        assert not peer.detector.is_suspect(1)
        assert not peer.detector._pending


def _reliable_overlay(config: ReliabilityConfig = FAST, **network_kwargs):
    """Three peers in cluster 4 with reliability enabled everywhere."""
    overlay = MicroOverlay(**network_kwargs)
    peer_config = PeerConfig(reliability=config)
    for node_id, capacity in ((0, 1.0), (1, 3.0), (2, 9.0)):
        overlay.add_peer(node_id, capacity=capacity, config=peer_config)
    overlay.wire_cluster(
        4, [0, 1, 2], edges=[(0, 1), (1, 2), (0, 2)], category_map={5: 4}
    )
    return overlay


class TestPeerIntegration:
    def test_reliable_kinds_route_through_channel(self):
        overlay = _reliable_overlay()
        sends = _delta("reliability.sends")
        acked = _delta("reliability.acked")
        overlay.peers[1].publish_document(
            DocInfo(doc_id=100, categories=(5,), size_bytes=1000)
        )
        overlay.run()
        assert sends() >= 1  # publish_request went through the channel
        assert acked() == sends()
        assert all(p.channel.outstanding() == 0 for p in overlay.peers.values())

    def test_exactly_once_under_ack_loss(self):
        overlay = _reliable_overlay(rng=np.random.default_rng(3))
        overlay.network.set_kind_drop_probability("ack", 0.8)
        duplicates = _delta("reliability.duplicates_suppressed")
        for doc_id in range(200, 210):
            overlay.peers[1].publish_document(
                DocInfo(doc_id=doc_id, categories=(5,), size_bytes=1000)
            )
        overlay.run()
        assert duplicates() > 0  # retransmissions happened...
        for peer in overlay.peers.values():  # ...but none re-applied
            assert all(
                count == 1
                for count in peer.reliable_application_counts().values()
            )

    def test_give_up_feeds_the_failure_detector(self):
        config = ReliabilityConfig(
            enabled=True, ack_timeout=0.5, max_attempts=2, suspicion_threshold=1
        )
        overlay = _reliable_overlay(config)
        overlay.network.crash(2)
        overlay.peers[0]._send(2, "publish_request", "payload")
        overlay.run()
        assert overlay.peers[0].detector.is_suspect(2)
        assert 2 in overlay.peers[0].suspects()

    def test_seen_queries_window_is_bounded(self):
        overlay = MicroOverlay()
        peer_config = PeerConfig(reliability=FAST, seen_query_capacity=4)
        for node_id in (0, 1):
            overlay.add_peer(node_id, config=peer_config)
        overlay.wire_cluster(4, [0, 1], edges=[(0, 1)], category_map={5: 4})
        overlay.give_document(1, 99, [5])
        for query_id in range(10):
            overlay.network.transmit(
                0,
                1,
                "query",
                m.QueryMessage(
                    query_id=query_id,
                    requester_id=0,
                    category_id=5,
                    remaining=1,
                    hops=1,
                    target_cluster=4,
                ),
            )
        overlay.run()
        assert overlay.peers[1].seen_query_count() == 4


class TestQueryFailover:
    def test_failover_reaches_a_live_member(self):
        overlay = _reliable_overlay()
        overlay.give_document(1, 99, [5])
        overlay.give_document(2, 99, [5])
        overlay.network.crash(1)
        requester = overlay.peers[0]
        requester.start_query(query_id=7, category_id=5, m_results=1)
        overlay.run()
        answered = [r for _node, r in overlay.hooks.responses if r.query_id == 7]
        assert answered, overlay.hooks.failures
        assert not overlay.hooks.failures
        assert not requester._query_attempts  # settled and cleaned up

    def test_deadline_exhaustion_fails_the_query(self):
        overlay = _reliable_overlay()
        requester = overlay.peers[0]
        # The requester only knows the (crashed) node 1 for cluster 4.
        requester.nrt.remove(4, 0)
        requester.nrt.remove(4, 2)
        overlay.network.crash(1)
        failovers = _delta("reliability.query_failovers")
        requester.start_query(query_id=8, category_id=5, m_results=1)
        overlay.run()
        assert (0, 8, "deadline-exhausted") in overlay.hooks.failures
        assert failovers() == FAST.query_attempts - 1
        assert not requester._query_attempts

    def test_no_known_member_fails_immediately(self):
        overlay = _reliable_overlay()
        requester = overlay.peers[0]
        requester.dcrt.set(6, 9)  # category 6 -> cluster 9, nobody known
        requester.start_query(query_id=9, category_id=6, m_results=1)
        overlay.run()
        assert (0, 9, "no-known-member") in overlay.hooks.failures


class TestSuspectAwareness:
    def test_probe_loss_chain_marks_leader_suspect_then_reelects(self):
        overlay = _reliable_overlay(rng=np.random.default_rng(0))
        for _ in range(2):
            for peer in overlay.peers.values():
                peer.announce_capabilities()
            overlay.run()
        for peer in overlay.peers.values():
            peer.elect_leaders()
        prober = overlay.peers[0]
        assert prober.believed_leader[4] == 2
        # Every probe to the leader is lost; each timeout is a miss.
        overlay.network.set_kind_drop_probability("leader_probe", 0.999)
        for round_id in (1, 2, 3):
            prober.probe_leader(4, round_id=round_id)
            overlay.run()
        assert prober.detector.is_suspect(2)
        # Re-election strikes the suspect: node 1 (next capacity) wins.
        prober.elect_leaders()
        assert prober.believed_leader[4] == 1

    def test_election_ignores_suspicion_that_empties_the_pool(self):
        overlay = _reliable_overlay()
        prober = overlay.peers[0]
        for _ in range(2):
            for peer in overlay.peers.values():
                peer.announce_capabilities()
            overlay.run()
        for node_id in (0, 1, 2):
            prober.detector.note_missed(node_id)
            prober.detector.note_missed(node_id)
        assert prober.suspects() == {0, 1, 2}
        prober.elect_leaders()
        # Everyone is suspect -> suspicion is ignored, not election-fatal.
        assert prober.believed_leader[4] == 2

    def test_heartbeat_round_probes_and_rehabilitates(self):
        overlay = _reliable_overlay()
        peer = overlay.peers[0]
        peer.detector.note_missed(1)
        peer.detector.note_missed(1)
        assert peer.detector.is_suspect(1)
        probes = _delta("reliability.probes")
        peer.heartbeat_once()
        overlay.run()
        assert probes() >= 1
        assert not peer.detector.is_suspect(1)  # its pong cleared suspicion


class TestLossExperiment:
    SCALE = 0.03

    def test_reliability_meets_success_target_at_ten_percent_loss(self):
        from repro.experiments.loss import measure

        reliable = measure(0.10, True, scale=self.SCALE, seed=7, n_queries=300)
        unreliable = measure(0.10, False, scale=self.SCALE, seed=7, n_queries=300)
        assert reliable.success_rate >= 0.99
        # The unreliable baseline must be measurably worse.
        assert unreliable.success_rate <= reliable.success_rate - 0.05
        assert reliable.retries > 0
        assert unreliable.retries == 0

    def test_zero_loss_identical_with_reliability_on_or_off(self):
        from repro.experiments.loss import measure

        off = measure(0.0, False, scale=self.SCALE, seed=7, n_queries=200)
        on = measure(0.0, True, scale=self.SCALE, seed=7, n_queries=200)
        assert on.success_rate == off.success_rate
        assert on.p99_latency == off.p99_latency
        assert on.mean_latency == off.mean_latency
        assert on.retries == 0
        assert on.query_failovers == 0

    def test_run_and_format(self):
        from repro.experiments import loss

        result = loss.run(scale=self.SCALE, n_queries=60, drops=(0.0, 0.1))
        assert len(result.rows) == 4
        text = loss.format_result(result)
        assert "reliability" in text
        assert result.row(0.1, True).success_rate >= result.row(
            0.1, False
        ).success_rate
