"""Failure-detector hygiene across flapping links and crash/rejoin cycles.

The regression being pinned: a node that crashes accumulates suspicions
about peers whose pongs could never reach it.  If that stale suspect set
survives the rejoin, the healed node silently refuses to route through
perfectly healthy peers — a blackhole that only shows up as mysterious
query failures.  ``clear_failure_state`` (wired into
``P2PSystem.recover_node``) must wipe it.
"""

import pytest

from repro import obs
from repro.overlay.peer import PeerConfig
from repro.overlay.system import P2PSystemConfig
from repro.reliability.channel import ReliabilityConfig
from repro.reliability.detector import FailureDetector
from repro.model.workload import make_query_workload
from repro.sim.engine import Simulator
from repro.sim.network import Network
from tests.helpers import MicroOverlay, build_live_system


def _detector(threshold: int = 2) -> FailureDetector:
    sim = Simulator()
    network = Network(sim)
    config = ReliabilityConfig(enabled=True, suspicion_threshold=threshold)
    return FailureDetector(0, network, config)


class TestFlapping:
    def test_alternating_evidence_never_suspects(self):
        c_suspects = obs.counter("reliability.suspicions")
        c_cleared = obs.counter("reliability.suspicions_cleared")
        suspects0, cleared0 = c_suspects.value, c_cleared.value
        detector = _detector(threshold=2)
        # A flapping link: misses never become *consecutive* misses.
        for _ in range(8):
            detector.note_missed(5)
            assert not detector.suspects
            detector.note_alive(5)
        assert not detector.suspects
        assert c_suspects.value - suspects0 == 0
        # Nothing was ever suspected, so nothing was ever cleared.
        assert c_cleared.value - cleared0 == 0

    def test_threshold_consecutive_misses_suspect_once(self):
        c_suspects = obs.counter("reliability.suspicions")
        suspects0 = c_suspects.value
        detector = _detector(threshold=2)
        detector.note_missed(5)
        detector.note_missed(5)
        assert detector.suspects == {5}
        detector.note_missed(5)  # further misses do not double-count
        assert c_suspects.value - suspects0 == 1

    def test_alive_evidence_clears_suspicion(self):
        c_cleared = obs.counter("reliability.suspicions_cleared")
        cleared0 = c_cleared.value
        detector = _detector(threshold=2)
        detector.note_missed(5)
        detector.note_missed(5)
        detector.note_alive(5)
        assert not detector.suspects
        assert c_cleared.value - cleared0 == 1
        # The miss streak restarted from zero.
        detector.note_missed(5)
        assert not detector.suspects

    def test_reset_clears_state_and_accounts(self):
        c_cleared = obs.counter("reliability.suspicions_cleared")
        cleared0 = c_cleared.value
        detector = _detector(threshold=1)
        detector.note_missed(3)
        detector.note_missed(4)
        assert detector.suspects == {3, 4}
        detector.reset()
        assert not detector.suspects
        assert c_cleared.value - cleared0 == 2
        # Miss streaks were also wiped: one new miss re-suspects (threshold
        # 1) from fresh evidence, not stale counts.
        detector.note_missed(3)
        assert detector.suspects == {3}


class TestRejoinClearsSuspicion:
    def test_crashed_node_rejoins_without_stale_suspects(self):
        """Crash B, let it wrongly suspect C, heal, query through B."""
        overlay = MicroOverlay(seed=1)
        reliability = ReliabilityConfig(enabled=True, probe_timeout=0.5)
        for node_id in (0, 1, 2):
            overlay.add_peer(
                node_id, config=PeerConfig(reliability=reliability)
            )
        a, b, c = overlay.peers[0], overlay.peers[1], overlay.peers[2]
        overlay.wire_cluster(0, [1], edges=[])
        overlay.wire_cluster(1, [2], edges=[], category_map={5: 1})
        overlay.give_document(2, 7, [5])
        a.dcrt.set(5, 0)  # A's stale belief: category 5 still lives in B's cluster
        a.nrt.add(0, 1)
        b.nrt.add(1, 2)

        # B crashes; its probes of C go nowhere, so every probe times out
        # and C — alive the whole time — becomes a suspect at B.
        overlay.network.crash(1)
        for _ in range(2):
            b.detector.probe(2)
            overlay.run()
        assert b.detector.suspects == {2}

        # B heals and rejoins: the crash-era evidence must not survive.
        overlay.network.recover(1)
        b.clear_failure_state()
        assert not b.detector.suspects

        # A queries through B (stale DCRT): B forwards to C — which a
        # lingering suspicion would have excluded — and the query succeeds.
        a.start_query(100, 5, 1, target_doc_id=7)
        overlay.run()
        assert not overlay.hooks.failures
        responses = [e[1] for e in overlay.hooks.responses]
        assert [r.query_id for r in responses] == [100]
        assert responses[0].responder_id == 2

    def test_system_recover_node_resets_detector(self):
        instance, system = build_live_system(
            config=P2PSystemConfig(
                seed=31, reliability=ReliabilityConfig(enabled=True)
            )
        )
        victim = system.alive_peers()[0]
        node_id = victim.node_id
        other = system.alive_peers()[1].node_id
        system.crash_node(node_id)
        # Suspicion accrued while crashed (e.g. timed-out probes).
        victim.detector.note_missed(other)
        victim.detector.note_missed(other)
        assert victim.detector.suspects == {other}

        healed = system.recover_node(node_id)
        assert healed is victim
        assert not victim.detector.suspects
        assert node_id in [peer.node_id for peer in system.alive_peers()]

        # The healed world still answers queries.
        outcomes = system.run_workload(make_query_workload(instance, 20, seed=5))
        assert len(outcomes) == 20
        assert any(outcome.succeeded for outcome in outcomes)

    def test_recover_node_rejects_non_departed_and_graceful_leavers(self):
        _, system = build_live_system(
            config=P2PSystemConfig(
                seed=31, reliability=ReliabilityConfig(enabled=True)
            )
        )
        alive = [peer.node_id for peer in system.alive_peers()]
        with pytest.raises(ValueError, match="not a departed member"):
            system.recover_node(alive[0])
        system.leave_node(alive[1])
        with pytest.raises(ValueError, match="left gracefully"):
            system.recover_node(alive[1])
