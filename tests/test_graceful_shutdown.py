"""Graceful shutdown: drain, sole-holder handoff, and clean departure.

Also pins the crash/leave asymmetry fix: a graceful departure clears
the leaver from its neighbours' failure-detector suspect maps, while a
crash (no goodbye) leaves the suspicion evidence in place.
"""

from tests.helpers import build_live_system
from tests.test_content_fetch import (
    doc_with_holders,
    make_content_system,
    pick_requester,
)


def make_sole_holder(system, min_holders=2):
    """Strip a document down to one holder; return (doc_id, holder)."""
    manager = system.content
    doc_id, holders = doc_with_holders(system, min_holders=min_holders)
    keeper = holders[0]
    for other in holders[1:]:
        system.peer(other).drop_document(doc_id)
    assert manager.live_holders(doc_id) == [keeper]
    return doc_id, keeper


class TestShutdownHandoff:
    def test_sole_holder_documents_survive_the_shutdown(self):
        system = make_content_system()
        manager = system.content
        doc_id, keeper = make_sole_holder(system)
        assert system.shutdown_node(keeper) is True
        assert not system.network.is_alive(keeper)
        assert keeper not in [p.node_id for p in system.alive_peers()]
        holders = manager.live_holders(doc_id)
        assert holders, "the last copy left with the leaver"
        assert keeper not in holders

    def test_manifest_ships_with_the_handoff(self):
        system = make_content_system()
        manager = system.content
        doc_id, keeper = make_sole_holder(system)
        before = manager.manifest_for(doc_id)
        assert system.shutdown_node(keeper) is True
        cached = [
            system.peer(holder).content_state.manifests.get(doc_id)
            for holder in manager.live_holders(doc_id)
        ]
        assert any(m is not None and m == before for m in cached)

    def test_shutdown_without_orphans_is_a_plain_leave(self):
        system = make_content_system()
        # Every document this node holds has another live copy, so no
        # handoff traffic is needed and the node just leaves.
        manager = system.content
        for peer in system.alive_peers():
            if peer.docs and not system._sole_holder_docs(peer.node_id):
                node_id = peer.node_id
                break
        else:
            raise AssertionError("no fully-replicated node in this world")
        held = sorted(system.peer(node_id).docs)
        assert system.shutdown_node(node_id) is True
        for doc_id in held:
            assert manager.live_holders(doc_id), doc_id

    def test_dead_node_cannot_shut_down(self):
        system = make_content_system()
        victim = system.alive_peers()[0].node_id
        system.crash_node(victim)
        assert system.shutdown_node(victim) is False
        assert system.shutdown_node(999_999) is False  # unknown node

    def test_shutdown_aborts_when_the_last_copy_cannot_move(self):
        system = make_content_system()
        # Leave exactly one node alive; its documents have nowhere to go.
        peers = system.alive_peers()
        keeper = next(p for p in peers if p.docs)
        for peer in peers:
            if peer.node_id != keeper.node_id:
                system.crash_node(peer.node_id)
        held = dict(keeper.docs)
        assert system.shutdown_node(keeper.node_id) is False
        # The node stayed up and kept every document: leaving would have
        # destroyed the community's last copies.
        assert system.network.is_alive(keeper.node_id)
        assert keeper.docs == held

    def test_shutdown_is_deterministic(self):
        outcomes = []
        for _ in range(2):
            system = make_content_system(seed=23)
            doc_id, keeper = make_sole_holder(system)
            ok = system.shutdown_node(keeper)
            outcomes.append(
                (ok, doc_id, system.content.live_holders(doc_id))
            )
        assert outcomes[0] == outcomes[1]


class TestCrashLeaveAsymmetry:
    def _suspecting_pair(self, system):
        """(observer, target_id): observer is a cluster neighbour that
        has accumulated enough misses to suspect the target."""
        for peer in system.alive_peers():
            for neighbors in peer.cluster_neighbors.values():
                for target in sorted(neighbors):
                    if system.network.is_alive(target):
                        threshold = (
                            peer.detector.config.suspicion_threshold
                        )
                        for _ in range(threshold):
                            peer.detector.note_missed(target)
                        assert peer.detector.is_suspect(target)
                        return peer, target
        raise AssertionError("no neighbouring pair found")

    def test_leave_clears_lingering_suspicion(self):
        # Regression: a node that left gracefully used to linger in its
        # neighbours' suspect maps forever (recover_node cleared
        # crash-era state, but nothing cleared leave-era state).
        _, system = build_live_system(scale=0.02, seed=31)
        observer, target = self._suspecting_pair(system)
        system.leave_node(target)
        system.sim.run()
        assert not observer.detector.is_suspect(target)
        assert target not in observer.detector._misses

    def test_crash_keeps_suspicion(self):
        # The asymmetry is intentional in the other direction: a crash
        # sends no goodbye, so the suspicion evidence must survive.
        _, system = build_live_system(scale=0.02, seed=31)
        observer, target = self._suspecting_pair(system)
        system.crash_node(target)
        system.sim.run()
        assert observer.detector.is_suspect(target)

    def test_graceful_shutdown_clears_suspicion_too(self):
        system = make_content_system()
        observer, target = self._suspecting_pair(system)
        assert system.shutdown_node(target) is True
        assert not observer.detector.is_suspect(target)


class TestCrashDuringHandoff:
    """Regression: a leaver that dies mid-shutdown must abort the leave.

    Before the drain guards, a crash landing inside the handoff loop let
    the shutdown run to completion and count partially shipped documents
    as placed copies — destroying last copies and breaking
    no-sole-holder-loss.  Now every handoff round (and the final drain)
    re-checks liveness and aborts: the crash path owns the node.
    """

    def test_crash_during_initial_drain_aborts_the_shutdown(self):
        system = make_content_system()
        doc_id, keeper = make_sole_holder(system)
        # The crash fires inside shutdown_node's own drain, before the
        # first handoff round inspects the world.
        system.sim.schedule(0.0, lambda: system.crash_node(keeper))
        assert system.shutdown_node(keeper) is False
        # The crash path owns the node: its disk keeps the document and
        # a recovery brings the copy (and its advertisement) back.
        assert doc_id in system._peers[keeper].docs
        system.recover_node(keeper)
        assert keeper in system.content.live_holders(doc_id)

    def test_crash_mid_handoff_does_not_count_partial_transfers(self):
        system = make_content_system()
        doc_id, keeper = make_sole_holder(system)
        target = system._handoff_target(doc_id, keeper)
        assert target is not None
        original = target.pull_documents

        def crash_after_pull(src, category_id, doc_ids):
            original(src, category_id, doc_ids)
            # The leaver dies the instant the pull goes out: the
            # transfer can never complete, so nothing has been placed.
            system.crash_node(keeper)

        target.pull_documents = crash_after_pull
        assert system.shutdown_node(keeper) is False
        system.sim.run()
        # The half-shipped manifest must not have registered the target
        # as a live holder of a copy it never finished pulling.
        assert doc_id not in target.docs
        assert target.node_id not in system.content.live_holders(doc_id)
        # And the crashed disk still has the last copy for recovery.
        assert doc_id in system._peers[keeper].docs
