"""Tests for local-search refinement (future-work item i)."""

import numpy as np
import pytest

from repro.core.fairness import jain_fairness
from repro.core.maxfair import Assignment, achieved_fairness, maxfair, maxfair_from_stats
from repro.core.partition import ICLBInstance, best_assignment_exhaustive
from repro.core.popularity import CategoryStats
from repro.core.refine import refine_assignment


def _stats(popularity, weights=None):
    popularity = np.asarray(popularity, dtype=float)
    if weights is None:
        weights = np.ones_like(popularity)
    weights = np.asarray(weights, dtype=float)
    return CategoryStats(
        popularity=popularity,
        contributor_count=weights,
        capacity_units=weights,
        storage_weight=weights,
    )


class TestRefineBasics:
    def test_never_decreases_fairness(self):
        rng = np.random.default_rng(5)
        for _ in range(10):
            stats = _stats(rng.random(15))
            assignment = Assignment(
                category_to_cluster=rng.integers(0, 4, size=15), n_clusters=4
            )
            result = refine_assignment(stats, assignment)
            assert result.final_fairness >= result.initial_fairness - 1e-12

    def test_input_not_mutated(self):
        stats = _stats([0.5, 0.5])
        assignment = Assignment(category_to_cluster=np.array([0, 0]), n_clusters=2)
        refine_assignment(stats, assignment)
        assert assignment.category_to_cluster.tolist() == [0, 0]

    def test_fixes_trivial_imbalance(self):
        stats = _stats([0.5, 0.5])
        assignment = Assignment(category_to_cluster=np.array([0, 0]), n_clusters=2)
        result = refine_assignment(stats, assignment)
        assert result.final_fairness == pytest.approx(1.0)
        assert result.moves_applied == 1

    def test_swap_escapes_move_local_optimum(self):
        # Clusters {0.9, 0.8} and {0.6, 0.7} are a local optimum for
        # single moves under equal weights (any move worsens), but the
        # swap 0.8 <-> 0.7 equalizes (1.6 / 1.3 -> 1.5 / 1.4 ... with
        # weights 1 each normalized popularity is sum/2 per cluster).
        stats = _stats([0.9, 0.8, 0.6, 0.7])
        assignment = Assignment(
            category_to_cluster=np.array([0, 0, 1, 1]), n_clusters=2
        )
        no_swaps = refine_assignment(stats, assignment, enable_swaps=False)
        with_swaps = refine_assignment(stats, assignment, enable_swaps=True)
        assert with_swaps.final_fairness >= no_swaps.final_fairness
        assert with_swaps.final_fairness == pytest.approx(1.0)
        assert with_swaps.swaps_applied >= 1

    def test_move_counters_bumped(self):
        stats = _stats([0.5, 0.5])
        assignment = Assignment(category_to_cluster=np.array([0, 0]), n_clusters=2)
        result = refine_assignment(stats, assignment)
        assert result.assignment.move_counters.sum() >= 1

    def test_requires_complete_assignment(self):
        stats = _stats([0.5])
        assignment = Assignment(category_to_cluster=np.array([-1]), n_clusters=2)
        with pytest.raises(ValueError):
            refine_assignment(stats, assignment)

    def test_round_budget_respected(self):
        rng = np.random.default_rng(6)
        stats = _stats(rng.random(20))
        assignment = Assignment(
            category_to_cluster=np.zeros(20, dtype=int), n_clusters=5
        )
        result = refine_assignment(stats, assignment, max_rounds=3)
        assert result.moves_applied + result.swaps_applied <= 3


class TestRefineQuality:
    def test_closes_gap_to_oracle(self):
        """Greedy + refinement should land within a hair of the exhaustive
        optimum on tiny instances (where plain greedy often leaves a gap —
        see test_partition.py)."""
        rng = np.random.default_rng(17)
        for _ in range(10):
            popularity = rng.integers(1, 10, size=6).astype(float)
            instance = ICLBInstance(
                category_popularity=tuple(popularity),
                category_nodes=tuple([1] * 6),
                k=3,
            )
            _, optimal = best_assignment_exhaustive(instance)
            stats = _stats(popularity)
            greedy = maxfair_from_stats(stats, n_clusters=3)
            refined = refine_assignment(stats, greedy)
            achieved = jain_fairness(
                instance.normalized_popularities(
                    tuple(int(c) for c in refined.assignment.category_to_cluster)
                )
            )
            assert achieved >= optimal - 0.01

    def test_improves_maxfair_on_real_instance(self, small_instance, small_stats):
        greedy = maxfair(small_instance, stats=small_stats)
        before = achieved_fairness(small_instance, greedy, stats=small_stats)
        result = refine_assignment(small_stats, greedy)
        after = achieved_fairness(
            small_instance, result.assignment, stats=small_stats
        )
        assert after >= before - 1e-12
        assert result.final_fairness == pytest.approx(after, abs=1e-9)
