"""Anti-entropy healing: re-replicating documents below the holder floor."""

from tests.test_content_fetch import (
    doc_with_holders,
    make_content_system,
    pick_requester,
)


def heal_until_dry(system, max_rounds=20):
    reports = []
    for _ in range(max_rounds):
        report = system.run_healing_round()
        reports.append(report)
        if report is None or not report["fetches"]:
            break
    return reports


class TestHealingRound:
    def test_disabled_content_plane_returns_none(self):
        from tests.helpers import build_live_system

        _, system = build_live_system(scale=0.02, seed=31)
        assert system.content is None
        assert system.run_healing_round() is None

    def test_quiescent_world_needs_no_healing(self):
        system = make_content_system(replication_floor=2)
        report = system.run_healing_round()
        assert report["fetches"] == 0
        assert report["below_floor"] == 0
        assert report["scanned"] == len(system.content.manifests)

    def test_crash_below_floor_triggers_re_replication(self):
        system = make_content_system(replication_floor=2)
        manager = system.content
        doc_id, holders = doc_with_holders(system, min_holders=2)
        for holder in holders[1:]:
            system.crash_node(holder)
        assert len(manager.live_holders(doc_id)) == 1
        report = system.run_healing_round()
        assert report["below_floor"] >= 1
        assert report["fetches"] >= 1
        heal_until_dry(system)
        assert len(manager.live_holders(doc_id)) >= 2
        # Heal fetches are labelled in the ledger.
        purposes = {r.purpose for r in manager.fetch_ledger()}
        assert "heal" in purposes

    def test_every_document_restored_to_the_floor(self):
        system = make_content_system(replication_floor=2)
        manager = system.content
        victims = [p.node_id for p in system.alive_peers()][:4]
        for node_id in victims:
            system.crash_node(node_id)
        heal_until_dry(system)
        alive = len(system.alive_peers())
        for doc_id in sorted(manager.manifests):
            holders = manager.live_holders(doc_id)
            if not holders:
                continue  # unrepairable: every copy crashed
            assert len(holders) >= min(2, alive), doc_id

    def test_lost_documents_are_reported_unrepairable(self):
        system = make_content_system(replication_floor=2)
        manager = system.content
        doc_id, holders = doc_with_holders(system)
        for holder in holders:
            system.crash_node(holder)
        assert manager.live_holders(doc_id) == []
        report = system.run_healing_round()
        assert report["unrepairable"] >= 1
        # No fetch was wasted on a document with zero live sources.
        assert all(
            r.doc_id != doc_id or r.purpose != "heal"
            for r in manager.fetch_ledger()
        )

    def test_heal_fetch_limit_bounds_one_round(self):
        system = make_content_system(replication_floor=3, heal_fetch_limit=2)
        report = system.run_healing_round()
        assert report["fetches"] <= 2

    def test_healing_is_deterministic(self):
        snapshots = []
        for _ in range(2):
            system = make_content_system(seed=13, replication_floor=2)
            victims = [p.node_id for p in system.alive_peers()][:3]
            for node_id in victims:
                system.crash_node(node_id)
            reports = heal_until_dry(system)
            ledger = [
                (r.doc_id, r.requester_id, r.completed_at, r.failovers)
                for r in system.content.fetch_ledger()
            ]
            snapshots.append((reports, ledger))
        assert snapshots[0] == snapshots[1]


class TestHealExperiment:
    def test_registry_and_formatting(self):
        from repro.experiments import EXPERIMENTS, heal

        assert EXPERIMENTS["HEAL"] is heal
        assert callable(heal.run)
        assert callable(heal.format_result)

    def test_measure_shows_healing_advantage(self):
        # One churn setting at reduced scale: the healing-on arm must
        # sustain fetch success where the healing-off arm degrades.
        from repro.experiments import heal

        result = heal.run(scale=0.25, churns=(0.20,))
        off = result.row(0.20, False)
        on = result.row(0.20, True)
        assert on.success_rate >= off.success_rate
        assert on.heal_fetches > 0
        assert off.heal_fetches == 0
        text = heal.format_result(result)
        assert "churn" in text
