"""Spec-layer tests: validation, serialization, the standard matrix."""

import json

import pytest

from repro.scenario import (
    DiurnalSpec,
    DriftSpec,
    FreeRiderSpec,
    MisbehaviorSpec,
    RegionalPartitionSpec,
    ScenarioSpec,
    SkewFlipSpec,
    standard_matrix,
)


def full_spec() -> ScenarioSpec:
    """One spec exercising every optional block."""
    return ScenarioSpec(
        name="everything",
        seed=13,
        duration=12.0,
        base_rate=40.0,
        m=2,
        n_regions=3,
        window=0.5,
        diurnal=DiurnalSpec(
            period=6.0, amplitude=0.7, phase=0.1,
            regional_offsets=(0.0, 1.0 / 3.0, 2.0 / 3.0),
        ),
        drift=DriftSpec(ranks_per_unit=2.0),
        flips=(SkewFlipSpec(at=6.0, mass=0.25, n_hot=3),),
        free_riders=FreeRiderSpec(fraction=0.2),
        misbehavior=MisbehaviorSpec(at=4.0, n_bogus=1, n_stale_gossip=1),
        partitions=(RegionalPartitionSpec(at=3.0, duration=2.0, region=1),),
    )


class TestValidation:
    def test_empty_name_rejected(self):
        with pytest.raises(ValueError, match="name"):
            ScenarioSpec(name="")

    def test_nonpositive_duration_rejected(self):
        with pytest.raises(ValueError, match="duration"):
            ScenarioSpec(name="x", duration=0.0)

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError, match="base_rate"):
            ScenarioSpec(name="x", base_rate=-1.0)

    def test_nonpositive_window_rejected(self):
        with pytest.raises(ValueError, match="window"):
            ScenarioSpec(name="x", window=0.0)

    def test_diurnal_amplitude_capped_at_one(self):
        # amplitude <= 1 is what makes non-negative rates hold by
        # construction rather than by clamping.
        with pytest.raises(ValueError, match="amplitude"):
            DiurnalSpec(amplitude=1.5)
        with pytest.raises(ValueError, match="amplitude"):
            DiurnalSpec(amplitude=-0.1)

    def test_diurnal_period_positive(self):
        with pytest.raises(ValueError, match="period"):
            DiurnalSpec(period=0.0)

    def test_drift_nonnegative(self):
        with pytest.raises(ValueError, match="ranks_per_unit"):
            DriftSpec(ranks_per_unit=-1.0)

    def test_flip_mass_open_interval(self):
        with pytest.raises(ValueError, match="mass"):
            SkewFlipSpec(at=1.0, mass=0.0)
        with pytest.raises(ValueError, match="mass"):
            SkewFlipSpec(at=1.0, mass=1.0)

    def test_free_rider_fraction_below_one(self):
        with pytest.raises(ValueError, match="fraction"):
            FreeRiderSpec(fraction=1.0)

    def test_partition_duration_positive(self):
        with pytest.raises(ValueError, match="duration"):
            RegionalPartitionSpec(at=1.0, duration=0.0)

    def test_misbehavior_counts_nonnegative(self):
        with pytest.raises(ValueError, match="non-negative"):
            MisbehaviorSpec(n_bogus=-1)


class TestStationary:
    def test_bare_spec_is_stationary(self):
        assert ScenarioSpec(name="s").is_stationary

    def test_any_modulator_breaks_stationarity(self):
        assert not ScenarioSpec(name="s", diurnal=DiurnalSpec()).is_stationary
        assert not ScenarioSpec(name="s", drift=DriftSpec()).is_stationary
        assert not ScenarioSpec(
            name="s", flips=(SkewFlipSpec(at=1.0),)
        ).is_stationary

    def test_environment_blocks_keep_stationarity(self):
        # Free riders / misbehavior / partitions change the world and the
        # controls, never the query stream itself.
        spec = ScenarioSpec(
            name="s",
            free_riders=FreeRiderSpec(),
            misbehavior=MisbehaviorSpec(n_bogus=1),
            partitions=(RegionalPartitionSpec(at=1.0, duration=1.0),),
        )
        assert spec.is_stationary

    def test_n_queries_rounds_rate_times_duration(self):
        assert ScenarioSpec(
            name="s", base_rate=50.0, duration=10.0
        ).n_queries == 500


class TestRoundTrip:
    def test_json_round_trip_full(self):
        spec = full_spec()
        assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_json_round_trip_minimal(self):
        spec = ScenarioSpec(name="bare")
        assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_to_json_is_canonical(self):
        # sort_keys means equal specs always serialize to equal text.
        spec = full_spec()
        assert spec.to_json() == ScenarioSpec.from_json(spec.to_json()).to_json()

    def test_to_dict_is_json_safe(self):
        json.dumps(full_spec().to_dict())


class TestStandardMatrix:
    def test_shape_and_names(self):
        matrix = standard_matrix(seed=7)
        assert [spec.name for spec in matrix] == [
            "stationary",
            "diurnal-regional",
            "drift-flip",
            "freeride-misbehave",
        ]

    def test_baseline_is_stationary_others_are_not(self):
        matrix = standard_matrix()
        assert matrix[0].is_stationary
        assert not matrix[1].is_stationary
        assert not matrix[2].is_stationary
        # the free-rider spec modulates the environment, not the rate.
        assert matrix[3].is_stationary

    def test_seeds_derive_from_root(self):
        matrix = standard_matrix(seed=100)
        assert [spec.seed for spec in matrix] == [100, 101, 102, 103]

    def test_every_spec_round_trips(self):
        for spec in standard_matrix():
            assert ScenarioSpec.from_json(spec.to_json()) == spec
