"""Tests for repro.sim.rng — reproducible stream management."""

from repro.sim.rng import RngRegistry, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "workload") == derive_seed(42, "workload")

    def test_name_sensitivity(self):
        assert derive_seed(42, "workload") != derive_seed(42, "protocol")

    def test_seed_sensitivity(self):
        assert derive_seed(41, "workload") != derive_seed(42, "workload")

    def test_64_bit_range(self):
        seed = derive_seed(0, "x")
        assert 0 <= seed < 2**64


class TestRngRegistry:
    def test_same_name_same_generator(self):
        rngs = RngRegistry(1)
        assert rngs.stream("a") is rngs.stream("a")

    def test_streams_reproducible_across_registries(self):
        a = RngRegistry(7).stream("workload").random(5)
        b = RngRegistry(7).stream("workload").random(5)
        assert a.tolist() == b.tolist()

    def test_streams_independent(self):
        rngs = RngRegistry(7)
        # Consuming one stream must not perturb another.
        first = RngRegistry(7).stream("b").random(3)
        rngs.stream("a").random(1000)
        second = rngs.stream("b").random(3)
        assert first.tolist() == second.tolist()

    def test_fork_differs_from_parent(self):
        parent = RngRegistry(7)
        child = parent.fork("trial-1")
        a = parent.stream("x").random(3)
        b = child.stream("x").random(3)
        assert a.tolist() != b.tolist()

    def test_fork_deterministic(self):
        a = RngRegistry(7).fork("t").stream("x").random(3)
        b = RngRegistry(7).fork("t").stream("x").random(3)
        assert a.tolist() == b.tolist()

    def test_names(self):
        rngs = RngRegistry(0)
        rngs.stream("b")
        rngs.stream("a")
        assert rngs.names() == ["a", "b"]
