"""Durable crash recovery: WAL/snapshot codec, journal replay, amnesia
crashes, epoch fencing, and partition-heal reconciliation.

The layering under test (see ``docs/architecture.md`` §Durability):

* :mod:`repro.durability.wal` — crc-framed records; a torn tail must
  never poison the valid prefix.
* :mod:`repro.durability.store` — the in-memory sim store and the
  fsync'd file store hold the *same bytes*, so replay semantics proved
  here hold for ``--state-dir`` deployments too.
* :mod:`repro.durability.journal` — write-ahead records + compacting
  snapshots; ``materialize(snapshot, records)`` of what was persisted
  must be byte-identical (under canonical encoding) to the live peer's
  durable state at any quiescent point.
* overlay integration — ``power_loss`` wipes volatile memory,
  ``recover_node`` replays the journal, fenced ``ReassignNotice``
  epochs reject stale owners, and a reconciliation round converges a
  split-brain category back to the authoritative assignment.
"""

import dataclasses

import pytest

from repro.chaos.harness import ChaosRunner
from repro.chaos.scenario import ScenarioConfig, Schedule
from repro.durability import (
    DurabilityConfig,
    FileStore,
    MemoryStore,
    PeerJournal,
    durable_state,
    empty_state,
    encode_record,
    encode_snapshot,
    materialize,
    replay_wal,
)
from repro.overlay.messages import ReassignNotice
from repro.overlay.metadata import DCRTEntry


def make_recovery_system(seed=11, **overrides):
    """The chaos harness's world with journals armed (durability on)."""
    config = ScenarioConfig(content=True, recovery=True, **overrides)
    return ChaosRunner(Schedule(seed=seed, entries=()), config).system


# ----------------------------------------------------------------------
# WAL codec
# ----------------------------------------------------------------------
class TestWalCodec:
    def test_records_roundtrip(self):
        records = [
            ("store", 7, 4096, [1, 2]),
            ("drop", 7),
            ("dcrt", 3, 1, 5),
            ("epoch", 3, 2),
        ]
        data = b"".join(encode_record(r) for r in records)
        assert replay_wal(data) == records

    def test_torn_tail_replays_longest_valid_prefix(self):
        store = MemoryStore()
        for record in (("store", 1, 10, []), ("store", 2, 10, []), ("drop", 1)):
            store.append(encode_record(record))
        _, wal = store.load()
        # Tear the last record anywhere mid-frame: the first two records
        # must replay; the torn third must be ignored, not crash replay.
        last_len = len(encode_record(("drop", 1)))
        for torn in range(1, last_len):
            store2 = MemoryStore()
            store2.append(wal)
            store2.tear_wal(len(wal) - torn)
            _, torn_wal = store2.load()
            assert replay_wal(torn_wal) == [
                ("store", 1, 10, []),
                ("store", 2, 10, []),
            ]

    def test_corrupt_frame_stops_replay_at_the_damage(self):
        good = encode_record(("store", 1, 10, []))
        bad = bytearray(encode_record(("store", 2, 10, [])))
        bad[10] ^= 0xFF  # flip a body byte: crc mismatch
        after = encode_record(("store", 3, 10, []))
        # Everything after the damaged frame is unreachable — offsets
        # cannot be trusted past a bad crc.
        assert replay_wal(good + bytes(bad) + after) == [("store", 1, 10, [])]

    def test_unknown_record_kinds_are_skipped(self):
        state = materialize(
            None,
            [
                ("store", 5, 64, [0]),
                ("hologram", 1, 2, 3),  # a future record kind
                ("epoch", 0, 4),
            ],
        )
        assert [doc[0] for doc in state["docs"]] == [5]
        assert state["epochs"] == [[0, 4]]

    def test_materialize_of_nothing_is_the_empty_state(self):
        assert materialize(None, []) == empty_state()


# ----------------------------------------------------------------------
# stores
# ----------------------------------------------------------------------
class TestFileStore:
    def test_roundtrips_like_memory_store(self, tmp_path):
        mem, disk = MemoryStore(), FileStore(tmp_path / "node-0")
        for store in (mem, disk):
            store.append(encode_record(("store", 1, 10, [])))
            store.write_snapshot(encode_snapshot(empty_state()))
            store.append(encode_record(("store", 2, 10, [])))
        assert mem.load() == disk.load()
        disk.close()

    def test_snapshot_truncates_wal(self, tmp_path):
        store = FileStore(tmp_path / "node-1")
        store.append(encode_record(("store", 1, 10, [])))
        store.write_snapshot(encode_snapshot(empty_state()))
        snapshot, wal = store.load()
        assert snapshot is not None
        assert wal == b""
        store.close()

    def test_torn_file_tail_replays_longest_valid_prefix(self, tmp_path):
        store = FileStore(tmp_path / "node-2")
        store.append(encode_record(("store", 1, 10, [])))
        store.append(encode_record(("store", 2, 10, [])))
        store.close()
        raw = store.wal_path.read_bytes()
        store.wal_path.write_bytes(raw[:-3])  # torn mid-final-record
        _, wal = store.load()
        assert replay_wal(wal) == [("store", 1, 10, [])]


# ----------------------------------------------------------------------
# journal
# ----------------------------------------------------------------------
class TestJournal:
    def test_auto_compaction_consults_snapshot_fn(self):
        journal = PeerJournal(
            MemoryStore(), DurabilityConfig(enabled=True, snapshot_every=4)
        )
        state = empty_state()
        state["docs"] = [[9, 16, [1]]]
        journal.snapshot_fn = lambda: state
        for i in range(10):
            journal.record("dcrt", i, 0, 1)
        assert journal.snapshots_written >= 2
        assert journal.load()["docs"] == [[9, 16, [1]]]

    def test_durable_doc_ids_track_store_and_drop(self):
        journal = PeerJournal(MemoryStore(), DurabilityConfig(enabled=True))
        journal.record("store", 1, 10, [0])
        journal.record("store", 2, 10, [0])
        journal.record("drop", 1)
        assert journal.durable_doc_ids() == frozenset({2})


# ----------------------------------------------------------------------
# overlay integration
# ----------------------------------------------------------------------
class TestPowerLossRecovery:
    def _victim(self, system):
        return max(
            system.alive_peers(), key=lambda peer: len(peer.docs)
        ).node_id

    def test_replay_is_byte_identical_to_live_state(self):
        system = make_recovery_system()
        for peer in system.alive_peers()[:8]:
            journal = system.journal(peer.node_id)
            assert journal is not None
            persisted = encode_snapshot(journal.load())
            live = encode_snapshot(durable_state(peer, journal.flags))
            assert persisted == live

    def test_recover_restores_docs_memberships_and_dcrt(self):
        system = make_recovery_system()
        victim = self._victim(system)
        peer = system.peer(victim)
        docs = dict(peer.docs)
        memberships = set(peer.memberships)
        dcrt = dict(peer.dcrt_items())
        system.power_loss(victim)
        assert peer.lost_memory
        assert not peer.docs and not peer.memberships
        system.sim.run()
        system.recover_node(victim)
        assert not peer.lost_memory
        assert dict(peer.docs) == docs
        assert set(peer.memberships) == memberships
        assert dict(peer.dcrt_items()) == dcrt

    def test_recovered_holdings_are_readvertised(self):
        system = make_recovery_system()
        victim = self._victim(system)
        held = sorted(system.peer(victim).docs)
        system.power_loss(victim)
        system.sim.run()
        # The wipe is honest: the holder directory forgets the victim...
        view = system.doc_holders_view()
        assert all(victim not in view.get(doc_id, ()) for doc_id in held)
        system.recover_node(victim)
        # ...and recovery re-advertises every acknowledged document.
        view = system.doc_holders_view()
        assert all(victim in view.get(doc_id, ()) for doc_id in held)

    def test_amnesia_without_journal_is_permanent(self):
        config = ScenarioConfig(content=True)  # durability off: no journals
        system = ChaosRunner(Schedule(seed=11, entries=()), config).system
        victim = self._victim(system)
        peer = system.peer(victim)
        assert peer.docs
        system.power_loss(victim)
        system.sim.run()
        system.recover_node(victim)
        assert not peer.docs  # nothing to replay: the node rejoins empty

    def test_power_loss_keeps_partial_and_corrupt_chunks(self):
        system = make_recovery_system()
        victim = self._victim(system)
        peer = system.peer(victim)
        peer.content_state.corrupt[(1234, 0)] = True
        peer.content_state.partial.setdefault(1234, set()).add(1)
        system.power_loss(victim)
        # Disk contents survive an amnesia crash: bad bits stay bad.
        assert (1234, 0) in peer.content_state.corrupt
        assert 1 in peer.content_state.partial[1234]


class TestEpochFencing:
    def _two_peers(self, system):
        a, b = system.alive_peers()[:2]
        return a, b

    def _notice(self, category_id, target, counter, epoch):
        return ReassignNotice(
            category_id=category_id,
            source_cluster=0,
            target_cluster=target,
            move_counter=counter,
            epoch=epoch,
        )

    def test_stale_epoch_notice_is_rejected(self):
        system = make_recovery_system()
        sender, receiver = self._two_peers(system)
        category_id = 0
        entry = receiver.dcrt.entry(category_id)
        receiver.ownership_epochs[category_id] = 5
        # Stale owner: bumped counter (it kept rebalancing while
        # partitioned) but an epoch at or below the receiver's.
        for stale_epoch in (5, 4, 0):
            sender._send(
                receiver.node_id,
                "reassign_notice",
                self._notice(
                    category_id,
                    (entry.cluster_id + 1) % system.assignment.n_clusters,
                    entry.move_counter + 10,
                    stale_epoch,
                ),
            )
            system.sim.run()
            after = receiver.dcrt.entry(category_id)
            assert after.cluster_id == entry.cluster_id
            assert after.move_counter == entry.move_counter
            assert receiver.ownership_epochs[category_id] == 5

    def test_higher_epoch_notice_is_adopted_and_journaled(self):
        system = make_recovery_system()
        sender, receiver = self._two_peers(system)
        category_id = 0
        entry = receiver.dcrt.entry(category_id)
        receiver.ownership_epochs[category_id] = 5
        target = (entry.cluster_id + 1) % system.assignment.n_clusters
        sender._send(
            receiver.node_id,
            "reassign_notice",
            self._notice(category_id, target, entry.move_counter + 1, 6),
        )
        system.sim.run()
        assert receiver.dcrt.entry(category_id).cluster_id == target
        assert receiver.ownership_epochs[category_id] == 6
        state = system.journal(receiver.node_id).load()
        assert [category_id, 6] in state["epochs"]

    def test_legacy_unfenced_notices_still_merge(self):
        config = ScenarioConfig(content=True)  # durability off
        system = ChaosRunner(Schedule(seed=11, entries=()), config).system
        sender, receiver = self._two_peers(system)
        category_id = 0
        entry = receiver.dcrt.entry(category_id)
        target = (entry.cluster_id + 1) % system.assignment.n_clusters
        sender._send(
            receiver.node_id,
            "reassign_notice",
            self._notice(category_id, target, entry.move_counter + 1, 0),
        )
        system.sim.run()
        assert receiver.dcrt.entry(category_id).cluster_id == target


class TestReconciliation:
    def test_divergent_category_converges_to_assignment(self):
        system = make_recovery_system()
        category_id = 0
        target = int(system.assignment.category_to_cluster[category_id])
        stale = (target + 1) % system.assignment.n_clusters
        counter = int(system.assignment.move_counters[category_id]) + 1
        minority = system.alive_peers()[:5]
        for peer in minority:
            assert peer.dcrt.merge(category_id, DCRTEntry(stale, counter))
        outcome = system.run_reconciliation_round()
        assert outcome is not None and outcome["divergent"] >= 1
        assert category_id in outcome["categories"]
        final = int(system.assignment.category_to_cluster[category_id])
        for peer in system.alive_peers():
            assert peer.dcrt.entry(category_id).cluster_id == final
        # The fenced claim landed in the epoch ledger exactly once.
        claims = [c for c in system.epoch_claims() if c[0] == category_id]
        assert len(claims) == 1 and claims[0][2] == final

    def test_reconciliation_is_a_noop_when_durability_is_off(self):
        config = ScenarioConfig(content=True)
        system = ChaosRunner(Schedule(seed=11, entries=()), config).system
        assert system.run_reconciliation_round() is None

    def test_quiet_world_has_nothing_to_reconcile(self):
        system = make_recovery_system()
        outcome = system.run_reconciliation_round()
        assert outcome == {"divergent": 0, "categories": []}


class TestDurabilityConfig:
    def test_defaults_keep_durability_off(self):
        config = ScenarioConfig(content=True)
        system = ChaosRunner(Schedule(seed=11, entries=()), config).system
        assert not system.durability_enabled
        assert system.journal(system.alive_peers()[0].node_id) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            DurabilityConfig(enabled=True, snapshot_every=0)

    def test_config_is_frozen(self):
        config = DurabilityConfig()
        with pytest.raises(dataclasses.FrozenInstanceError):
            config.enabled = True
