"""Tests for the central-index (hybrid) baseline."""

import numpy as np
import pytest

from repro.baselines.hybrid import HybridIndexNetwork


@pytest.fixture()
def network():
    net = HybridIndexNetwork(range(50))
    for doc_id in range(100):
        net.place_document(doc_id, [doc_id % 50])
    return net


class TestQueries:
    def test_found_in_two_hops(self, network):
        result = network.query(5, np.random.default_rng(0))
        assert result.found
        assert result.hops == 2
        assert result.responder == 5

    def test_missing_document(self, network):
        result = network.query(424242, np.random.default_rng(0))
        assert not result.found
        assert result.hops == 1  # the index was still consulted
        assert result.responder is None

    def test_directory_absorbs_every_query(self, network):
        rng = np.random.default_rng(1)
        network.run_queries(list(range(100)), rng)
        assert network.directory_load == 100

    def test_replica_load_balances(self):
        net = HybridIndexNetwork(range(10))
        net.place_document(1, [0, 1, 2, 3])
        rng = np.random.default_rng(2)
        results, loads = net.run_queries([1] * 400, rng)
        assert all(r.found for r in results)
        holder_loads = [loads[n] for n in range(4)]
        assert min(holder_loads) > 50  # roughly uniform over 4 replicas

    def test_directory_is_the_bottleneck(self, network):
        rng = np.random.default_rng(3)
        _, loads = network.run_queries(list(range(100)) * 3, rng)
        assert network.directory_load > max(loads.values())


class TestConstruction:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            HybridIndexNetwork([])

    def test_rejects_directory_collision(self):
        with pytest.raises(ValueError):
            HybridIndexNetwork([0, 1], directory_id=1)

    def test_duplicate_registration_idempotent(self):
        net = HybridIndexNetwork(range(3))
        net.place_document(1, [0])
        net.place_document(1, [0])
        rng = np.random.default_rng(4)
        results, loads = net.run_queries([1] * 10, rng)
        assert loads[0] == 10  # only one holder despite double registration
