"""Tests for the Chord DHT baseline."""

import math

import numpy as np
import pytest

from repro.baselines.chord import ChordNetwork
from repro.core.fairness import jain_fairness
from repro.model.zipf import zipf_sample


@pytest.fixture(scope="module")
def ring():
    network = ChordNetwork(range(200), bits=20)
    network.store_all(range(2000))
    return network


class TestRingGeometry:
    def test_all_nodes_placed(self, ring):
        assert len(ring.nodes) == 200

    def test_successor_wraps(self, ring):
        top = max(ring.nodes)
        successor = ring.successor(top + 1)
        assert successor == min(ring.nodes)

    def test_successor_of_node_id_is_itself(self, ring):
        node_id = next(iter(ring.nodes))
        assert ring.successor(node_id) == node_id

    def test_finger_tables_complete(self, ring):
        for node in ring.nodes.values():
            assert len(node.fingers) == ring.bits

    def test_fingers_are_successors_of_powers(self, ring):
        node_id, node = next(iter(ring.nodes.items()))
        for i, finger in enumerate(node.fingers):
            expected = ring.successor((node_id + (1 << i)) % ring.size)
            assert finger == expected

    def test_rejects_bad_bits(self):
        with pytest.raises(ValueError):
            ChordNetwork(range(5), bits=4)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ChordNetwork([])


class TestStorage:
    def test_every_doc_stored_once(self, ring):
        stored = [d for node in ring.nodes.values() for d in node.keys]
        assert sorted(stored) == list(range(2000))

    def test_store_is_deterministic(self):
        a = ChordNetwork(range(50), bits=20)
        b = ChordNetwork(range(50), bits=20)
        assert a.store(123) == b.store(123)


class TestLookup:
    def test_finds_correct_holder(self, ring):
        for doc_id in (0, 1, 999, 1999):
            holder, _hops = ring.lookup(0, doc_id)
            assert doc_id in ring.nodes[holder].keys or doc_id in {
                d for d in ring.nodes[holder].keys
            }

    def test_hops_logarithmic(self, ring):
        rng = np.random.default_rng(0)
        hops, _ = ring.run_queries(list(range(500)), rng)
        # O(log N): comfortably under 2 * log2(200) ~ 15.3.
        assert hops.mean() < 2 * math.log2(200)
        assert hops.max() <= 4 * ring.bits

    def test_lookup_from_any_start(self, ring):
        holders = set()
        for start in range(0, 200, 17):
            holder, _ = ring.lookup(start, 42)
            holders.add(holder)
        assert len(holders) == 1  # same key -> same holder from anywhere


class TestLoadBehaviour:
    def test_zipf_queries_unbalance_load(self):
        """The paper's criticism: hash placement ignores popularity, so a
        Zipf stream concentrates load on whoever holds the hot keys."""
        network = ChordNetwork(range(200), bits=20)
        network.store_all(range(2000))
        rng = np.random.default_rng(1)
        queries = zipf_sample(rng, 2000, 0.8, 10_000)
        _, loads = network.run_queries(queries, rng)
        zipf_fairness = jain_fairness(list(loads.values()))

        network_uniform = ChordNetwork(range(200), bits=20)
        network_uniform.store_all(range(2000))
        uniform_queries = rng.integers(0, 2000, size=10_000)
        _, uniform_loads = network_uniform.run_queries(uniform_queries, rng)
        uniform_fairness = jain_fairness(list(uniform_loads.values()))

        assert zipf_fairness < uniform_fairness
        assert zipf_fairness < 0.5  # badly unbalanced under Zipf
