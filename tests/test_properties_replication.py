"""Property-based tests on replica placement and the Chord ring."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.chord import ChordNetwork
from repro.core.maxfair import maxfair
from repro.core.popularity import cluster_members
from repro.core.replication import plan_replication
from repro.model.system import SystemConfig, build_system

tiny_worlds = st.tuples(
    st.integers(min_value=40, max_value=200),   # docs
    st.integers(min_value=10, max_value=40),    # nodes
    st.integers(min_value=2, max_value=8),      # categories
    st.integers(min_value=1, max_value=4),      # clusters
    st.integers(min_value=0, max_value=10_000), # seed
)


class TestReplicationProperties:
    @settings(max_examples=15, deadline=None)
    @given(tiny_worlds, st.integers(min_value=1, max_value=3))
    def test_every_document_gets_min_replicas(self, world, n_reps):
        n_docs, n_nodes, n_categories, n_clusters, seed = world
        instance = build_system(
            SystemConfig(
                n_docs=n_docs,
                n_nodes=n_nodes,
                n_categories=n_categories,
                n_clusters=n_clusters,
                seed=seed,
            )
        )
        assignment = maxfair(instance)
        plan = plan_replication(instance, assignment, n_reps=n_reps, hot_mass=0.35)
        members = cluster_members(instance, assignment.category_to_cluster)
        holders: dict[int, int] = {}
        for docs in plan.node_docs.values():
            for doc_id in docs:
                holders[doc_id] = holders.get(doc_id, 0) + 1
        for doc_id, doc in instance.documents.items():
            cluster = assignment.cluster_of(doc.categories[0])
            expected = min(n_reps, len(members[cluster]))
            assert holders.get(doc_id, 0) >= expected

    @settings(max_examples=10, deadline=None)
    @given(tiny_worlds)
    def test_byte_accounting_always_consistent(self, world):
        n_docs, n_nodes, n_categories, n_clusters, seed = world
        instance = build_system(
            SystemConfig(
                n_docs=n_docs,
                n_nodes=n_nodes,
                n_categories=n_categories,
                n_clusters=n_clusters,
                seed=seed,
            )
        )
        assignment = maxfair(instance)
        plan = plan_replication(instance, assignment, n_reps=2, hot_mass=0.2)
        sizes = instance.doc_sizes
        for node_id, docs in plan.node_docs.items():
            assert plan.node_bytes[node_id] == sum(sizes[d] for d in docs)


class TestChordProperties:
    @settings(max_examples=15, deadline=None)
    @given(
        st.integers(min_value=2, max_value=100),   # nodes
        st.integers(min_value=0, max_value=5000),  # doc id
        st.integers(min_value=0, max_value=99),    # start index
    )
    def test_lookup_always_reaches_the_stored_holder(self, n_nodes, doc_id, start):
        network = ChordNetwork(range(n_nodes), bits=20)
        stored_at = network.store(doc_id)
        holder, hops = network.lookup(start % n_nodes, doc_id)
        assert holder == stored_at
        assert doc_id in network.nodes[holder].keys
        assert 0 <= hops <= 4 * network.bits
