"""The examples must stay runnable — they are the library's front door."""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
ALL_EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def _load(path: Path):
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_examples_exist(self):
        names = {path.stem for path in ALL_EXAMPLES}
        assert {
            "quickstart",
            "music_sharing",
            "digital_library",
            "churn_adaptation",
            "pure_p2p_search",
        } <= names

    @pytest.mark.parametrize("path", ALL_EXAMPLES, ids=lambda p: p.stem)
    def test_example_imports_and_has_main(self, path):
        module = _load(path)
        assert callable(getattr(module, "main", None)), path.stem
        assert module.__doc__, f"{path.stem} needs a module docstring"

    def test_quickstart_runs(self, capsys):
        module = _load(EXAMPLES_DIR / "quickstart.py")
        module.main()
        out = capsys.readouterr().out
        assert "MaxFair achieved fairness" in out
        assert "maxfair" in out
