"""Byte-identity goldens for --metrics-deterministic snapshots.

The golden files under ``tests/golden/`` were captured at the commit
*before* the hot-path optimizations (zero-fault network fast path,
precomputed Zipf CDF sampling, vectorized system construction, cached
P2PSystem views) and the registry-based runner dispatch.  These tests
re-run the same invocations and require byte-identical output: the
optimizations must not change a single simulated event, RNG draw, or
accumulated float.

Regenerate (only for an *intentional* behavior change)::

    PYTHONPATH=src python -m repro.experiments F2 E2 --scale 0.02 --seed 7 \
        --metrics-out tests/golden/metrics_hotpath.jsonl --metrics-deterministic
    PYTHONPATH=src python -m repro.experiments FUZZ --fuzz-seeds 2 --steps 25 \
        --seed 3 --metrics-out tests/golden/metrics_chaos.jsonl \
        --metrics-deterministic
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

GOLDEN_DIR = Path(__file__).resolve().parent / "golden"

CASES = {
    # Covers build_system vectorization, Zipf workload sampling, the
    # fault-free network fast path, and the cached P2PSystem views
    # (E2 polls node_loads every round).
    "metrics_hotpath.jsonl": [
        "F2", "E2", "--scale", "0.02", "--seed", "7",
        "--metrics-deterministic",
    ],
    # Covers the faulty network paths (drops, partitions, churn) the
    # fast path must not short-circuit.
    "metrics_chaos.jsonl": [
        "FUZZ", "--fuzz-seeds", "2", "--steps", "25", "--seed", "3",
        "--metrics-deterministic",
    ],
}


@pytest.mark.parametrize("golden_name", sorted(CASES))
def test_deterministic_snapshot_matches_pre_optimization_golden(
    golden_name, tmp_path
):
    golden = GOLDEN_DIR / golden_name
    out = tmp_path / golden_name
    argv = CASES[golden_name] + ["--metrics-out", str(out)]
    # A fresh interpreter per case: the obs registry keeps (zeroed)
    # metrics registered by whatever ran earlier in the process, and the
    # snapshot lists every registered metric — so in-process runs would
    # depend on test ordering.  The goldens were captured this way too.
    repo_root = GOLDEN_DIR.parents[1]
    env = {
        key: value
        for key, value in os.environ.items()
        if not key.startswith("REPRO_")  # scale overrides would diverge
    }
    env["PYTHONPATH"] = str(repo_root / "src")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.experiments", *argv],
        capture_output=True,
        text=True,
        cwd=str(repo_root),
        env=env,
    )
    assert proc.returncode == 0, proc.stderr
    assert out.read_bytes() == golden.read_bytes(), (
        f"{golden_name}: metrics snapshot diverged from the "
        "pre-optimization golden — a hot-path change altered observable "
        "behavior"
    )
