"""Unit tests for the first-class requester-side cache.

:mod:`repro.overlay.cache` owns replacement-policy bookkeeping only;
these tests pin the policy semantics (lru byte-compatible with the
historical inline OrderedDict, lfu by retrieval count), the accounting
counters behind ``Peer.cache_stats``, the promote path the replication
manager uses to pin hot cached copies, and the holder-directory
consistency of evictions — including an eviction that races a query
already in flight toward the evicting node.
"""

import pytest

from repro.overlay.cache import CACHE_POLICIES, DocumentCache
from repro.overlay.peer import DocInfo, PeerConfig

from tests.helpers import MicroOverlay


class TestDocumentCacheUnit:
    def test_validation(self):
        with pytest.raises(ValueError):
            DocumentCache(-1)
        with pytest.raises(ValueError):
            DocumentCache(4, policy="mru")
        assert set(CACHE_POLICIES) == {"lru", "lfu"}

    def test_lru_evicts_least_recently_stored(self):
        cache = DocumentCache(2, policy="lru")
        assert cache.add(10) == ()
        assert cache.add(11) == ()
        assert cache.add(12) == (10,)  # oldest out
        assert cache.doc_ids() == [11, 12]

    def test_lru_touch_refreshes_recency(self):
        cache = DocumentCache(2, policy="lru")
        cache.add(10)
        cache.add(11)
        assert cache.touch(10) is True  # 10 becomes most recent
        assert cache.add(12) == (11,)

    def test_touch_unknown_doc_is_a_noop(self):
        cache = DocumentCache(2)
        assert cache.touch(99) is False
        assert len(cache) == 0

    def test_lfu_evicts_least_frequently_retrieved(self):
        cache = DocumentCache(2, policy="lfu")
        cache.add(10)
        cache.add(11)
        cache.touch(11)  # counts: 10 -> 1, 11 -> 2
        assert cache.add(12) == (10,)
        # 11 (count 2) survives; the fresh 12 (count 1) is now the
        # least-used and oldest on ties.
        assert cache.add(13) == (12,)
        assert 11 in cache

    def test_lfu_ties_break_oldest_first(self):
        cache = DocumentCache(2, policy="lfu")
        cache.add(10)
        cache.add(11)  # both count 1
        assert cache.add(12) == (10,)

    def test_discard_does_not_count_as_eviction(self):
        cache = DocumentCache(4)
        cache.add(10)
        assert cache.discard(10) is True
        assert cache.discard(10) is False
        assert cache.evictions == 0
        assert cache.stats()["size"] == 0

    def test_stats_accounting(self):
        cache = DocumentCache(1, policy="lru")
        cache.add(10)
        cache.add(11)  # evicts 10
        cache.touch(11)
        stats = cache.stats()
        assert stats == {
            "size": 1,
            "capacity": 1,
            "policy": "lru",
            "fills": 2,
            "evictions": 1,
            "served_hits": 0,
        }


def _serving_overlay(capacity=2, policy="lru"):
    """Client 0, caching relay 1, origin holder 2 — one cluster."""
    overlay = MicroOverlay(seed=0)
    config = PeerConfig(cache_capacity=capacity, cache_policy=policy)
    for node_id in (0, 1, 2):
        overlay.add_peer(node_id, config=config)
    overlay.wire_cluster(0, [0, 1, 2], edges=[(0, 1), (1, 2)],
                         category_map={7: 0})
    return overlay


def _retrieve(overlay, node_id, query_id, doc_id):
    """Make ``node_id`` retrieve ``doc_id`` (filling its cache)."""
    peer = overlay.peers[node_id]
    for other in (0, 1, 2):
        if other != node_id and other in peer.nrt.nodes_in(0):
            peer.nrt.remove(0, other)
    # Re-add whoever holds the doc so the query has somewhere to go.
    for holder in sorted(overlay.hooks.holders.get(doc_id, ())):
        if holder != node_id:
            peer.nrt.add(0, holder)
            break
    peer.start_query(query_id, 7, 1, target_doc_id=doc_id)
    overlay.run()


class TestPeerCachePolicies:
    def test_peer_config_validates_policy(self):
        with pytest.raises(ValueError):
            MicroOverlay().add_peer(
                0, config=PeerConfig(cache_capacity=2, cache_policy="fifo")
            )

    def test_lfu_policy_wires_through_peer(self):
        overlay = _serving_overlay(capacity=2, policy="lfu")
        for doc_id in (100, 101, 102):
            overlay.give_document(2, doc_id, [7])
        cacher = overlay.peers[1]
        _retrieve(overlay, 1, 1, 100)
        _retrieve(overlay, 1, 2, 100)  # 100 now count 2
        _retrieve(overlay, 1, 3, 101)
        _retrieve(overlay, 1, 4, 102)  # evicts 101 (lfu), not 100 (lru would)
        assert cacher.dt.has_document(100)
        assert not cacher.dt.has_document(101)
        assert cacher.dt.has_document(102)

    def test_cache_stats_public_view(self):
        overlay = _serving_overlay(capacity=2)
        overlay.give_document(2, 100, [7])
        _retrieve(overlay, 1, 1, 100)
        stats = overlay.peers[1].cache_stats()
        assert stats["fills"] == 1
        assert stats["size"] == 1
        # A peer without caching still answers with zeroed stats.
        bare = MicroOverlay().add_peer(9)
        assert bare.cache_stats()["capacity"] == 0

    def test_served_hits_count_cache_answers(self):
        overlay = _serving_overlay(capacity=2)
        overlay.give_document(2, 100, [7])
        _retrieve(overlay, 1, 1, 100)  # node 1 caches doc 100
        _retrieve(overlay, 0, 2, 100)  # node 0 asks; node 1 serves from cache
        assert overlay.peers[1].cache_stats()["served_hits"] >= 1

    def test_cache_promote_pins_the_copy(self):
        overlay = _serving_overlay(capacity=1)
        for doc_id in (100, 101):
            overlay.give_document(2, doc_id, [7])
        cacher = overlay.peers[1]
        _retrieve(overlay, 1, 1, 100)
        assert cacher.cache_owns(100)
        assert cacher.cache_promote(100) is True
        assert not cacher.cache_owns(100)
        assert cacher.dt.has_document(100)  # bytes stayed put
        # The pinned copy no longer occupies cache capacity: the next
        # fill needs no eviction and never touches doc 100.
        _retrieve(overlay, 1, 2, 101)
        assert cacher.dt.has_document(100)
        assert cacher.dt.has_document(101)
        assert cacher.cache_promote(100) is False  # already pinned

    def test_eviction_deregisters_holder(self):
        overlay = _serving_overlay(capacity=1)
        for doc_id in (100, 101):
            overlay.give_document(2, doc_id, [7])
        _retrieve(overlay, 1, 1, 100)
        assert 1 in overlay.hooks.holders[100]
        _retrieve(overlay, 1, 2, 101)  # evicts 100
        assert 1 not in overlay.hooks.holders.get(100, set())
        assert 1 in overlay.hooks.holders[101]

    def test_eviction_races_in_flight_query(self):
        """A query already flying toward a cached copy must still resolve
        after that copy is evicted: the evicting node no longer holds the
        document when the query lands, so it re-routes via the holder
        directory to the origin instead of failing or serving a ghost."""
        overlay = _serving_overlay(capacity=1)
        for doc_id in (100, 101):
            overlay.give_document(2, doc_id, [7])
        _retrieve(overlay, 1, 1, 100)  # node 1 caches doc 100

        client = overlay.peers[0]
        for other in (1, 2):
            client.nrt.remove(0, other)
        client.nrt.add(0, 1)  # client only ever targets the cacher
        # Node 1's retrieval of 101 needs two hops (request + response) to
        # evict 100; the client's one-hop query for 100 departs between
        # those hops, so it is in flight when the eviction lands and
        # arrives at node 1 just after.
        overlay.sim.schedule(
            0.0,
            lambda: overlay.peers[1].start_query(
                51, 7, 1, target_doc_id=101
            ),
        )
        overlay.sim.schedule(
            0.08, lambda: client.start_query(50, 7, 1, target_doc_id=100)
        )
        overlay.run()

        answers = [
            response
            for peer_id, response in overlay.hooks.responses
            if peer_id == 0 and response.query_id == 50
        ]
        assert len(answers) == 1
        assert answers[0].responder_id == 2  # served by the origin
        assert not [
            failure for failure in overlay.hooks.failures if failure[1] == 50
        ]
