"""Tests for repro.core.reassign — MaxFair_Reassign."""

import numpy as np
import pytest

from repro.core.maxfair import Assignment, maxfair
from repro.core.popularity import CategoryStats, build_category_stats
from repro.core.reassign import maxfair_reassign, maxfair_reassign_from_stats
from repro.model.workload import add_hot_documents, zipf_category_scenario


def _stats(popularity, weights=None):
    popularity = np.asarray(popularity, dtype=float)
    if weights is None:
        weights = np.ones_like(popularity)
    weights = np.asarray(weights, dtype=float)
    return CategoryStats(
        popularity=popularity,
        contributor_count=weights,
        capacity_units=weights,
        storage_weight=weights,
    )


class TestReassignBasics:
    def test_balanced_input_makes_no_moves(self):
        stats = _stats([0.5, 0.5])
        assignment = Assignment(
            category_to_cluster=np.array([0, 1]), n_clusters=2
        )
        result = maxfair_reassign_from_stats(stats, assignment)
        assert result.n_moves == 0
        assert result.converged
        assert result.fairness_trace == [pytest.approx(1.0)]

    def test_fixes_obvious_imbalance(self):
        # Everything piled in cluster 0; two equal categories should split.
        stats = _stats([0.5, 0.5])
        assignment = Assignment(
            category_to_cluster=np.array([0, 0]), n_clusters=2
        )
        result = maxfair_reassign_from_stats(stats, assignment)
        assert result.n_moves == 1
        assert result.converged
        assert result.final_fairness == pytest.approx(1.0)
        loads = [0.0, 0.0]
        for s, c in enumerate(result.assignment.category_to_cluster):
            loads[c] += stats.popularity[s]
        assert loads[0] == pytest.approx(loads[1])

    def test_does_not_mutate_input(self):
        stats = _stats([0.5, 0.5])
        assignment = Assignment(
            category_to_cluster=np.array([0, 0]), n_clusters=2
        )
        maxfair_reassign_from_stats(stats, assignment)
        assert assignment.category_to_cluster.tolist() == [0, 0]
        assert assignment.move_counters.tolist() == [0, 0]

    def test_move_counters_bumped(self):
        stats = _stats([0.5, 0.5])
        assignment = Assignment(
            category_to_cluster=np.array([0, 0]), n_clusters=2
        )
        result = maxfair_reassign_from_stats(stats, assignment)
        moved = result.moves[0].category_id
        assert result.assignment.move_counters[moved] == 1

    def test_respects_max_moves(self):
        rng = np.random.default_rng(3)
        stats = _stats(rng.random(20))
        assignment = Assignment(
            category_to_cluster=np.zeros(20, dtype=int), n_clusters=5
        )
        result = maxfair_reassign_from_stats(stats, assignment, max_moves=2)
        assert result.n_moves <= 2

    def test_monotone_fairness_trace(self):
        rng = np.random.default_rng(4)
        stats = _stats(rng.random(30))
        assignment = Assignment(
            category_to_cluster=rng.integers(0, 2, size=30), n_clusters=6
        )
        result = maxfair_reassign_from_stats(stats, assignment, max_moves=40)
        trace = result.fairness_trace
        assert all(b > a for a, b in zip(trace, trace[1:]))

    def test_requires_complete_assignment(self):
        stats = _stats([0.5, 0.5])
        assignment = Assignment(
            category_to_cluster=np.array([0, -1]), n_clusters=2
        )
        with pytest.raises(ValueError):
            maxfair_reassign_from_stats(stats, assignment)

    def test_rejects_bad_threshold(self):
        stats = _stats([0.5, 0.5])
        assignment = Assignment(
            category_to_cluster=np.array([0, 1]), n_clusters=2
        )
        with pytest.raises(ValueError):
            maxfair_reassign_from_stats(stats, assignment, fairness_threshold=0.0)
        with pytest.raises(ValueError):
            maxfair_reassign_from_stats(stats, assignment, max_moves=-1)

    def test_moves_record_source_and_target(self):
        stats = _stats([0.5, 0.5])
        assignment = Assignment(
            category_to_cluster=np.array([0, 0]), n_clusters=2
        )
        result = maxfair_reassign_from_stats(stats, assignment)
        move = result.moves[0]
        assert move.source_cluster == 0
        assert move.target_cluster == 1
        assert move.fairness_after == pytest.approx(1.0)


class TestReassignPaperScenario:
    """The Figure 5 shape at reduced scale."""

    def test_recovers_after_perturbation(self):
        instance = zipf_category_scenario(
            scale=0.1, seed=11, doc_theta=0.8, category_theta=0.8
        )
        stats = build_category_stats(instance)
        assignment = maxfair(instance, stats=stats)
        add_hot_documents(
            instance, seed=5, category_subset_fraction=0.1, new_doc_theta=0.8
        )
        new_stats = build_category_stats(instance)
        hybrid = stats.with_popularity(new_stats.popularity)
        result = maxfair_reassign_from_stats(
            hybrid, assignment, fairness_threshold=0.92, max_moves=30
        )
        assert result.converged
        assert result.final_fairness >= 0.92
        # "only a very small number of categories need be moved"
        assert result.n_moves <= 15

    def test_instance_level_entry_point(self):
        instance = zipf_category_scenario(scale=0.05, seed=13)
        assignment = maxfair(instance)
        result = maxfair_reassign(instance, assignment, fairness_threshold=0.9)
        assert result.final_fairness >= result.initial_fairness
