"""Tests for the network traffic report."""

import pytest

from repro.metrics.traffic import format_traffic, traffic_report
from repro.sim.engine import Simulator
from repro.sim.network import Network


def _stats_with_traffic():
    sim = Simulator()
    network = Network(sim)
    network.register(1, lambda msg: None)
    network.transmit(0, 1, "query", None, size_bytes=100)
    network.transmit(0, 1, "query", None, size_bytes=100)
    network.transmit(0, 1, "transfer_data", None, size_bytes=10_000)
    network.transmit(0, 99, "query", None, size_bytes=100)  # dropped
    sim.run()
    return network.stats


class TestTrafficReport:
    def test_counters(self):
        report = traffic_report(_stats_with_traffic())
        assert report.messages_sent == 4
        assert report.messages_delivered == 3
        assert report.messages_dropped == 1
        assert report.bytes_total == 10_300

    def test_data_control_split(self):
        report = traffic_report(_stats_with_traffic())
        assert report.bytes_data == 10_000
        assert report.bytes_control == 300
        assert report.data_fraction == pytest.approx(10_000 / 10_300)

    def test_by_kind_sorted(self):
        report = traffic_report(_stats_with_traffic())
        kinds = [kind for kind, _m, _b in report.by_kind]
        assert kinds == sorted(kinds)
        as_dict = {kind: (m, b) for kind, m, b in report.by_kind}
        assert as_dict["query"] == (3, 300)
        assert as_dict["transfer_data"] == (1, 10_000)

    def test_delivery_rate_empty(self):
        sim = Simulator()
        report = traffic_report(Network(sim).stats)
        assert report.delivery_rate == 1.0
        assert report.data_fraction == 0.0

    def test_format(self):
        text = format_traffic(traffic_report(_stats_with_traffic()))
        assert "transfer_data" in text
        assert "TOTAL" in text
