"""Lazy rebalancing helpers (Section 6.1.2).

MaxFair_Reassign only decides *which* categories move *where*; the actual
data movement follows the lazy protocol:

1. metadata in the source and destination clusters is updated first (with
   trace data pointing to the destination);
2. the category's document groups are transferred by *pairing* nodes of
   the source cluster with nodes of the destination cluster — one small
   transfer per pair instead of one huge transfer;
3. requests arriving at the source cluster are forwarded to the
   destination; 4. destinations missing content pull it on demand from
   their coupled source node; 5. piggybacked and epidemic metadata updates
   spread the new mapping.

Steps 3-5 are implemented in :mod:`repro.overlay.peer`; this module
provides the pairing and the closed-form cost model for the paper's
Section 6.1.3 example (experiment T3).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["pair_nodes", "RebalanceCostModel", "rebalance_cost"]


def pair_nodes(
    source_members: list[int], destination_members: list[int]
) -> list[tuple[int, int]]:
    """Couple source-cluster nodes with destination-cluster nodes.

    Every destination node gets exactly one source partner (so the whole
    destination cluster is populated); source nodes cycle when the source
    cluster is smaller.  Deterministic given member ordering.
    """
    if not source_members or not destination_members:
        return []
    pairs = []
    for index, destination in enumerate(destination_members):
        source = source_members[index % len(source_members)]
        pairs.append((source, destination))
    return pairs


@dataclass(frozen=True, slots=True)
class RebalanceCostModel:
    """Closed-form cost of moving categories between clusters.

    Mirrors the Section 6.1.3 example: moving ``n_categories`` categories
    of ``docs_per_category`` documents each, sized ``doc_size`` bytes with
    ``n_reps`` desired replicas, into a destination cluster of
    ``destination_size`` nodes.
    """

    n_categories: int
    docs_per_category: int
    doc_size: int
    n_reps: int
    destination_size: int
    total_nodes: int

    def __post_init__(self) -> None:
        if min(
            self.n_categories,
            self.docs_per_category,
            self.doc_size,
            self.n_reps,
            self.destination_size,
            self.total_nodes,
        ) <= 0:
            raise ValueError("all cost-model parameters must be positive")

    @property
    def bytes_per_category(self) -> int:
        """Total data moved per category (all replicas)."""
        return self.docs_per_category * self.doc_size * self.n_reps

    @property
    def transfers_per_category(self) -> int:
        """Pair transfers per category — one per destination node."""
        return self.destination_size

    @property
    def bytes_per_transfer(self) -> float:
        """Size of each pair transfer (the paper's 16 MB in the example)."""
        return self.bytes_per_category / self.destination_size

    @property
    def total_bytes(self) -> int:
        return self.bytes_per_category * self.n_categories

    @property
    def engaged_node_pairs(self) -> int:
        """Distinct (source, destination) pairs engaged across all moves."""
        return self.transfers_per_category * self.n_categories

    @property
    def engaged_fraction(self) -> float:
        """Share of all system nodes engaged in rebalancing transfers.

        The paper's example: 5,000 pairs over 200,000 nodes "masquerades as
        an increase of 2.5% on the active users".
        """
        return min(1.0, self.engaged_node_pairs / self.total_nodes)


def rebalance_cost(
    n_categories: int,
    docs_per_category: int,
    doc_size: int,
    n_reps: int,
    destination_size: int,
    total_nodes: int,
) -> RebalanceCostModel:
    """Convenience constructor for :class:`RebalanceCostModel`."""
    return RebalanceCostModel(
        n_categories=n_categories,
        docs_per_category=docs_per_category,
        doc_size=doc_size,
        n_reps=n_reps,
        destination_size=destination_size,
        total_nodes=total_nodes,
    )
