"""Requester-side document cache: replacement policy and accounting.

The X2 experiment showed that a peer keeping the documents it retrieves
(and registering as a holder for them) spreads hot-content load across
requesters.  This module promotes that cache from an inline ``OrderedDict``
in :class:`~repro.overlay.peer.Peer` to a first-class policy object:

* **lru** — evict the least recently *stored or re-retrieved* document.
  This is byte-identical to the historical inline implementation: serving
  a cached copy to another peer does **not** refresh recency (only the
  owner re-retrieving it does), so existing experiment goldens replay
  exactly.
* **lfu** — evict the least frequently retrieved document, ties broken by
  insertion order (oldest first).

The cache holds only bookkeeping — doc ids and use counts.  Storage
itself stays with the peer: fills go through ``Peer.store_document`` (so
the holder directory registers the cached copy) and evictions through
``Peer.drop_document`` (so it deregisters), keeping the cluster metadata
and physical stores consistent, which the ``holder-consistency`` chaos
invariant checks.

The accounting counters (:attr:`DocumentCache.fills`,
:attr:`~DocumentCache.evictions`, :attr:`~DocumentCache.served_hits`)
feed :meth:`Peer.cache_stats` — one of the demand signals the
:mod:`~repro.overlay.replication_manager` control loop reads.
"""

from __future__ import annotations

from collections import OrderedDict

__all__ = ["CACHE_POLICIES", "DocumentCache"]

#: replacement policies :class:`DocumentCache` implements.
CACHE_POLICIES = ("lru", "lfu")


class DocumentCache:
    """Bounded set of cache-owned document ids under a replacement policy.

    Tracks only *cache-owned* entries — contributions and placed replicas
    never enter and are therefore never evicted.  ``capacity == 0``
    disables the cache (nothing is ever admitted by the peer).
    """

    __slots__ = ("capacity", "policy", "_entries", "fills", "evictions",
                 "served_hits")

    def __init__(self, capacity: int, policy: str = "lru") -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        if policy not in CACHE_POLICIES:
            raise ValueError(
                f"policy must be one of {CACHE_POLICIES}, got {policy!r}"
            )
        self.capacity = capacity
        self.policy = policy
        #: doc_id -> retrieval count, in insertion/recency order.
        self._entries: "OrderedDict[int, int]" = OrderedDict()
        #: documents admitted into the cache.
        self.fills = 0
        #: documents evicted to make room.
        self.evictions = 0
        #: queries this peer answered out of a cached copy (incremented
        #: by the peer's serve path, not by the cache itself).
        self.served_hits = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, doc_id: int) -> bool:
        return doc_id in self._entries

    def owns(self, doc_id: int) -> bool:
        """True when ``doc_id`` is a cache-owned (evictable) entry."""
        return doc_id in self._entries

    def doc_ids(self) -> list[int]:
        """Cache-owned document ids in eviction-bookkeeping order."""
        return list(self._entries)

    def touch(self, doc_id: int) -> bool:
        """Record a re-retrieval of an already-cached document.

        Refreshes recency (lru) or bumps the use count (lfu).  Returns
        False when the document is not cache-owned, leaving state alone.
        """
        count = self._entries.get(doc_id)
        if count is None:
            return False
        self._entries[doc_id] = count + 1
        if self.policy == "lru":
            self._entries.move_to_end(doc_id)
        return True

    def add(self, doc_id: int) -> tuple[int, ...]:
        """Admit a newly retrieved document; return the evicted doc ids.

        The caller stores the document *before* calling and drops every
        returned id *after* — mirroring the historical inline order so
        holder-directory registration stays identical.
        """
        self._entries[doc_id] = 1
        self.fills += 1
        evicted: list[int] = []
        while len(self._entries) > self.capacity:
            victim = self._victim()
            del self._entries[victim]
            self.evictions += 1
            evicted.append(victim)
        return tuple(evicted)

    def discard(self, doc_id: int) -> bool:
        """Forget an entry without counting an eviction (external drop)."""
        return self._entries.pop(doc_id, None) is not None

    def _victim(self) -> int:
        if self.policy == "lru":
            # Oldest insertion/recency — the historical popitem(last=False).
            return next(iter(self._entries))
        # lfu: least retrievals; min() keeps the first (oldest) on ties.
        return min(self._entries, key=self._entries.__getitem__)

    def stats(self) -> dict:
        """Read-only accounting snapshot (see ``Peer.cache_stats``)."""
        return {
            "size": len(self._entries),
            "capacity": self.capacity,
            "policy": self.policy,
            "fills": self.fills,
            "evictions": self.evictions,
            "served_hits": self.served_hits,
        }
