"""Routing indices: the pure-P2P alternative to cluster metadata.

Section 3.1: "Alternatively, if pure P2P solutions are favored, the same
goal can be achieved using routing indices at the cluster's nodes, routing
requests for documents/categories to the proper cluster node(s)" — citing
Crespo & Garcia-Molina's compound routing indices (ICDCS 2002).

A node's compound routing index (CRI) stores, per neighbour and per
category, how many documents are reachable *through* that neighbour (the
neighbour's own documents plus everything behind it).  A query is routed
to the neighbour with the best goodness — here simply the reachable
document count for the requested category — instead of being flooded.

This module implements a self-contained CRI overlay over an arbitrary
topology, used by the E1 comparison experiment as the "pure P2P" variant
of intra-cluster search (no DCRT/NRT metadata needed).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["RoutingIndexNode", "RoutingIndexOverlay", "RISearchResult"]


@dataclass(slots=True)
class RoutingIndexNode:
    """One node's local index and compound routing index."""

    node_id: int
    #: category -> number of *local* documents.
    local_counts: dict[int, int] = field(default_factory=dict)
    #: neighbour -> (category -> documents reachable through neighbour).
    cri: dict[int, dict[int, int]] = field(default_factory=dict)

    def aggregate(self, exclude: int | None = None) -> dict[int, int]:
        """Local counts plus everything reachable, optionally excluding the
        branch through ``exclude`` (what this node advertises to it)."""
        totals = dict(self.local_counts)
        for neighbor, counts in self.cri.items():
            if neighbor == exclude:
                continue
            for category_id, count in counts.items():
                totals[category_id] = totals.get(category_id, 0) + count
        return totals

    def best_neighbor(self, category_id: int, excluded: set[int]) -> int | None:
        """Neighbour with the highest goodness for ``category_id``."""
        best: tuple[int, int] | None = None
        for neighbor, counts in self.cri.items():
            if neighbor in excluded:
                continue
            goodness = counts.get(category_id, 0)
            if goodness <= 0:
                continue
            if best is None or goodness > best[0] or (
                goodness == best[0] and neighbor < best[1]
            ):
                best = (goodness, neighbor)
        return best[1] if best is not None else None


@dataclass(frozen=True, slots=True)
class RISearchResult:
    """Outcome of one routing-indices search."""

    found: bool
    hops: int
    visited: tuple[int, ...]


class RoutingIndexOverlay:
    """A compound-routing-index overlay over a fixed topology.

    Build with a neighbour map and per-node document categories, call
    :meth:`build_indices` (iterates to fixpoint like the original's
    create/update process), then :meth:`search`.
    """

    def __init__(self, adjacency: dict[int, set[int]]) -> None:
        self.nodes: dict[int, RoutingIndexNode] = {
            node_id: RoutingIndexNode(node_id=node_id) for node_id in adjacency
        }
        self.adjacency = {
            node_id: set(neighbors) for node_id, neighbors in adjacency.items()
        }
        for node_id, neighbors in self.adjacency.items():
            for neighbor in neighbors:
                if neighbor not in self.nodes:
                    raise ValueError(f"edge to unknown node {neighbor}")

    def set_local_documents(self, node_id: int, category_counts: dict[int, int]) -> None:
        self.nodes[node_id].local_counts = dict(category_counts)

    def build_indices(self, max_iterations: int = 25) -> int:
        """Propagate aggregates until no CRI changes; returns iterations.

        Acyclic topologies reach a fixpoint in (diameter) rounds.  With
        cycles the counts over-estimate and keep inflating through loops
        (documents counted via several paths) — the original paper accepts
        the over-counting; the bounded number of rounds acts like its
        hop-count-limited variant, and the index still ranks neighbours
        usefully.
        """
        for iteration in range(1, max_iterations + 1):
            changed = False
            for node_id, node in self.nodes.items():
                for neighbor in self.adjacency[node_id]:
                    advertised = self.nodes[neighbor].aggregate(exclude=node_id)
                    if node.cri.get(neighbor) != advertised:
                        node.cri[neighbor] = advertised
                        changed = True
            if not changed:
                return iteration
        return max_iterations

    def search(
        self,
        start: int,
        category_id: int,
        max_hops: int = 64,
    ) -> RISearchResult:
        """Greedy CRI walk: always follow the best-goodness neighbour."""
        visited: list[int] = []
        current = start
        seen: set[int] = set()
        for hop in range(max_hops + 1):
            visited.append(current)
            seen.add(current)
            if self.nodes[current].local_counts.get(category_id, 0) > 0:
                return RISearchResult(found=True, hops=hop, visited=tuple(visited))
            next_node = self.nodes[current].best_neighbor(category_id, excluded=seen)
            if next_node is None:
                # Dead end: backtrack to the most recent node with another
                # promising branch.
                backtracked = False
                for earlier in reversed(visited[:-1]):
                    candidate = self.nodes[earlier].best_neighbor(
                        category_id, excluded=seen
                    )
                    if candidate is not None:
                        next_node = candidate
                        backtracked = True
                        break
                if not backtracked:
                    return RISearchResult(
                        found=False, hops=hop, visited=tuple(visited)
                    )
            current = next_node
        return RISearchResult(found=False, hops=max_hops, visited=tuple(visited))
