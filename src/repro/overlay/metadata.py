"""The per-node metadata structures of Figure 1.

Every node keeps three tables:

* **DT** (Document Table) — maps ids of *locally stored* documents to
  their document categories.
* **DCRT** (Document Category Routing Table) — maps each document category
  to the cluster id currently serving it.  Extended (Section 6.1.2) with a
  per-category ``move_counter`` so that conflicting updates arriving via
  different gossip paths resolve deterministically: the entry with the
  higher counter wins.
* **NRT** (Node Routing Table) — maps cluster ids to known member node
  ids.  Because NRTs "can grow very fast, an LRU replacement algorithm can
  be adopted" (Section 6.2): per-cluster entries are capped with
  least-recently-used eviction.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

__all__ = ["DocumentTable", "DCRT", "DCRTEntry", "NRT"]


@dataclass(slots=True)
class DocumentTable:
    """DT: locally stored document id -> category ids."""

    _entries: dict[int, tuple[int, ...]] = field(default_factory=dict)

    def add(self, doc_id: int, categories: tuple[int, ...]) -> None:
        if not categories:
            raise ValueError("a document must have at least one category")
        self._entries[doc_id] = tuple(categories)

    def remove(self, doc_id: int) -> None:
        self._entries.pop(doc_id, None)

    def categories_of(self, doc_id: int) -> tuple[int, ...]:
        return self._entries.get(doc_id, ())

    def has_document(self, doc_id: int) -> bool:
        return doc_id in self._entries

    def has_category(self, category_id: int) -> bool:
        """Whether any locally stored document belongs to ``category_id``.

        The publish protocol uses this to decide if the node already
        announced a contribution to the category (Section 6.2, step 2).
        """
        return any(category_id in cats for cats in self._entries.values())

    def docs_in_category(self, category_id: int) -> list[int]:
        return [
            doc_id
            for doc_id, cats in self._entries.items()
            if category_id in cats
        ]

    def doc_ids(self) -> list[int]:
        return list(self._entries)

    def __len__(self) -> int:
        return len(self._entries)


@dataclass(frozen=True, slots=True)
class DCRTEntry:
    """A DCRT row: which cluster serves a category, and how fresh that is."""

    cluster_id: int
    move_counter: int = 0


@dataclass(slots=True)
class DCRT:
    """Document Category Routing Table with move-counter conflict resolution.

    Unknown categories resolve to cluster 0 — the paper's default mapping
    for zero-document categories, which makes concurrent first publishes of
    a new category converge on the same cluster (Section 6.2, step 3).
    """

    _entries: dict[int, DCRTEntry] = field(default_factory=dict)
    #: optional ``(category_id, entry)`` callback fired whenever a row is
    #: installed or replaced — the durability journal's write-ahead hook.
    on_change: object | None = None

    DEFAULT_CLUSTER = 0

    def cluster_of(self, category_id: int) -> int:
        entry = self._entries.get(category_id)
        return entry.cluster_id if entry is not None else self.DEFAULT_CLUSTER

    def entry(self, category_id: int) -> DCRTEntry:
        return self._entries.get(category_id, DCRTEntry(self.DEFAULT_CLUSTER, 0))

    def merge(self, category_id: int, entry: DCRTEntry) -> bool:
        """Apply an update, keeping the entry with the higher move counter.

        Returns True if the local table changed.  Equal counters keep the
        existing entry (updates are idempotent).
        """
        current = self._entries.get(category_id)
        if current is None or entry.move_counter > current.move_counter:
            self._entries[category_id] = entry
            if self.on_change is not None:
                self.on_change(category_id, entry)
            return True
        return False

    def set(self, category_id: int, cluster_id: int, move_counter: int = 0) -> None:
        """Unconditionally install an entry (bootstrap only)."""
        entry = DCRTEntry(cluster_id, move_counter)
        self._entries[category_id] = entry
        if self.on_change is not None:
            self.on_change(category_id, entry)

    def snapshot(self) -> dict[int, DCRTEntry]:
        """A copy of all entries — what nodes exchange during gossip."""
        return dict(self._entries)

    def merge_snapshot(self, snapshot: dict[int, DCRTEntry]) -> int:
        """Merge a full snapshot; returns the number of entries updated."""
        changed = 0
        for category_id, entry in snapshot.items():
            if self.merge(category_id, entry):
                changed += 1
        return changed

    def categories(self) -> list[int]:
        return sorted(self._entries)

    def items(self) -> list[tuple[int, DCRTEntry]]:
        """All entries as sorted ``(category_id, entry)`` pairs.

        Read-only introspection for invariant checkers: entries come back
        in deterministic order and mutating the list does not touch the
        table.
        """
        return sorted(self._entries.items())

    def max_move_counter(self) -> int:
        """The highest move counter in the table (0 when empty)."""
        if not self._entries:
            return 0
        return max(entry.move_counter for entry in self._entries.values())

    def __len__(self) -> int:
        return len(self._entries)


class NRT:
    """Node Routing Table: cluster id -> known member nodes, LRU-capped.

    ``max_nodes_per_cluster`` bounds memory; touching an entry (adding it
    again, or selecting it for routing) refreshes its recency.
    """

    def __init__(self, max_nodes_per_cluster: int = 64) -> None:
        if max_nodes_per_cluster < 1:
            raise ValueError(
                f"max_nodes_per_cluster must be >= 1, got {max_nodes_per_cluster}"
            )
        self.max_nodes_per_cluster = max_nodes_per_cluster
        self._clusters: dict[int, OrderedDict[int, None]] = {}

    def add(self, cluster_id: int, node_id: int) -> None:
        """Record that ``node_id`` belongs to ``cluster_id`` (refreshes LRU)."""
        members = self._clusters.setdefault(cluster_id, OrderedDict())
        if node_id in members:
            members.move_to_end(node_id)
        else:
            members[node_id] = None
            while len(members) > self.max_nodes_per_cluster:
                members.popitem(last=False)

    def add_many(self, cluster_id: int, node_ids) -> None:
        for node_id in node_ids:
            self.add(cluster_id, node_id)

    def remove(self, cluster_id: int, node_id: int) -> None:
        members = self._clusters.get(cluster_id)
        if members is not None:
            members.pop(node_id, None)

    def remove_node(self, node_id: int) -> None:
        """Remove a node from every cluster (on a leave notice)."""
        for members in self._clusters.values():
            members.pop(node_id, None)

    def nodes_in(self, cluster_id: int) -> list[int]:
        members = self._clusters.get(cluster_id)
        return list(members) if members is not None else []

    def random_node(self, cluster_id: int, rng, exclude=()) -> int | None:
        """Pick a uniformly random known member of ``cluster_id``.

        Random selection is the paper's intra-cluster dispatch rule: it
        "can ensure that cluster nodes get an equal share of the workload
        targeting their cluster" (Section 3.3).  ``exclude`` removes
        candidates (already-tried failover targets, suspected-dead nodes)
        before the draw; with nothing to exclude the rng consumption is
        identical to the plain call.
        """
        members = self._clusters.get(cluster_id)
        if not members:
            return None
        if exclude:
            node_ids = [node_id for node_id in members if node_id not in exclude]
            if not node_ids:
                return None
        else:
            node_ids = list(members)
        choice = node_ids[int(rng.integers(0, len(node_ids)))]
        members.move_to_end(choice)
        return choice

    def clusters(self) -> list[int]:
        return sorted(self._clusters)

    def __contains__(self, cluster_id: int) -> bool:
        return bool(self._clusters.get(cluster_id))
