"""Demand-adaptive replication: grow and shrink replica sets under load.

The paper's top-m replication fixes each category's replica degree per
adaptation round, and the overload machinery (bounded service queues,
admission control) *sheds* excess demand but never *creates capacity*:
under a sustained flash crowd the system stays saturated, rejecting the
same hot queries forever.  This module closes that loop with a small
control loop per category, after the replica-management literature (QoS-
aware replica placement; replica-count adaptation vs request load):

**Signals.**  Each round reads, per category, the demand observed since
the previous round:

* served hits — the per-category ``hit_counters`` summed over all peers
  (cached copies serve through the same path, so cache hit rates are
  part of this signal);
* shed queries — each live holder's :class:`~repro.overlay.service.ServiceQueue`
  shed delta, attributed to categories in proportion to the holder's own
  hit-counter mix (a shed query never increments a hit counter, so
  without this term a fully saturated replica set would look *idle*).

Pressure is demand per live replica::

    pressure = (hits + shed_weight * shed) / max(1, live_holders)

**Hysteresis.**  Grow fast, shrink slowly: one round above
``grow_threshold`` (``grow_after``) adds ``grow_step`` replicas;
only ``shrink_after`` consecutive rounds below ``shrink_threshold``
start removal, and then managed replicas are retired one per round —
so a transient lull never tears down capacity a flash crowd still needs,
and replica counts return to baseline once the crowd passes.

**Placement.**  New replicas go to live members of the category's
cluster that do not already *durably* hold the shipped documents,
preferring high ``capacity_units`` first and short service queues second
(QoS-aware placement: fast nodes that are not already busy).  Missing
documents are pulled from live source holders via the ordinary
``transfer_request`` / ``transfer_data`` exchange, so replica creation
pays real transfer bytes and arriving copies register in the holder
directory like any store.  A document the target holds only as an
evictable *cached* copy is promoted in place instead
(:meth:`~repro.overlay.peer.Peer.cache_promote`): the bytes are already
there, so the manager pins the copy out of the cache's eviction
bookkeeping and takes ownership — shrink later drops it like any other
managed replica.

Everything is off by default (``ReplicationConfig(enabled=False)``):
no manager is constructed, no metrics registered, no RNG consumed —
deterministic snapshots of non-adaptive runs stay byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro import obs

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.overlay.system import P2PSystem

__all__ = ["ReplicationConfig", "ReplicationManager", "RoundReport"]


@dataclass(frozen=True, slots=True)
class ReplicationConfig:
    """Knobs for the demand-adaptive replication loop (off by default)."""

    #: master switch; off constructs no manager and registers no metrics.
    enabled: bool = False
    #: per-replica demand (hits + weighted sheds per round) above which a
    #: category counts as hot.
    grow_threshold: float = 8.0
    #: per-replica demand below which a category counts as cold.
    shrink_threshold: float = 1.0
    #: consecutive hot rounds before growing (1 = grow fast).
    grow_after: int = 1
    #: consecutive cold rounds before the first shrink (shrink slowly).
    shrink_after: int = 3
    #: replicas added per grow decision.
    grow_step: int = 2
    #: ceiling on *managed* replicas per category.
    max_replicas: int = 8
    #: hottest documents of the category shipped to each new replica.
    docs_per_replica: int = 4
    #: weight of one shed query relative to one served hit in pressure.
    shed_weight: float = 4.0
    #: never place managed replicas on the system's designated free
    #: riders (off by default — see :func:`repro.core.replication.plan_replication`).
    exclude_free_riders: bool = False

    def __post_init__(self) -> None:
        if self.grow_threshold <= self.shrink_threshold:
            raise ValueError(
                f"grow_threshold ({self.grow_threshold}) must exceed "
                f"shrink_threshold ({self.shrink_threshold})"
            )
        for name in ("grow_after", "shrink_after", "grow_step",
                     "max_replicas", "docs_per_replica"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1")
        if self.shed_weight < 0:
            raise ValueError(f"shed_weight must be >= 0, got {self.shed_weight}")


@dataclass(frozen=True, slots=True)
class RoundReport:
    """What one control round observed and did."""

    round_id: int
    #: category -> per-replica pressure this round.
    pressure: dict[int, float] = field(default_factory=dict)
    #: category -> node ids that received new replicas this round.
    grown: dict[int, tuple[int, ...]] = field(default_factory=dict)
    #: category -> node ids whose managed replicas were retired.
    shrunk: dict[int, tuple[int, ...]] = field(default_factory=dict)


class ReplicationManager:
    """Per-category replica-count control loop over one :class:`P2PSystem`.

    Round-driven like gossip and the failure detector: drivers call
    :meth:`P2PSystem.run_replication_round` between workload windows — a
    standing periodic event would break the run-to-quiescence contract.
    """

    def __init__(self, system: "P2PSystem", config: ReplicationConfig) -> None:
        self.system = system
        self.config = config
        self.rounds_run = 0
        #: category -> node -> doc ids this manager placed there.
        self._managed: dict[int, dict[int, set[int]]] = {}
        #: hysteresis state per category.
        self._hot_rounds: dict[int, int] = {}
        self._cold_rounds: dict[int, int] = {}
        #: previous cumulative totals, for per-round deltas.
        self._last_hits: dict[int, int] = {}
        self._last_shed: dict[int, int] = {}
        #: category -> sorted doc ids (static world content map).
        by_category: dict[int, list[int]] = {}
        for doc_id, doc in sorted(system.instance.documents.items()):
            for category_id in doc.categories:
                by_category.setdefault(category_id, []).append(doc_id)
        self._category_docs = {
            category_id: tuple(doc_ids)
            for category_id, doc_ids in by_category.items()
        }
        # Process-wide totals, shared by every enabled manager.
        self._c_grown = obs.counter("replication.replicas_added")
        self._c_shrunk = obs.counter("replication.replicas_removed")
        self._g_managed = obs.gauge("replication.managed_replicas")

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def replica_count(self, category_id: int) -> int:
        """Managed replicas currently placed for one category."""
        return len(self._managed.get(category_id, ()))

    def managed_view(self) -> dict[int, dict[int, set[int]]]:
        """Copy of category -> node -> managed doc ids (for invariants)."""
        return {
            category_id: {node: set(docs) for node, docs in nodes.items()}
            for category_id, nodes in sorted(self._managed.items())
        }

    def total_managed(self) -> int:
        return sum(len(nodes) for nodes in self._managed.values())

    # ------------------------------------------------------------------
    # signals
    # ------------------------------------------------------------------
    def _delta(self, last: dict[int, int], key: int, current: int) -> int:
        """Non-negative delta vs the stored watermark (reset-tolerant).

        ``reset_hit_counters`` can send a cumulative total backwards; the
        delta then restarts from the current value instead of going
        negative.
        """
        previous = last.get(key, 0)
        last[key] = current
        return current if current < previous else current - previous

    def _read_signals(self) -> tuple[dict[int, float], dict[int, int]]:
        """Per-category demand deltas and live-holder counts."""
        system = self.system
        hits_now: dict[int, int] = {}
        shed_mix: dict[int, float] = {}
        for peer in system.alive_peers():
            for category_id, hits in peer.hit_counters.items():
                hits_now[category_id] = hits_now.get(category_id, 0) + hits
            snapshot = peer.service_snapshot()
            if snapshot is None:
                continue
            shed_delta = self._delta(
                self._last_shed, peer.node_id, snapshot["shed"]
            )
            if not shed_delta:
                continue
            # Attribute the node's sheds to categories in proportion to
            # the demand mix it actually served.
            local_total = sum(peer.hit_counters.values())
            if not local_total:
                continue
            for category_id, hits in peer.hit_counters.items():
                shed_mix[category_id] = (
                    shed_mix.get(category_id, 0.0)
                    + shed_delta * hits / local_total
                )
        demand: dict[int, float] = {}
        for category_id in self._category_docs:
            hits_delta = self._delta(
                self._last_hits, category_id, hits_now.get(category_id, 0)
            )
            demand[category_id] = (
                hits_delta
                + self.config.shed_weight * shed_mix.get(category_id, 0.0)
            )
        holders_view = system.doc_holders_view()
        live_holders: dict[int, int] = {}
        for category_id, doc_ids in self._category_docs.items():
            nodes: set[int] = set()
            for doc_id in doc_ids:
                for node_id in holders_view.get(doc_id, ()):
                    if system.network.is_alive(node_id):
                        nodes.add(node_id)
            live_holders[category_id] = len(nodes)
        return demand, live_holders

    # ------------------------------------------------------------------
    # the control round
    # ------------------------------------------------------------------
    def run_round(self, round_id: int | None = None) -> RoundReport:
        """One observe -> decide -> act iteration over every category.

        The caller is expected to drain the simulation afterwards
        (:meth:`P2PSystem.run_replication_round` does) so the pulled
        replica transfers land before the next observation window.
        """
        if round_id is None:
            round_id = self.rounds_run
        self.rounds_run += 1
        demand, live_holders = self._read_signals()
        report = RoundReport(round_id=round_id)
        for category_id in sorted(self._category_docs):
            pressure = demand.get(category_id, 0.0) / max(
                1, live_holders.get(category_id, 0)
            )
            report.pressure[category_id] = pressure
            if pressure >= self.config.grow_threshold:
                self._hot_rounds[category_id] = (
                    self._hot_rounds.get(category_id, 0) + 1
                )
                self._cold_rounds[category_id] = 0
                if self._hot_rounds[category_id] >= self.config.grow_after:
                    grown = self._grow(category_id)
                    if grown:
                        report.grown[category_id] = grown
            elif pressure <= self.config.shrink_threshold:
                self._cold_rounds[category_id] = (
                    self._cold_rounds.get(category_id, 0) + 1
                )
                self._hot_rounds[category_id] = 0
                if self._cold_rounds[category_id] >= self.config.shrink_after:
                    shrunk = self._shrink(category_id)
                    if shrunk:
                        report.shrunk[category_id] = shrunk
            else:
                # Hysteresis band: neither streak advances.
                self._hot_rounds[category_id] = 0
                self._cold_rounds[category_id] = 0
        self._g_managed.set(self.total_managed())
        return report

    def _hot_docs(self, category_id: int) -> list[int]:
        """The category's still-shippable documents, hottest first.

        Holder count is the demand proxy: caching and earlier grow
        rounds concentrate copies on exactly the documents the crowd is
        asking for.  Documents every live cluster member already holds
        *durably* are excluded — the baseline plan replicates the
        statically hottest content cluster-wide, and those copies leave
        no placement with anything to ship.  A copy held only in a cache
        stays eligible (growing onto it promotes the copy in place).
        Ties break on doc id for determinism.
        """
        system = self.system
        holders_view = system.doc_holders_view()
        cluster_id = int(system.assignment.category_to_cluster[category_id])
        members = system.peers_in_cluster(cluster_id)

        def shippable(doc_id: int) -> bool:
            return any(
                doc_id not in peer.docs or peer.cache_owns(doc_id)
                for peer in members
            )

        doc_ids = self._category_docs.get(category_id, ())
        ranked = sorted(
            doc_ids,
            key=lambda d: (-len(holders_view.get(d, ())), d),
        )
        return [d for d in ranked if shippable(d)][
            : self.config.docs_per_replica
        ]

    def _placement_candidates(self, category_id: int, doc_ids):
        """Cluster members able to host new copies, best placed first."""
        system = self.system
        cluster_id = int(
            system.assignment.category_to_cluster[category_id]
        )
        managed = self._managed.get(category_id, {})
        wanted = set(doc_ids)
        candidates = []
        for peer in system.peers_in_cluster(cluster_id):
            if peer.node_id in managed:
                continue
            if (
                self.config.exclude_free_riders
                and system.is_free_rider(peer.node_id)
            ):
                continue
            if all(
                doc_id in peer.docs and not peer.cache_owns(doc_id)
                for doc_id in wanted
            ):
                continue  # durably holds everything worth shipping
            snapshot = peer.service_snapshot()
            depth = 0 if snapshot is None else (
                snapshot["depth"] + (1 if snapshot["in_service"] else 0)
            )
            candidates.append((-peer.capacity_units, depth, peer.node_id))
        candidates.sort()
        return [node_id for _, _, node_id in candidates]

    def _grow(self, category_id: int) -> tuple[int, ...]:
        """Place up to ``grow_step`` new managed replicas for a category."""
        system = self.system
        managed = self._managed.setdefault(category_id, {})
        room = self.config.max_replicas - len(managed)
        if room <= 0:
            return ()
        doc_ids = self._hot_docs(category_id)
        if not doc_ids:
            return ()
        holders_view = system.doc_holders_view()
        placed = []
        for node_id in self._placement_candidates(category_id, doc_ids):
            if len(placed) >= min(self.config.grow_step, room):
                break
            target = system.peer(node_id)
            if target is None:
                continue
            # Per document: a cached copy is *promoted* in place (pinned
            # out of the cache's eviction bookkeeping — the bytes are
            # already there); a durably held copy (contribution, earlier
            # placement) is not ours to manage; everything else is pulled
            # from its lowest-id live holder.
            pulls: dict[int, list[int]] = {}
            pulled: set[int] = set()
            for doc_id in doc_ids:
                if doc_id in target.docs:
                    if target.cache_promote(doc_id):
                        pulled.add(doc_id)
                    continue
                sources = sorted(
                    holder
                    for holder in holders_view.get(doc_id, ())
                    if holder != node_id and system.network.is_alive(holder)
                )
                if sources:
                    pulls.setdefault(sources[0], []).append(doc_id)
                    pulled.add(doc_id)
            if not pulled:
                continue
            for source_id, wanted in sorted(pulls.items()):
                target.pull_documents(source_id, category_id, wanted)
            managed[node_id] = pulled
            placed.append(node_id)
            self._c_grown.inc()
        return tuple(placed)

    def _shrink(self, category_id: int) -> tuple[int, ...]:
        """Retire one managed replica (the weakest-placed, slow shrink)."""
        managed = self._managed.get(category_id)
        if not managed:
            return ()
        system = self.system
        # Retire lowest capacity first (the reverse of placement order);
        # dead nodes are forgotten without drops (their disk is dark).
        def retire_key(node_id: int) -> tuple:
            peer = system._peers[node_id]
            return (peer.capacity_units, -node_id)

        node_id = min(sorted(managed), key=retire_key)
        doc_ids = managed.pop(node_id)
        if not managed:
            self._managed.pop(category_id, None)
        self._c_shrunk.inc()
        if not system.network.is_alive(node_id):
            return (node_id,)
        peer = system._peers[node_id]
        for doc_id in sorted(doc_ids):
            # A doc may since have been re-stored as a cached copy or by
            # another manager decision; only drop what is still present
            # and not separately cache-owned.
            if doc_id in peer.docs and not peer.cache_owns(doc_id):
                peer.drop_document(doc_id)
        return (node_id,)
