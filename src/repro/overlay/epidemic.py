"""Epidemic (anti-entropy) dissemination of metadata updates.

Step 5 of the lazy rebalancing protocol: "periodically, all the nodes in
the cluster send to their neighboring nodes updates to their metadata
information ... this epidemic-style protocol eventually guarantees that
all nodes of the cluster become aware of all metadata information
updates."  The peer-side exchange lives in
:meth:`repro.overlay.peer.Peer.gossip_once`; this module provides the
periodic driver and convergence measurement used by the dynamics
experiments and tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.overlay.system import P2PSystem

__all__ = ["GossipDriver", "dcrt_convergence", "run_gossip_until_converged"]


@dataclass(frozen=True, slots=True)
class ConvergenceReport:
    """How far DCRT knowledge has spread."""

    n_peers: int
    #: fraction of (peer, category) pairs whose DCRT entry matches the
    #: authoritative assignment.
    agreement: float
    #: peers whose whole DCRT matches the authoritative assignment.
    fully_converged: int


def dcrt_convergence(system: "P2PSystem") -> ConvergenceReport:
    """Measure peers' DCRT agreement with the authoritative assignment."""
    peers = system.alive_peers()
    n_categories = system.n_categories
    truth = system.assignment.category_to_cluster
    if not peers or n_categories == 0:
        return ConvergenceReport(n_peers=len(peers), agreement=1.0, fully_converged=len(peers))
    matches = 0
    fully = 0
    for peer in peers:
        peer_matches = sum(
            1
            for category_id in range(n_categories)
            if peer.dcrt.cluster_of(category_id) == int(truth[category_id])
        )
        matches += peer_matches
        if peer_matches == n_categories:
            fully += 1
    return ConvergenceReport(
        n_peers=len(peers),
        agreement=matches / (len(peers) * n_categories),
        fully_converged=fully,
    )


class GossipDriver:
    """Schedules periodic gossip rounds on a live system.

    Example::

        driver = GossipDriver(system, interval=5.0)
        driver.start()
        ...
        driver.stop()
    """

    def __init__(self, system: "P2PSystem", interval: float = 5.0) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.system = system
        self.interval = interval
        self._cancel: Callable[[], None] | None = None
        self.rounds_run = 0

    def _round(self) -> None:
        self.rounds_run += 1
        for peer in self.system.alive_peers():
            peer.gossip_once()

    def start(self) -> None:
        if self._cancel is not None:
            raise RuntimeError("gossip driver already started")
        self._cancel = self.system.sim.schedule_periodic(self.interval, self._round)

    def stop(self) -> None:
        if self._cancel is not None:
            self._cancel()
            self._cancel = None


def run_gossip_until_converged(
    system: "P2PSystem",
    max_rounds: int = 50,
    target_agreement: float = 1.0,
) -> tuple[int, ConvergenceReport]:
    """Run discrete gossip rounds until DCRTs agree with the assignment.

    Returns ``(rounds_used, final_report)``.  Used by tests and the
    dynamics experiment to show the epidemic phase actually converges
    (and how fast).
    """
    report = dcrt_convergence(system)
    rounds = 0
    while report.agreement < target_agreement and rounds < max_rounds:
        system.run_gossip_rounds(1)
        rounds += 1
        report = dcrt_convergence(system)
    return rounds, report
