"""Cluster graphs, spanning trees, and leader election (Section 6.1.1).

A cluster's nodes know some of their fellow members (their NRT entries)
and are connected in a *cluster graph*.  The adaptation machinery builds a
spanning tree of this graph on the fly — a node considers the sender of
the first request it sees to be its parent — and the most capable node is
elected leader.

This module provides the pure (message-free) parts: random connected
graph construction, BFS tree building over live nodes, and the election
rule.  The message exchanges that feed them live in
:mod:`repro.overlay.peer` and :mod:`repro.overlay.adaptation`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "ClusterGraph",
    "build_cluster_graph",
    "spanning_tree",
    "elect_leader",
]


@dataclass(slots=True)
class ClusterGraph:
    """Undirected membership graph of one cluster."""

    cluster_id: int
    adjacency: dict[int, set[int]] = field(default_factory=dict)

    @property
    def members(self) -> set[int]:
        return set(self.adjacency)

    def neighbors(self, node_id: int) -> set[int]:
        return self.adjacency.get(node_id, set())

    def add_member(self, node_id: int, attach_to) -> None:
        """Add a node, connecting it to the given existing members."""
        links = self.adjacency.setdefault(node_id, set())
        for other in attach_to:
            if other == node_id or other not in self.adjacency:
                continue
            links.add(other)
            self.adjacency[other].add(node_id)

    def remove_member(self, node_id: int) -> None:
        links = self.adjacency.pop(node_id, set())
        for other in links:
            self.adjacency[other].discard(node_id)

    def is_connected(self, alive: set[int] | None = None) -> bool:
        """Connectivity over (optionally only the live subset of) members."""
        nodes = self.members if alive is None else (self.members & alive)
        if not nodes:
            return True
        start = next(iter(nodes))
        seen = {start}
        frontier = deque([start])
        while frontier:
            current = frontier.popleft()
            for neighbor in self.adjacency[current]:
                if neighbor in nodes and neighbor not in seen:
                    seen.add(neighbor)
                    frontier.append(neighbor)
        return seen == nodes


def build_cluster_graph(
    cluster_id: int,
    members,
    rng: np.random.Generator,
    degree: int = 4,
) -> ClusterGraph:
    """A random connected graph over ``members``.

    A random spanning chain over a shuffled member order guarantees
    connectivity; each node then gains random extra links up to roughly
    ``degree``.  This models NRT-derived neighbour sets: arbitrary but
    connected.
    """
    members = list(members)
    graph = ClusterGraph(cluster_id=cluster_id)
    if not members:
        return graph
    order = [members[i] for i in rng.permutation(len(members))]
    graph.adjacency[order[0]] = set()
    for previous, current in zip(order, order[1:]):
        graph.adjacency[current] = set()
        graph.adjacency[current].add(previous)
        graph.adjacency[previous].add(current)
    if degree > 2 and len(members) > 3:
        extra_per_node = max(0, degree - 2)
        for node_id in order:
            for _ in range(extra_per_node):
                other = order[int(rng.integers(0, len(order)))]
                if other != node_id:
                    graph.adjacency[node_id].add(other)
                    graph.adjacency[other].add(node_id)
    return graph


def spanning_tree(
    graph: ClusterGraph, root: int, alive: set[int] | None = None
) -> tuple[dict[int, int], dict[int, list[int]]]:
    """BFS spanning tree of the live part of ``graph`` rooted at ``root``.

    Returns ``(parent, children)`` maps covering the nodes reachable from
    the root.  Mirrors the on-the-fly tree of Section 6.1.2 Phase 1: the
    node a request is first heard from becomes the parent; duplicate
    requests are dropped.
    """
    nodes = graph.members if alive is None else (graph.members & alive)
    if root not in nodes:
        raise ValueError(f"root {root} is not a live member")
    parent: dict[int, int] = {root: root}
    children: dict[int, list[int]] = {root: []}
    frontier = deque([root])
    while frontier:
        current = frontier.popleft()
        for neighbor in sorted(graph.neighbors(current)):
            if neighbor in nodes and neighbor not in parent:
                parent[neighbor] = current
                children.setdefault(current, []).append(neighbor)
                children.setdefault(neighbor, [])
                frontier.append(neighbor)
    return parent, children


def elect_leader(
    capabilities: dict[int, float], alive: set[int] | None = None
) -> int | None:
    """The election rule: the most capable live node wins.

    Ties break toward the highest node id so all members reach the same
    verdict from the same information.  Returns ``None`` when no candidate
    is live.  (Divergent views — e.g. under partitionings — can elect
    multiple leaders, which the paper explicitly tolerates.)
    """
    candidates = [
        (capacity, node_id)
        for node_id, capacity in capabilities.items()
        if alive is None or node_id in alive
    ]
    if not candidates:
        return None
    _, winner = max(candidates)
    return winner
