"""The P2P system façade: a live simulated deployment.

:class:`P2PSystem` wires a built :class:`~repro.model.system.SystemInstance`
plus a category assignment (MaxFair output or a baseline) into a running
discrete-event simulation:

* one :class:`~repro.overlay.peer.Peer` per node, bootstrapped with the
  Figure 1 metadata (full DCRT, cluster-complete + sampled-remote NRT);
* per-cluster random connected graphs as the intra-cluster topology;
* document placement from a :class:`~repro.core.replication.ReplicationPlan`
  (or bare contributions when no plan is given);
* query workload execution with per-query outcome tracking;
* churn (node joins and leaves) and adaptation rounds.

This is the entry point the discrete-event experiments (E1-E3) and the
examples use.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field, replace

import numpy as np

from repro import obs
from repro.core.maxfair import Assignment
from repro.core.replication import ReplicationPlan
from repro.metrics.response import QueryOutcome
from repro.model.system import SystemInstance
from repro.model.workload import QueryWorkload
from repro.overlay import messages as m
from repro.overlay.adaptation import (
    AdaptationConfig,
    AdaptationCoordinator,
    AdaptationOutcome,
)
from repro.overlay.cluster import build_cluster_graph
from repro.overlay.peer import (
    DocInfo,
    MisbehaviorConfig,
    Peer,
    PeerConfig,
    PeerHooks,
)
# Submodule imports on purpose (see the matching note in peer.py):
# going through repro.content's __init__ here would close an import
# cycle while that package initializes.
from repro.content.chunks import ContentConfig
from repro.content.manifest import ContentManager, manifest_to_update
from repro.durability import DurabilityConfig, MemoryStore, PeerJournal
from repro.overlay.replication_manager import (
    ReplicationConfig,
    ReplicationManager,
)
from repro.overlay.service import ServiceConfig
from repro.reliability import ReliabilityConfig
from repro.sim.engine import Simulator
from repro.sim.network import Network
from repro.sim.rng import RngRegistry

__all__ = ["P2PSystemConfig", "P2PSystem"]


@dataclass(frozen=True, slots=True)
class P2PSystemConfig:
    """Deployment-level tunables."""

    base_latency: float = 0.05
    bandwidth: float | None = 10_000_000.0
    cluster_graph_degree: int = 4
    nrt_capacity: int = 512
    #: how many random members of each *foreign* cluster a node knows.
    remote_nrt_sample: int = 4
    #: requester-side query cache size in documents (0 = off).
    cache_capacity: int = 0
    #: cache replacement policy ("lru" or "lfu").
    cache_policy: str = "lru"
    #: where the Section 3.1 cluster metadata lives: ``replicated`` = every
    #: node can locate holders (the pure-P2P reading); ``super_peer`` =
    #: only each cluster's most capable node can, and other members route
    #: document lookups through it (the hybrid reading).
    metadata_mode: str = "replicated"
    seed: int = 0
    #: ack/retry channel, query failover, and failure-detector knobs;
    #: pushed into every peer's config (off by default).
    reliability: ReliabilityConfig = field(default_factory=ReliabilityConfig)
    #: per-peer service model (finite service rate, bounded intake queue,
    #: admission control); pushed into every peer's config (off by default).
    service: ServiceConfig = field(default_factory=ServiceConfig)
    #: demand-adaptive replication loop (off by default — no manager is
    #: even constructed, so non-adaptive runs stay byte-identical).
    replication: ReplicationConfig = field(default_factory=ReplicationConfig)
    #: content data plane (chunked transfer, multi-source fetch, healing);
    #: off by default — documents stay metadata-only tokens.
    content: ContentConfig = field(default_factory=ContentConfig)
    #: durable crash recovery (per-peer WAL + snapshot journals, epoch
    #: fencing, reconciliation); off by default — no journals exist, no
    #: record is ever appended, and runs stay byte-identical.
    durability: DurabilityConfig = field(default_factory=DurabilityConfig)
    peer: PeerConfig = field(default_factory=PeerConfig)

    def __post_init__(self) -> None:
        if self.metadata_mode not in ("replicated", "super_peer"):
            raise ValueError(
                f"metadata_mode must be 'replicated' or 'super_peer', "
                f"got {self.metadata_mode!r}"
            )


@dataclass(slots=True)
class _QueryRecord:
    outcome_args: dict
    responders: set[int] = field(default_factory=set)


class _SystemHooks(PeerHooks):
    """Routes peer callbacks into the system's bookkeeping."""

    def __init__(self, system: "P2PSystem") -> None:
        self.system = system

    def on_query_response(self, peer: Peer, response: m.QueryResponse) -> None:
        system = self.system
        if system._integrity_audit:
            # Response-integrity audit (armed only when a peer has been
            # marked misbehaving): an accepted response may only claim
            # documents its responder has actually stored at some point.
            for doc_id in response.doc_ids:
                if (response.responder_id, doc_id) not in system._ever_stored:
                    system._integrity_violations.append(
                        f"node {response.responder_id} answered query "
                        f"{response.query_id} claiming doc {doc_id} it "
                        f"never stored"
                    )
        record = self.system._queries.get(response.query_id)
        if record is None:
            return
        args = record.outcome_args
        if args["first_response_at"] is None:
            args["first_response_at"] = self.system.sim.now
            args["first_response_hops"] = response.hops
            self.system._h_latency.observe(
                self.system.sim.now - args["issued_at"]
            )
            if obs.TRACE.enabled:
                obs.TRACE.emit(
                    "query_resolve",
                    t=self.system.sim.now,
                    query=response.query_id,
                    hops=response.hops,
                    results=len(response.doc_ids),
                )
        record.responders.add(response.responder_id)
        args["results"] += len(response.doc_ids)
        # A response settles the query even if a failover deadline already
        # declared it failed — a late answer is still an answer.
        args["failed"] = False

    def on_bogus_response(self, peer: Peer, response: m.QueryResponse) -> None:
        self.system._bogus_rejections.append(
            (response.responder_id, response.query_id)
        )

    def on_query_failed(self, peer: Peer, query_id: int, reason: str) -> None:
        record = self.system._queries.get(query_id)
        if record is None:
            return
        if record.outcome_args["first_response_at"] is not None:
            # Failover raced a response that already arrived; not a failure.
            return
        record.outcome_args["failed"] = True

    def on_cluster_joined(self, peer: Peer, cluster_id: int) -> None:
        self.system._register_membership(peer, cluster_id)

    def on_document_stored(self, peer: Peer, doc_id: int) -> None:
        self.system._doc_holders.setdefault(doc_id, set()).add(peer.node_id)
        self.system._ever_stored.add((peer.node_id, doc_id))
        self.system._doc_holders_cache = None
        content = self.system.content
        if content is not None:
            content.note_stored(peer, doc_id)

    def on_document_dropped(self, peer: Peer, doc_id: int) -> None:
        holders = self.system._doc_holders.get(doc_id)
        if holders is not None:
            holders.discard(peer.node_id)
            self.system._doc_holders_cache = None

    def on_request_served(self, peer: Peer) -> None:
        self.system._node_loads_cache = None

    def lookup_holders(
        self, peer: Peer, cluster_id: int, doc_id: int
    ) -> tuple[int, ...]:
        """The cluster-metadata lookup (Section 3.1): live holders of a doc.

        In super-peer mode only each cluster's designated super peer holds
        the metadata; everyone else gets nothing and must route through it.
        """
        system = self.system
        if system.config.metadata_mode == "super_peer":
            if system._super_peers.get(cluster_id) != peer.node_id:
                return ()
        holders = system._doc_holders.get(doc_id, ())
        return tuple(
            sorted(
                node_id
                for node_id in holders
                if system.network.is_alive(node_id)
            )
        )

    def on_monitoring_complete(
        self, peer: Peer, cluster_id: int, round_id: int,
        counts: dict[int, int], weights: dict[int, float], subtree_size: int,
    ) -> None:
        coordinator = self.system._active_coordinator
        if coordinator is not None:
            coordinator.record_monitoring(cluster_id, counts, weights, subtree_size)

    def on_leave_notice(self, peer: Peer, notice: m.LeaveNotice) -> None:
        self.system._note_departure(notice)


class P2PSystem:
    """A live simulated deployment of the paper's architecture.

    Parameters
    ----------
    instance:
        The world: documents, categories, nodes.
    assignment:
        Complete category -> cluster assignment.
    plan:
        Optional replica placement; when omitted, nodes store only their
        own contributions.
    config:
        Deployment tunables.
    """

    def __init__(
        self,
        instance: SystemInstance,
        assignment: Assignment,
        plan: ReplicationPlan | None = None,
        config: P2PSystemConfig | None = None,
    ) -> None:
        if not assignment.is_complete():
            raise ValueError("P2PSystem requires a complete assignment")
        self.instance = instance
        self.assignment = assignment.copy()
        self.plan = plan
        self.config = config if config is not None else P2PSystemConfig()

        self.rngs = RngRegistry(root_seed=self.config.seed)
        self.sim = Simulator()
        #: in-sim first-response latencies, stamped with simulation time.
        self._h_latency = obs.sim_histogram(
            "overlay.first_response_latency", clock=lambda: self.sim.now
        )
        self.network = Network(
            self.sim,
            base_latency=self.config.base_latency,
            bandwidth=self.config.bandwidth,
        )
        self.hooks = _SystemHooks(self)
        self._peers: dict[int, Peer] = {}
        self._cluster_members: dict[int, set[int]] = {
            cluster_id: set() for cluster_id in range(assignment.n_clusters)
        }
        self._graphs: dict[int, object] = {}
        self._queries: dict[int, _QueryRecord] = {}
        self._active_coordinator: AdaptationCoordinator | None = None
        self._departed: set[int] = set()
        #: cluster metadata (Section 3.1): doc id -> holder node ids.
        self._doc_holders: dict[int, set[int]] = {}
        #: cluster id -> designated super peer (super-peer mode only).
        self._super_peers: dict[int, int] = {}
        #: queries need globally unique ids across workloads — peers keep
        #: the ids they have seen for loop detection (the paper's idQ is a
        #: unique pseudorandom number), so reusing one silences the query.
        self._next_query_id = 0
        #: memoized snapshots for the dict-rebuilding views experiments
        #: poll every round; ``None`` = dirty, rebuilt on next access.
        self._node_loads_cache: dict[int, int] | None = None
        self._doc_holders_cache: dict[int, set[int]] | None = None
        self._cluster_members_cache: dict[int, set[int]] | None = None
        #: nodes that consume without contributing (``Node.is_free_rider``
        #: at build time, plus empty-handed joiners); excluded from
        #: replica placement and capacity accounting.
        self._free_riders: set[int] = {
            node_id
            for node_id, node in instance.nodes.items()
            if node.is_free_rider
        }
        #: misbehaving-peer bookkeeping — the response-integrity audit is
        #: armed lazily (set_misbehavior / enable_integrity_audit) so
        #: honest worlds pay nothing and run no extra invariant checks.
        self._misbehaving: set[int] = set()
        self._integrity_audit = False
        self._integrity_violations: list[str] = []
        self._ever_stored: set[tuple[int, int]] = set()
        self._bogus_rejections: list[tuple[int, int]] = []
        #: durability bookkeeping — node id -> journal (empty when the
        #: subsystem is off), the system's view of per-category ownership
        #: epochs, and the append-only ledger of (category, epoch,
        #: cluster) ownership claims the single-owner-per-epoch invariant
        #: audits.
        self._journals: dict[int, PeerJournal] = {}
        self._category_epochs: dict[int, int] = {}
        self._epoch_claims: list[tuple[int, int, int]] = []

        #: content data plane: manifests, fetch ledger, healer; None
        #: when disabled (no manifests, no metrics, no RNG draws).  The
        #: attribute exists before bootstrap because the store/drop
        #: hooks consult it while bootstrap places documents.
        self.content: ContentManager | None = None
        self._bootstrap()
        #: demand-adaptive replication loop; None when disabled so the
        #: default world registers no replication metrics at all.
        self.replication: ReplicationManager | None = (
            ReplicationManager(self, self.config.replication)
            if self.config.replication.enabled
            else None
        )
        if self.config.content.enabled:
            self.content = ContentManager(self, self.config.content)
        if self.config.durability.enabled:
            # Journals attach after bootstrap so the baseline snapshot
            # covers the placed documents and the full DCRT.
            for node_id in sorted(self._peers):
                self._attach_journal(self._peers[node_id])

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @property
    def n_categories(self) -> int:
        return len(self.instance.categories)

    def _doc_info(self, doc_id: int) -> DocInfo:
        doc = self.instance.documents[doc_id]
        return DocInfo(
            doc_id=doc.doc_id, categories=doc.categories, size_bytes=doc.size_bytes
        )

    def _peer_config(self) -> PeerConfig:
        """Peer tunables with the system-level knobs applied."""
        return replace(
            self.config.peer,
            nrt_capacity=self.config.nrt_capacity,
            cache_capacity=self.config.cache_capacity,
            cache_policy=self.config.cache_policy,
            reliability=self.config.reliability,
            service=self.config.service,
            content=self.config.content,
        )

    def _jitter_rng(self):
        """The named retry-jitter stream (never consulted without a retry)."""
        return self.rngs.stream("reliability.jitter")

    def _attach_journal(self, peer: Peer) -> None:
        """Give ``peer`` its durability journal (reusing a prior one).

        Reuse matters for re-admitted node ids: ``attach_journal``
        compacts a fresh baseline immediately, so a stale journal left
        by a departed incarnation is overwritten, never replayed.
        """
        journal = self._journals.get(peer.node_id)
        if journal is None:
            journal = PeerJournal(MemoryStore(), self.config.durability)
            self._journals[peer.node_id] = journal
        journal.flags["free_rider"] = peer.node_id in self._free_riders
        peer.attach_journal(journal)

    def _bootstrap(self) -> None:
        instance, assignment = self.instance, self.assignment
        protocol_rng = self.rngs.stream("protocol")
        topology_rng = self.rngs.stream("topology")
        peer_config = self._peer_config()

        # Create peers.
        jitter_rng = self._jitter_rng()
        for node_id, node in sorted(instance.nodes.items()):
            peer = Peer(
                node_id=node_id,
                capacity_units=node.capacity_units,
                network=self.network,
                rng=protocol_rng,
                hooks=self.hooks,
                config=peer_config,
                jitter_rng=jitter_rng,
            )
            self._peers[node_id] = peer

        # Document placement: replication plan, else bare contributions.
        if self.plan is not None:
            for node_id, doc_ids in self.plan.node_docs.items():
                peer = self._peers.get(node_id)
                if peer is None:
                    continue
                for doc_id in doc_ids:
                    peer.store_document(self._doc_info(doc_id))
        for node_id, node in instance.nodes.items():
            peer = self._peers[node_id]
            for doc_id in node.contributed_doc_ids:
                if doc_id not in peer.docs:
                    peer.store_document(self._doc_info(doc_id))

        # Cluster membership from the assignment (contributors of a
        # cluster's categories are its members, Section 3.1).
        for node_id, cats in instance.node_categories.items():
            for category_id in cats:
                cluster_id = int(assignment.category_to_cluster[category_id])
                self._cluster_members[cluster_id].add(node_id)

        # Metadata bootstrap: full DCRT everywhere; NRT complete for own
        # clusters, sampled for foreign ones.
        all_nodes = sorted(self._peers)
        for peer in self._peers.values():
            for category_id in range(self.n_categories):
                peer.dcrt.set(
                    category_id,
                    int(assignment.category_to_cluster[category_id]),
                    int(assignment.move_counters[category_id]),
                )
        for cluster_id, members in self._cluster_members.items():
            member_list = sorted(members)
            members_array = np.array(member_list, dtype=np.int64)
            for node_id in member_list:
                peer = self._peers[node_id]
                # Each member knows a *different* random subset (up to the
                # NRT capacity) — handing everyone the same ordered list
                # would make the LRU evict the same members at every node
                # and starve them of traffic.
                keep = min(len(member_list), self.config.nrt_capacity)
                known = members_array[
                    topology_rng.permutation(len(members_array))[:keep]
                ]
                peer.join_cluster(cluster_id, known_members=known.tolist())
                for member in member_list:
                    peer.known_capabilities[cluster_id][member] = (
                        instance.nodes[member].capacity_units
                    )
            # Foreign-cluster samples for everyone else.
            if member_list:
                for node_id in all_nodes:
                    if node_id in members:
                        continue
                    peer = self._peers[node_id]
                    sample_size = min(
                        self.config.remote_nrt_sample, len(member_list)
                    )
                    picks = topology_rng.choice(
                        len(member_list), size=sample_size, replace=False
                    )
                    peer.nrt.add_many(
                        cluster_id, (member_list[int(i)] for i in picks)
                    )

        # Intra-cluster topology.
        for cluster_id, members in self._cluster_members.items():
            if not members:
                continue
            graph = build_cluster_graph(
                cluster_id,
                sorted(members),
                topology_rng,
                degree=self.config.cluster_graph_degree,
            )
            self._graphs[cluster_id] = graph
            for node_id in members:
                self._peers[node_id].set_cluster_neighbors(
                    cluster_id, graph.neighbors(node_id)
                )

        # Super-peer mode: designate each cluster's most capable member
        # and tell everyone where the metadata lives.
        if self.config.metadata_mode == "super_peer":
            for cluster_id, members in self._cluster_members.items():
                if not members:
                    continue
                super_peer = max(
                    members,
                    key=lambda n: (instance.nodes[n].capacity_units, n),
                )
                self._super_peers[cluster_id] = super_peer
                for peer in self._peers.values():
                    peer.super_peers[cluster_id] = super_peer

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def peer(self, node_id: int) -> Peer | None:
        peer = self._peers.get(node_id)
        if peer is None or node_id in self._departed:
            return None
        return peer

    def alive_peers(self):
        """All peers that have not departed or crashed."""
        return [
            peer
            for node_id, peer in sorted(self._peers.items())
            if node_id not in self._departed and self.network.is_alive(node_id)
        ]

    def peers_in_cluster(self, cluster_id: int):
        return [
            self._peers[node_id]
            for node_id in sorted(self._cluster_members.get(cluster_id, ()))
            if node_id not in self._departed and self.network.is_alive(node_id)
        ]

    def cluster_of_node(self, node_id: int) -> set[int]:
        peer = self._peers.get(node_id)
        return set(peer.memberships) if peer is not None else set()

    def node_loads(self) -> dict[int, int]:
        """Requests served per peer — the paper's load measure.

        The snapshot is cached and invalidated whenever any peer serves a
        request (or counters reset); treat the returned dict as read-only.
        """
        if self._node_loads_cache is None:
            self._node_loads_cache = {
                node_id: peer.requests_served
                for node_id, peer in sorted(self._peers.items())
            }
        return self._node_loads_cache

    def node_capacities(self) -> dict[int, float]:
        return {
            node_id: peer.capacity_units
            for node_id, peer in sorted(self._peers.items())
        }

    def node_cluster_map(self) -> dict[int, set[int]]:
        return {
            node_id: set(peer.memberships)
            for node_id, peer in sorted(self._peers.items())
        }

    # ------------------------------------------------------------------
    # introspection (read-only views for the chaos/invariant harness)
    # ------------------------------------------------------------------
    def all_node_ids(self) -> list[int]:
        """Sorted ids of every peer ever created (including departed)."""
        return sorted(self._peers)

    @property
    def overload_enabled(self) -> bool:
        """True when peers run the service model (overload invariants apply)."""
        return self.config.service.enabled

    @property
    def replication_enabled(self) -> bool:
        """True when the adaptive replication loop runs (bounds apply)."""
        return self.replication is not None

    @property
    def content_enabled(self) -> bool:
        """True when the content data plane runs (content invariants apply)."""
        return self.content is not None

    @property
    def durability_enabled(self) -> bool:
        """True when peers journal durable state (recovery invariants apply)."""
        return self.config.durability.enabled

    def journal(self, node_id: int) -> PeerJournal | None:
        """The node's durability journal (None when durability is off)."""
        return self._journals.get(node_id)

    def durable_docs_by_node(self) -> dict[int, set[int]]:
        """Doc ids each node's journal acknowledges as held.

        Crashed nodes included: their disks survive, which is what the
        conservation and no-acknowledged-write-loss checks need.
        """
        return {
            node_id: set(journal.durable_doc_ids())
            for node_id, journal in sorted(self._journals.items())
        }

    def epoch_claims(self) -> list[tuple[int, int, int]]:
        """Append-only ledger of (category, epoch, cluster) ownership claims."""
        return list(self._epoch_claims)

    def next_ownership_epoch(self, category_id: int) -> int:
        """The next safe ownership epoch for a category.

        Strictly above the system's recorded epoch *and* every peer's
        adopted epoch (including crashed peers — their journals replay on
        recovery), so a claim at this epoch fences all earlier owners.
        """
        best = self._category_epochs.get(category_id, 0)
        for peer in self._peers.values():
            known = peer.ownership_epochs.get(category_id, 0)
            if known > best:
                best = known
        return best + 1

    def departed_node_ids(self) -> list[int]:
        """Sorted ids of peers that left or crashed out of the system."""
        return sorted(self._departed)

    # ------------------------------------------------------------------
    # free riders and misbehaving peers
    # ------------------------------------------------------------------
    def free_rider_ids(self) -> frozenset[int]:
        """Node ids currently designated free riders (consume-only)."""
        return frozenset(self._free_riders)

    def is_free_rider(self, node_id: int) -> bool:
        return node_id in self._free_riders

    def contributing_capacity(self) -> float:
        """Total capacity of alive, contributing (non-free-riding) peers."""
        return sum(
            self.instance.nodes[node_id].capacity_units
            for node_id, peer in self._peers.items()
            if node_id not in self._free_riders
            and node_id not in self._departed
            and self.network.is_alive(node_id)
        )

    def set_misbehavior(self, node_id: int, config: MisbehaviorConfig) -> None:
        """Arm ``node_id`` with ``config`` (a :class:`MisbehaviorConfig`).

        Arming any peer also arms the response-integrity audit so the
        ``response-integrity`` invariant starts checking accepted
        responses against the storage ledger.
        """
        peer = self._peers.get(node_id)
        if peer is None:
            raise ValueError(f"unknown node id {node_id}")
        peer.arm_misbehavior(config)
        self._misbehaving.add(node_id)
        self.enable_integrity_audit()

    def enable_integrity_audit(self) -> None:
        """Start auditing accepted responses against the storage ledger."""
        self._integrity_audit = True

    @property
    def misbehavior_armed(self) -> bool:
        """True once the response-integrity audit is switched on."""
        return self._integrity_audit

    def misbehaving_node_ids(self) -> list[int]:
        return sorted(self._misbehaving)

    def integrity_failures(self) -> list[str]:
        """Accepted responses that claimed never-stored documents (cumulative)."""
        return list(self._integrity_violations)

    def bogus_rejections(self) -> list[tuple[int, int]]:
        """(responder_id, query_id) pairs rejected by requester-side checks."""
        return list(self._bogus_rejections)

    def cluster_members_view(self) -> dict[int, set[int]]:
        """Snapshot of the system's authoritative cluster membership sets.

        Cached and invalidated on membership changes (join/leave/departure
        notices); treat the returned dict and sets as read-only.
        """
        if self._cluster_members_cache is None:
            self._cluster_members_cache = {
                cluster_id: set(members)
                for cluster_id, members in sorted(self._cluster_members.items())
            }
        return self._cluster_members_cache

    def doc_holders_view(self) -> dict[int, set[int]]:
        """Snapshot of the cluster metadata: document id -> holder node ids.

        Cached and invalidated whenever a peer stores or drops a document;
        treat the returned dict and sets as read-only.
        """
        if self._doc_holders_cache is None:
            self._doc_holders_cache = {
                doc_id: set(holders)
                for doc_id, holders in sorted(self._doc_holders.items())
                if holders
            }
        return self._doc_holders_cache

    def stored_docs_by_node(self) -> dict[int, set[int]]:
        """Document ids physically held by each peer object.

        Includes departed and crashed peers: their copies still exist (a
        crashed node keeps its disk), which is what document-conservation
        checks need to distinguish "unreachable" from "destroyed".
        """
        return {
            node_id: set(peer.docs) for node_id, peer in sorted(self._peers.items())
        }

    def query_ledger(self) -> dict[int, dict]:
        """Copies of the current workload's per-query bookkeeping."""
        return {
            global_id: dict(record.outcome_args)
            for global_id, record in sorted(self._queries.items())
        }

    # ------------------------------------------------------------------
    # bookkeeping callbacks
    # ------------------------------------------------------------------
    def _register_membership(self, peer: Peer, cluster_id: int) -> None:
        members = self._cluster_members.setdefault(cluster_id, set())
        if peer.node_id in members:
            return
        members.add(peer.node_id)
        self._cluster_members_cache = None
        graph = self._graphs.get(cluster_id)
        if graph is None:
            graph = build_cluster_graph(
                cluster_id, [peer.node_id], self.rngs.stream("topology")
            )
            self._graphs[cluster_id] = graph
        else:
            existing = sorted(graph.members)
            rng = self.rngs.stream("topology")
            attach_count = min(self.config.cluster_graph_degree, len(existing))
            attach = [
                existing[int(i)]
                for i in rng.choice(len(existing), size=attach_count, replace=False)
            ] if existing else []
            graph.add_member(peer.node_id, attach)
            for other in attach:
                other_peer = self._peers.get(other)
                if other_peer is not None:
                    other_peer.cluster_neighbors.setdefault(cluster_id, set()).add(
                        peer.node_id
                    )
        peer.set_cluster_neighbors(cluster_id, graph.neighbors(peer.node_id))

    def _note_departure(self, notice: m.LeaveNotice) -> None:
        members = self._cluster_members.get(notice.cluster_id)
        if members is not None:
            members.discard(notice.leaver_id)
            self._cluster_members_cache = None
        graph = self._graphs.get(notice.cluster_id)
        if graph is not None:
            graph.remove_member(notice.leaver_id)

    def apply_reassignment(
        self, category_id: int, target_cluster: int, epoch: int = 0
    ) -> None:
        """Record a Phase-4 move in the authoritative assignment view.

        The destination cluster serves the category with its existing
        members (content arrives via the paired transfers); contributor
        membership only changes through the publish protocol.  A nonzero
        ``epoch`` (durability armed) records the ownership claim in the
        epoch ledger the single-owner-per-epoch invariant audits.
        """
        self.assignment.move(category_id, target_cluster)
        if epoch:
            if epoch > self._category_epochs.get(category_id, 0):
                self._category_epochs[category_id] = epoch
            self._epoch_claims.append((category_id, epoch, target_cluster))

    # ------------------------------------------------------------------
    # workload execution
    # ------------------------------------------------------------------
    def run_workload(
        self,
        workload: QueryWorkload,
        query_interval: float = 0.01,
        settle: bool = True,
        doc_targeted: bool = True,
        at_times: Sequence[float] | None = None,
    ) -> list[QueryOutcome]:
        """Issue a query workload and return per-query outcomes.

        Queries are spaced ``query_interval`` apart — or issued at the
        explicit per-query offsets ``at_times`` (relative to now; one per
        query, as produced by the scenario engine's event streams).  With
        ``settle`` the simulation runs to quiescence afterwards so all
        in-flight responses land before outcomes are finalized.
        ``doc_targeted`` requests the workload's specific documents (the
        retrieval case, default); disable it for category-level
        "any m results" queries.
        """
        queries = list(workload)
        if at_times is not None and len(at_times) != len(queries):
            raise ValueError(
                f"at_times has {len(at_times)} entries for "
                f"{len(queries)} queries"
            )
        self._queries.clear()
        base_time = self.sim.now
        for index, query in enumerate(queries):
            requester = self.peer(query.requester_id)
            if requester is None:
                continue
            offset = (
                at_times[index]
                if at_times is not None
                else index * query_interval
            )
            issue_at = base_time + offset
            global_id = self._next_query_id
            self._next_query_id += 1
            record = _QueryRecord(
                outcome_args={
                    "query_id": query.query_id,
                    "issued_at": issue_at,
                    "first_response_at": None,
                    "first_response_hops": None,
                    "results": 0,
                    "wanted": query.m,
                    "failed": False,
                }
            )
            self._queries[global_id] = record
            category_id = query.category_ids[0]
            doc_id = query.target_doc_id if doc_targeted else -1
            self.sim.schedule_at(
                issue_at,
                lambda r=requester, g=global_id, q=query, c=category_id, d=doc_id: (
                    r.start_query(g, c, q.m, target_doc_id=d)
                ),
            )
        self.sim.run()
        if settle:
            self.sim.run()
        return [
            QueryOutcome(**record.outcome_args)
            for record in self._queries.values()
        ]

    # ------------------------------------------------------------------
    # dynamics
    # ------------------------------------------------------------------
    def leave_node(self, node_id: int) -> None:
        """Gracefully remove a node (Section 6.3 leave protocol)."""
        peer = self.peer(node_id)
        if peer is None:
            return
        peer.start_leave()
        self._departed.add(node_id)
        self._cluster_members_cache = None
        for members in self._cluster_members.values():
            members.discard(node_id)
        for graph in self._graphs.values():
            graph.remove_member(node_id)
        self.sim.run()

    def shutdown_node(self, node_id: int, handoff_rounds: int = 3) -> bool:
        """Gracefully shut a node down: drain, hand off, then leave.

        Distinct from :meth:`crash_node` (no goodbye) and from
        :meth:`leave_node` (goodbye, but any sole-holder content departs
        with the leaver): a graceful shutdown first lets in-flight work
        drain, then hands off every document whose *only* live copy sits
        on the leaver — the receiving node pulls the document group over
        the transfer protocol, and with the content data plane enabled
        the leaver also ships the document's manifest.  Hand-off is
        retried up to ``handoff_rounds`` times (messages may be lost);
        if some sole-holder document still cannot be placed — the
        cluster is partitioned away, or nobody else is alive — the
        shutdown is *aborted* and the node stays up, because leaving
        would destroy the last copy.  Returns whether the node left.
        """
        peer = self.peer(node_id)
        if peer is None or not self.network.is_alive(node_id):
            return False
        # Drain: let in-flight queries, transfers, and the node's own
        # service queue finish before deciding what must move.
        self.sim.run()
        for _ in range(max(1, handoff_rounds)):
            if not self.network.is_alive(node_id) or node_id in self._departed:
                # Crash-during-handoff: the leaver died mid-drain.  Abort
                # — the crash path owns the node now, and a graceful
                # leave here would count partially shipped manifests as
                # placed copies and destroy last copies whose transfers
                # never completed.
                return False
            orphans = self._sole_holder_docs(node_id)
            if not orphans:
                break
            for doc_id in orphans:
                target = self._handoff_target(doc_id, node_id)
                if target is None:
                    continue
                info = peer.docs[doc_id]
                category_id = info.categories[0] if info.categories else 0
                target.pull_documents(node_id, category_id, [doc_id])
                if self.content is not None:
                    manifest = self.content.manifest_for(doc_id)
                    if manifest is not None:
                        peer._send(
                            target.node_id,
                            "manifest_update",
                            manifest_to_update(
                                manifest,
                                holders=self.content.live_holders(doc_id),
                            ),
                        )
            self.sim.run()
        if not self.network.is_alive(node_id) or node_id in self._departed:
            return False  # crashed while the final drain ran
        if self._sole_holder_docs(node_id):
            return False  # last copies could not be placed; stay up
        self.leave_node(node_id)
        return True

    def _sole_holder_docs(self, node_id: int) -> list[int]:
        """Documents whose only live holder is ``node_id``."""
        network = self.network
        orphans = []
        peer = self._peers[node_id]
        for doc_id in sorted(peer.docs):
            others = [
                holder
                for holder in self._doc_holders.get(doc_id, ())
                if holder != node_id and network.is_alive(holder)
            ]
            if not others:
                orphans.append(doc_id)
        return orphans

    def _handoff_target(self, doc_id: int, leaver_id: int) -> Peer | None:
        """Deterministic destination for a sole-holder document.

        Prefer live members of the document's home cluster, highest
        capacity first (node id as the tie break); fall back to any live
        peer when the cluster has nobody else.
        """
        info = self._peers[leaver_id].docs.get(doc_id)
        candidates: list[Peer] = []
        if info is not None and info.categories:
            cluster_id = int(
                self.assignment.category_to_cluster[info.categories[0]]
            )
            candidates = [
                peer
                for peer in self.peers_in_cluster(cluster_id)
                if peer.node_id != leaver_id
            ]
        if not candidates:
            candidates = [
                peer
                for peer in self.alive_peers()
                if peer.node_id != leaver_id
            ]
        if not candidates:
            return None
        return min(candidates, key=lambda p: (-p.capacity_units, p.node_id))

    def crash_node(self, node_id: int) -> None:
        """Fail a node without any goodbye (tests the timeout paths)."""
        self.network.crash(node_id)
        self._departed.add(node_id)
        peer = self._peers.get(node_id)
        if peer is not None:
            # Shed the node's admitted service-queue work and disarm its
            # scheduled completion — a dead node must not keep serving.
            peer.handle_crash()

    def power_loss(self, node_id: int) -> None:
        """Crash a node *and* wipe its volatile memory (amnesia crash).

        :meth:`crash_node` models an outage that keeps RAM — the healed
        peer resumes with its tables intact.  This models the real
        thing: everything in memory is gone and only the disk survives
        (the durability journal, partially fetched chunks, and the
        corruption marks — bad bits stay bad across a reboot).  The
        wipe drops documents through the normal hooks so the holder
        directory stays truthful, while the detached journal keeps
        acknowledging them for the replay at :meth:`recover_node`.
        """
        peer = self._peers.get(node_id)
        if peer is None:
            raise ValueError(f"unknown node id {node_id}")
        self.crash_node(node_id)
        peer.lose_power()

    def recover_node(self, node_id: int) -> Peer:
        """Heal a crashed node: the inverse of :meth:`crash_node`.

        A crash is a reboot, not a leave — the healed peer keeps its
        documents and memberships.  What it must *not* keep is the
        liveness evidence accrued while dark: its armed retry and probe
        timers kept firing with no acks or pongs able to arrive, so its
        failure detector accuses peers that were fine all along, and a
        stale suspect set silently blackholes queries routed through the
        healed node.  The state is cleared and the node re-announces
        itself so fellows drop *their* suspicion of it too.
        """
        peer = self._peers.get(node_id)
        if peer is None or node_id not in self._departed:
            raise ValueError(f"node {node_id} is not a departed member")
        if node_id not in self.network.crashed_nodes():
            raise ValueError(
                f"node {node_id} left gracefully; use join_node to re-admit"
            )
        self.network.recover(node_id)
        self._departed.discard(node_id)
        self._node_loads_cache = None
        self._cluster_members_cache = None
        peer.clear_failure_state()
        if peer.lost_memory:
            journal = self._journals.get(node_id)
            if journal is not None:
                # Replay snapshot + longest-valid-WAL-prefix, re-learn
                # topology, then re-verify holdings against manifests
                # before re-advertising anything.
                peer.restore_durable_state(journal.load())
                self._rewire_recovered(peer)
                self._verify_recovered_holdings(peer)
            # Without a journal the amnesia is permanent: the node comes
            # back empty-handed and must rely on rejoin and healing.
        peer.announce_capabilities()
        self.sim.run()
        return peer

    def _rewire_recovered(self, peer: Peer) -> None:
        """Re-learn topology for a peer whose memory was just replayed.

        The cluster graphs never dropped the node (a crash keeps
        membership), so its neighbour links are all still there — only
        the peer's own copy of them was wiped.
        """
        for cluster_id in sorted(peer.memberships):
            members = self._cluster_members.get(cluster_id, ())
            peer.join_cluster(cluster_id, known_members=sorted(members))
            graph = self._graphs.get(cluster_id)
            if graph is not None and peer.node_id in graph.members:
                peer.set_cluster_neighbors(
                    cluster_id, graph.neighbors(peer.node_id)
                )

    def _verify_recovered_holdings(self, peer: Peer) -> list[int]:
        """Audit a recovered peer's holdings before they are trusted.

        Two failure modes hide in a replayed disk: the cached manifest
        may be stale (the document's version was bumped while the node
        was dark — sync it from the registry, i.e. replay the missed
        bump), and chunks may be corrupt.  A corrupt document with other
        live holders is *dropped* — its intact chunks become verified
        partial state — so the healer re-fetches it instead of the peer
        silently re-advertising bad bytes; a corrupt *sole* copy is kept
        (corrupt beats destroyed).  Returns the dropped doc ids.
        """
        if self.content is None:
            return []
        content = peer.content_state
        if content is None:
            return []
        dropped: list[int] = []
        for doc_id in sorted(peer.docs):
            registry = self.content.manifest_for(doc_id)
            if registry is not None:
                cached = content.manifests.get(doc_id)
                if cached is None or registry.version > cached.version:
                    content.manifests[doc_id] = registry
                    if content.on_manifest is not None:
                        content.on_manifest(doc_id, registry)
            bad = content.corrupt.get(doc_id)
            if not bad:
                continue
            others = [
                holder
                for holder in self.content.live_holders(doc_id)
                if holder != peer.node_id
            ]
            if not others:
                continue  # sole copy: corrupt beats destroyed
            manifest = content.manifests.get(doc_id, registry)
            if manifest is not None:
                intact = set(range(manifest.n_chunks)) - set(bad)
                if intact:
                    content.partial.setdefault(doc_id, set()).update(intact)
                    for index in sorted(intact):
                        self.content.note_partial(peer.node_id, doc_id, index)
            content.corrupt.pop(doc_id, None)
            peer.drop_document(doc_id)
            dropped.append(doc_id)
        return dropped

    def join_node(
        self,
        node_id: int,
        capacity_units: float,
        doc_infos: list[DocInfo] = (),
        bootstrap_id: int | None = None,
    ) -> Peer:
        """Admit a new node via the Section 6.3 join protocol."""
        if node_id in self._peers and node_id not in self._departed:
            raise ValueError(f"node {node_id} is already a member")
        peer = Peer(
            node_id=node_id,
            capacity_units=capacity_units,
            network=self.network,
            rng=self.rngs.stream("protocol"),
            hooks=self.hooks,
            config=self._peer_config(),
            jitter_rng=self._jitter_rng(),
        )
        self._peers[node_id] = peer
        self._departed.discard(node_id)
        self._node_loads_cache = None
        # A joiner that brings nothing is a free rider until it serves
        # content; one that brings documents sheds the label.
        if doc_infos:
            self._free_riders.discard(node_id)
        else:
            self._free_riders.add(node_id)
        for info in doc_infos:
            peer.store_document(info)
        if self.config.durability.enabled:
            # Attach after the initial stores so the baseline snapshot
            # covers what the joiner brought.
            self._attach_journal(peer)
        if bootstrap_id is None:
            alive = [p.node_id for p in self.alive_peers() if p.node_id != node_id]
            if not alive:
                raise RuntimeError("no live node to bootstrap from")
            rng = self.rngs.stream("protocol")
            bootstrap_id = alive[int(rng.integers(0, len(alive)))]
        peer.start_join(bootstrap_id)
        self.sim.run()
        return peer

    def run_gossip_rounds(self, rounds: int = 1) -> None:
        """Run epidemic DCRT dissemination rounds across all live peers."""
        for _ in range(rounds):
            for peer in self.alive_peers():
                peer.gossip_once()
            self.sim.run()

    def run_failure_detector_rounds(self, rounds: int = 1) -> None:
        """Run heartbeat probing rounds across all live peers.

        The failure detector is round-driven rather than self-scheduling
        (a standing periodic event would keep the queue alive forever and
        break every run-to-quiescence caller), so drivers invoke rounds
        explicitly — mirroring :meth:`run_gossip_rounds`.
        """
        for _ in range(rounds):
            for peer in self.alive_peers():
                peer.heartbeat_once()
            self.sim.run()

    def run_replication_round(self):
        """Run one demand-adaptive replication round and let transfers land.

        Round-driven like gossip and the failure detector (a standing
        periodic event would break run-to-quiescence callers); drivers
        interleave rounds with workload windows.  Returns the manager's
        :class:`~repro.overlay.replication_manager.RoundReport`, or None
        when adaptive replication is disabled.
        """
        if self.replication is None:
            return None
        report = self.replication.run_round()
        self.sim.run()
        return report

    def run_healing_round(self):
        """Run one anti-entropy healing scan and let its fetches land.

        The healer re-replicates documents whose live full-holder count
        fell below ``ContentConfig.replication_floor``.  Round-driven
        like replication (never self-scheduling); returns the healer's
        summary dict, or None when the content data plane is disabled.
        """
        if self.content is None:
            return None
        report = self.content.healer.run_round()
        self.sim.run()
        return report

    def run_reconciliation_round(self):
        """One anti-entropy ownership reconciliation pass (durability on).

        After a partition heals, live peers can disagree about which
        cluster serves a category — each side may have rebalanced
        independently.  Gossip alone converges on the higher move
        counter, which is not necessarily the authoritative side.  This
        pass finds every category with divergent beliefs among live
        peers and broadcasts a fresh authoritative
        :class:`~repro.overlay.messages.ReassignNotice` carrying a
        *fenced* epoch (above every known claim) and a move counter
        above every counter in the wild, so all peers converge on the
        assignment view's owner and stale owners are demoted to
        replicas.  Round-driven like gossip and healing; returns a
        summary dict, or None when durability is disabled.
        """
        if not self.durability_enabled:
            return None
        alive = self.alive_peers()
        beliefs: dict[int, set[int]] = {}
        for peer in alive:
            for category_id, entry in peer.dcrt.items():
                beliefs.setdefault(category_id, set()).add(entry.cluster_id)
        divergent = sorted(
            category_id
            for category_id, clusters in beliefs.items()
            if len(clusters) > 1
        )
        for category_id in divergent:
            target = int(self.assignment.category_to_cluster[category_id])
            epoch = self.next_ownership_epoch(category_id)
            counter = int(self.assignment.move_counters[category_id])
            for peer in alive:
                known = peer.dcrt.entry(category_id).move_counter
                if known > counter:
                    counter = known
            counter += 1
            # Jump the authoritative counter above every stale belief so
            # later legitimate moves (assignment counter + 1) still win.
            self.assignment.move_counters[category_id] = counter
            notice = m.ReassignNotice(
                category_id=category_id,
                source_cluster=target,
                target_cluster=target,
                move_counter=counter,
                epoch=epoch,
            )
            self.apply_reassignment(category_id, target, epoch=epoch)
            # Deterministic sender: the lowest-id live member of the
            # winning cluster, falling back to any live peer.
            senders = [
                peer
                for peer in self.peers_in_cluster(target)
                if self.network.is_alive(peer.node_id)
            ] or alive
            sender = min(senders, key=lambda p: p.node_id)
            for peer in alive:
                sender._send(peer.node_id, "reassign_notice", notice)
        self.sim.run()
        return {"divergent": len(divergent), "categories": divergent}

    def run_adaptation(
        self, round_id: int = 0, config: AdaptationConfig | None = None
    ) -> AdaptationOutcome:
        """Execute one four-phase adaptation round (Section 6.1.2)."""
        coordinator = AdaptationCoordinator(self, config=config)
        self._active_coordinator = coordinator
        try:
            return coordinator.run_round(round_id)
        finally:
            self._active_coordinator = None

    def reset_hit_counters(self) -> None:
        """Start a fresh observation period (between adaptation rounds)."""
        self._node_loads_cache = None
        for peer in self._peers.values():
            peer.hit_counters.clear()
            peer.requests_served = 0
