"""The four-phase adaptation mechanism (Section 6.1.2).

Orchestrates one full adaptation round over a live
:class:`repro.overlay.system.P2PSystem`:

* **Phase 0** (Section 6.1.1): capability gossip rounds followed by leader
  election — each cluster's most capable known-live node becomes leader.
* **Phase 1** — per-cluster monitoring: each leader floods a hit-counter
  request over its cluster graph; counters aggregate back up the
  on-the-fly tree.
* **Phase 2** — leader communication: leaders exchange per-cluster load
  reports so "all communicating leaders know the current load distribution
  among their clusters".
* **Phase 3** — fairness evaluation: the leader of the hottest cluster
  computes the fairness index over normalized cluster loads; if it is at
  or above the low threshold, nothing more happens.
* **Phase 4** — rebalancing: that leader runs MaxFair_Reassign over the
  *observed* category statistics and broadcasts reassign notices carrying
  bumped move counters and node pairings; the lazy transfer protocol then
  runs in the simulation.

All inter-node information flow is charged to the simulated network.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro import obs
from repro.core.fairness import jain_fairness
from repro.core.maxfair import Assignment
from repro.core.popularity import CategoryStats
from repro.core.reassign import ReassignResult, maxfair_reassign_from_stats
from repro.overlay import messages as m
from repro.overlay.rebalance import pair_nodes

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.overlay.system import P2PSystem

__all__ = [
    "AdaptationConfig",
    "AdaptationOutcome",
    "AdaptationCoordinator",
    "plan_category_move",
    "broadcast_notice",
]


def plan_category_move(
    system: "P2PSystem",
    category_id: int,
    source_cluster: int,
    target_cluster: int,
) -> m.ReassignNotice:
    """Build the Phase-4 :class:`~repro.overlay.messages.ReassignNotice`.

    Pairs live source-cluster nodes with live destination-cluster nodes,
    partitions the category's document set over the holders (so each
    replicated document travels once), and bumps the move counter past the
    authoritative assignment's.  Shared between
    :meth:`AdaptationCoordinator.rebalance` and the chaos harness's forced
    moves, so both exercise the same transfer protocol.
    """
    source_members = sorted(
        peer.node_id for peer in system.peers_in_cluster(source_cluster)
    )
    destination_members = sorted(
        peer.node_id for peer in system.peers_in_cluster(target_cluster)
    )
    holders = [
        node_id
        for node_id in source_members
        if system.peer(node_id) is not None
        and system.peer(node_id).dt.docs_in_category(category_id)
    ]
    pairs = tuple(pair_nodes(holders or source_members, destination_members))
    # Partition the category's documents over the holders using the
    # coordinator's cluster metadata, so replicated (hot) documents
    # travel once instead of once per holder.
    designated: dict[int, list[int]] = {}
    for holder_id in holders:
        designated[holder_id] = []
    doc_union = sorted(
        {
            doc_id
            for holder_id in holders
            for doc_id in system.peer(holder_id).dt.docs_in_category(category_id)
        }
    )
    for position, doc_id in enumerate(doc_union):
        doc_holders = [
            holder_id
            for holder_id in holders
            if system.peer(holder_id).dt.has_document(doc_id)
        ]
        if doc_holders:
            designated[doc_holders[position % len(doc_holders)]].append(doc_id)
    source_docs = tuple(
        (holder_id, tuple(doc_ids))
        for holder_id, doc_ids in sorted(designated.items())
    )
    move_counter = int(system.assignment.move_counters[category_id]) + 1
    # With durability armed every move claims a fresh ownership epoch, so
    # replayed or partition-stale notices are fenced out at the peers.
    epoch = (
        system.next_ownership_epoch(category_id)
        if system.durability_enabled
        else 0
    )
    return m.ReassignNotice(
        category_id=category_id,
        source_cluster=source_cluster,
        target_cluster=target_cluster,
        move_counter=move_counter,
        transfer_pairs=pairs,
        source_docs=source_docs,
        epoch=epoch,
    )


def broadcast_notice(
    system: "P2PSystem", notice: m.ReassignNotice, coordinator_id: int
) -> None:
    """Step 1 of the lazy protocol: both clusters learn the new mapping.

    Sends the notice from ``coordinator_id`` to every live member of the
    source and destination clusters, then records the move in the system's
    authoritative assignment view.  Does *not* run the simulation — the
    caller decides when the notices (and the transfers they trigger) land.
    """
    source_members = {
        peer.node_id for peer in system.peers_in_cluster(notice.source_cluster)
    }
    destination_members = {
        peer.node_id for peer in system.peers_in_cluster(notice.target_cluster)
    }
    # Route through the coordinator peer's send path so the notices get
    # ack/retry protection when reliability is enabled; fall back to the
    # raw network if the coordinator is gone (chaos-induced).
    coordinator = system.peer(coordinator_id)
    for node_id in source_members | destination_members:
        if coordinator is not None:
            coordinator._send(node_id, "reassign_notice", notice)
        else:
            system.network.transmit(
                coordinator_id, node_id, "reassign_notice", notice
            )
    system.apply_reassignment(
        notice.category_id, notice.target_cluster, epoch=notice.epoch
    )


@dataclass(frozen=True, slots=True)
class AdaptationConfig:
    """Thresholds and knobs of the adaptation mechanism.

    The defaults are the paper's Section 6.4 values: rebalancing triggers
    below the low threshold (83%) and runs until fairness reaches the
    upper threshold (92%).
    """

    low_threshold: float = 0.83
    high_threshold: float = 0.92
    max_moves: int = 50
    capability_gossip_rounds: int = 3

    def __post_init__(self) -> None:
        if not 0.0 < self.low_threshold <= self.high_threshold <= 1.0:
            raise ValueError(
                "thresholds must satisfy 0 < low <= high <= 1, got "
                f"low={self.low_threshold}, high={self.high_threshold}"
            )


@dataclass(slots=True)
class AdaptationOutcome:
    """What one adaptation round observed and did."""

    round_id: int
    leaders: dict[int, int]
    observed_fairness: float
    rebalanced: bool
    reassign_result: ReassignResult | None = None
    moved_categories: list[int] = field(default_factory=list)
    #: network bytes attributable to the round (control + transfers).
    bytes_before: int = 0
    bytes_after: int = 0

    @property
    def bytes_used(self) -> int:
        return self.bytes_after - self.bytes_before

    @property
    def planned_fairness(self) -> float | None:
        """Fairness the reassigner projected after its moves (None when
        the round did not rebalance)."""
        if self.reassign_result is None:
            return None
        return self.reassign_result.final_fairness


class AdaptationCoordinator:
    """Runs adaptation rounds against a live :class:`P2PSystem`."""

    def __init__(self, system: "P2PSystem", config: AdaptationConfig | None = None):
        self.system = system
        self.config = config if config is not None else AdaptationConfig()
        #: cluster id -> (counts, weights, subtree) gathered in Phase 1.
        self._monitoring_results: dict[int, tuple[dict[int, int], dict[int, float], int]] = {}
        #: Phase-2 load reports of the most recent round, kept for
        #: post-round introspection (the invariant checker reads them).
        self.last_reports: dict[int, m.LoadReport] = {}

    # ------------------------------------------------------------------
    # phases
    # ------------------------------------------------------------------
    def elect_leaders(self) -> dict[int, int]:
        """Phase 0: capability gossip, then the election rule per cluster."""
        system = self.system
        for _ in range(self.config.capability_gossip_rounds):
            for peer in system.alive_peers():
                peer.announce_capabilities()
            system.sim.run()
        alive = {peer.node_id for peer in system.alive_peers()}
        leaders: dict[int, int] = {}
        for peer in system.alive_peers():
            peer.elect_leaders(alive=alive)
        # A cluster's leader is what its members believe; with converged
        # gossip all members agree (the paper tolerates disagreement —
        # take any member's belief, preferring the claimed leader's own).
        for cluster_id in range(system.assignment.n_clusters):
            beliefs = [
                peer.believed_leader.get(cluster_id)
                for peer in system.peers_in_cluster(cluster_id)
                if peer.believed_leader.get(cluster_id) is not None
            ]
            if beliefs:
                # Majority belief (deterministic tie-break on node id).
                values, counts = np.unique(np.array(beliefs), return_counts=True)
                leaders[cluster_id] = int(values[int(np.argmax(counts))])
        return leaders

    def monitor(self, leaders: dict[int, int], round_id: int) -> None:
        """Phase 1: every leader aggregates its cluster's hit counters."""
        self._monitoring_results.clear()
        system = self.system
        for cluster_id, leader_id in sorted(leaders.items()):
            leader = system.peer(leader_id)
            if leader is None or cluster_id not in leader.memberships:
                continue
            leader.start_monitoring(cluster_id, round_id)
        system.sim.run()

    def record_monitoring(
        self,
        cluster_id: int,
        counts: dict[int, int],
        weights: dict[int, float],
        subtree_size: int,
    ) -> None:
        """Callback target wired through the system hooks."""
        self._monitoring_results[cluster_id] = (counts, weights, subtree_size)

    def exchange_reports(
        self, leaders: dict[int, int], round_id: int
    ) -> dict[int, m.LoadReport]:
        """Phase 2: leaders multicast their cluster load figures."""
        system = self.system
        reports: dict[int, m.LoadReport] = {}
        for cluster_id, leader_id in sorted(leaders.items()):
            counts, weights, subtree = self._monitoring_results.get(
                cluster_id, ({}, {}, 0)
            )
            leader = system.peer(leader_id)
            capacity = sum(
                peer.capacity_units for peer in system.peers_in_cluster(cluster_id)
            )
            report = m.LoadReport(
                round_id=round_id,
                cluster_id=cluster_id,
                leader_id=leader_id,
                category_hits=tuple(sorted(counts.items())),
                category_weights=tuple(sorted(weights.items())),
                capacity_units=capacity,
                n_members=max(subtree, 1),
            )
            reports[cluster_id] = report
            if leader is not None:
                for other_cluster, other_leader in leaders.items():
                    if other_cluster != cluster_id:
                        system.network.transmit(
                            leader_id,
                            other_leader,
                            "load_report",
                            report,
                            size_bytes=2 * m.CONTROL_SIZE,
                        )
        system.sim.run()
        return reports

    def evaluate_fairness(self, reports: dict[int, m.LoadReport]) -> float:
        """Phase 3: fairness of the observed normalized cluster loads.

        Normalizes each cluster's hits by the aggregated per-category
        capacity weights — the same denominator Phase 4 optimizes, so the
        evaluation and the reassigner agree on what "balanced" means.
        """
        n_clusters = self.system.assignment.n_clusters
        values = np.zeros(n_clusters)
        for cluster_id, report in reports.items():
            hits = sum(count for _cat, count in report.category_hits)
            weight = sum(w for _cat, w in report.category_weights)
            if weight > 0:
                values[cluster_id] = hits / weight
        return jain_fairness(values)

    def build_observed_stats(
        self, reports: dict[int, m.LoadReport]
    ) -> tuple[CategoryStats, Assignment]:
        """Turn the leaders' reports into MaxFair_Reassign inputs.

        Popularity estimates are the per-category hit counts; per-category
        capacity weights are the members' hit-proportional capacity splits
        aggregated in Phase 1.  The assignment view is "category s is
        served by the cluster that reported hits for it", falling back to
        the system's authoritative mapping for silent categories.
        """
        n_categories = self.system.n_categories
        popularity = np.zeros(n_categories)
        weights = np.zeros(n_categories)
        mapping = self.system.assignment.category_to_cluster.copy()
        for cluster_id, report in reports.items():
            for category_id, hits in report.category_hits:
                popularity[category_id] += hits
                mapping[category_id] = cluster_id
            for category_id, weight in report.category_weights:
                weights[category_id] += weight
        # Categories with no observed traffic keep a nominal weight so they
        # do not look infinitely attractive to the reassigner.
        weights[weights <= 0] = weights[weights > 0].min() if np.any(weights > 0) else 1.0
        stats = CategoryStats(
            popularity=popularity,
            contributor_count=np.maximum(weights, 1.0),
            capacity_units=weights,
            storage_weight=weights,
        )
        assignment = Assignment(
            category_to_cluster=mapping,
            n_clusters=self.system.assignment.n_clusters,
            move_counters=self.system.assignment.move_counters.copy(),
        )
        return stats, assignment

    def rebalance(
        self,
        leaders: dict[int, int],
        reports: dict[int, m.LoadReport],
        round_id: int,
    ) -> ReassignResult:
        """Phase 4: run MaxFair_Reassign and broadcast the notices."""
        system = self.system
        stats, assignment = self.build_observed_stats(reports)
        result = maxfair_reassign_from_stats(
            stats,
            assignment,
            fairness_threshold=self.config.high_threshold,
            max_moves=self.config.max_moves,
        )
        for move in result.moves:
            if obs.TRACE.enabled:
                obs.TRACE.emit(
                    "rebalance_move",
                    t=system.sim.now,
                    round=round_id,
                    category=move.category_id,
                    source=move.source_cluster,
                    target=move.target_cluster,
                )
            notice = plan_category_move(
                system, move.category_id, move.source_cluster, move.target_cluster
            )
            coordinator = leaders.get(move.source_cluster)
            if coordinator is None:
                coordinator = next(iter(leaders.values()))
            broadcast_notice(system, notice, coordinator)
        system.sim.run()
        return result

    # ------------------------------------------------------------------
    # the whole round
    # ------------------------------------------------------------------
    def _enter_phase(self, round_id: int, phase: str) -> obs.Timer:
        """Trace the phase transition; time the phase's wall-clock cost."""
        if obs.TRACE.enabled:
            obs.TRACE.emit(
                "adapt_phase",
                t=self.system.sim.now,
                round=round_id,
                phase=phase,
            )
        return obs.Timer(obs.histogram(f"adapt.phase.{phase}_s"))

    def run_round(self, round_id: int = 0) -> AdaptationOutcome:
        """Run Phases 0-4; rebalancing only happens below the low threshold."""
        system = self.system
        bytes_before = system.network.stats.bytes_sent
        obs.counter("adapt.rounds").inc()
        with self._enter_phase(round_id, "elect"):
            leaders = self.elect_leaders()
        with self._enter_phase(round_id, "monitor"):
            self.monitor(leaders, round_id)
        with self._enter_phase(round_id, "exchange"):
            reports = self.exchange_reports(leaders, round_id)
        self.last_reports = reports
        with self._enter_phase(round_id, "evaluate"):
            fairness = self.evaluate_fairness(reports)
        obs.gauge("adapt.observed_fairness").set(fairness)
        outcome = AdaptationOutcome(
            round_id=round_id,
            leaders=leaders,
            observed_fairness=fairness,
            rebalanced=False,
            bytes_before=bytes_before,
        )
        if fairness < self.config.low_threshold and leaders:
            with self._enter_phase(round_id, "rebalance"):
                result = self.rebalance(leaders, reports, round_id)
            outcome.rebalanced = True
            outcome.reassign_result = result
            outcome.moved_categories = [move.category_id for move in result.moves]
            obs.counter("adapt.rebalance_rounds").inc()
            obs.counter("adapt.category_moves").inc(len(result.moves))
        outcome.bytes_after = system.network.stats.bytes_sent
        obs.counter("adapt.bytes_used").inc(outcome.bytes_used)
        return outcome
