"""Protocol message payloads.

Every overlay message travels through :class:`repro.sim.network.Network`
with a ``kind`` string (used for traffic breakdowns) and one of the frozen
dataclasses below as payload.  Sizes follow the paper's cost discussion:
control messages are small and constant; document transfers carry the
document size.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.overlay.metadata import DCRTEntry

__all__ = [
    "WIRE_TYPES",
    "to_wire",
    "from_wire",
    "DocInfo",
    "QueryMessage",
    "QueryResponse",
    "QueryMiss",
    "Busy",
    "PublishRequest",
    "PublishReply",
    "JoinRequest",
    "JoinReply",
    "LeaveNotice",
    "HitCountRequest",
    "HitCountReply",
    "LoadReport",
    "ReassignNotice",
    "TransferRequest",
    "TransferData",
    "GossipDigest",
    "CapabilityAnnounce",
    "LeaderProbe",
    "LeaderProbeReply",
    "Ack",
    "Ping",
    "Pong",
    "ManifestUpdate",
    "ChunkRequest",
    "ChunkData",
    "ChunkRepair",
    "CONTROL_SIZE",
]

#: Size in bytes charged for a small control message.
CONTROL_SIZE = 256


@dataclass(frozen=True, slots=True)
class DocInfo:
    """What a peer knows about a document it stores or transfers."""

    doc_id: int
    categories: tuple[int, ...]
    size_bytes: int


@dataclass(frozen=True, slots=True)
class QueryMessage:
    """A query being processed (Section 3.3).

    ``remaining`` is the number of results still wanted (the paper's ``m``
    decreased by matches found along the way); ``hops`` counts overlay
    forwarding steps so far.
    """

    query_id: int
    requester_id: int
    category_id: int
    remaining: int
    hops: int = 0
    #: cluster the requester believes serves the category — used by moved-
    #: category redirection (Section 6.1.2, lazy rebalancing step 3).
    target_cluster: int = -1
    #: specific document wanted, or -1 for any documents of the category.
    #: Document retrieval is the paper's main use case; nodes that do not
    #: hold the document locate a replica holder through cluster metadata.
    target_doc_id: int = -1


@dataclass(frozen=True, slots=True)
class QueryResponse:
    """Documents matching a query, returned to the requester.

    The response *is* the download: it carries the documents' metadata and
    is sized as their content, so the requester can cache what it received
    (future-work item viii).
    """

    query_id: int
    doc_ids: tuple[int, ...]
    responder_id: int
    hops: int
    #: piggybacked DCRT corrections (lazy-rebalance step 4).
    dcrt_updates: tuple[tuple[int, DCRTEntry], ...] = ()
    #: metadata of the served documents (for requester-side caching).
    doc_infos: tuple[DocInfo, ...] = ()


@dataclass(frozen=True, slots=True)
class QueryMiss:
    """Signals that a branch of the query exhausted without new results."""

    query_id: int
    responder_id: int
    hops: int


@dataclass(frozen=True, slots=True)
class Busy:
    """Overload signal: the responder shed the query instead of serving it.

    Sent fire-and-forget (never through the reliable channel — retrying
    an overload signal at an overloaded node would be self-defeating).
    ``retry_after`` is the responder's back-off hint; the requester waits
    at least that long before failing over to another cluster member.
    """

    query_id: int
    responder_id: int
    retry_after: float


@dataclass(frozen=True, slots=True)
class PublishRequest:
    """Announce a contribution to a category (Section 6.2, step 4)."""

    publisher_id: int
    doc_id: int
    category_id: int
    #: the cluster the publisher believes serves the category, with its
    #: freshness; receivers correct stale beliefs in their reply.
    believed_entry: DCRTEntry = DCRTEntry(0, 0)


@dataclass(frozen=True, slots=True)
class PublishReply:
    """Response to a publish: the receiver's routing knowledge.

    If the category has moved, ``dcrt_updates`` tells the publisher where
    to go next (Section 6.2, step 5).  ``accepted`` is True when the
    receiver actually serves the category's cluster.
    """

    category_id: int
    accepted: bool
    responder_id: int
    dcrt_updates: tuple[tuple[int, DCRTEntry], ...] = ()
    cluster_members: tuple[int, ...] = ()


@dataclass(frozen=True, slots=True)
class JoinRequest:
    """A new node contacting a bootstrap node (Section 6.3, step 2)."""

    joiner_id: int


@dataclass(frozen=True, slots=True)
class JoinReply:
    """Bootstrap metadata handed to a joiner: DCRT and NRT snapshots."""

    responder_id: int
    dcrt_snapshot: tuple[tuple[int, DCRTEntry], ...]
    nrt_snapshot: tuple[tuple[int, tuple[int, ...]], ...]


@dataclass(frozen=True, slots=True)
class LeaveNotice:
    """A departing node warning its cluster (Section 6.3).

    Lists the documents that become unavailable so cluster peers can
    re-replicate ones whose desired replication degree would be violated.
    """

    leaver_id: int
    cluster_id: int
    doc_ids: tuple[int, ...]


@dataclass(frozen=True, slots=True)
class HitCountRequest:
    """Phase 1 of adaptation: the leader asks for per-category hit counters.

    Forwarded recursively over the cluster graph; the sender becomes the
    receiver's parent in the on-the-fly tree (Section 6.1.2, Phase 1).
    """

    round_id: int
    cluster_id: int
    leader_id: int
    #: how long the receiver may wait for its own children before giving
    #: up.  Shrinks multiplicatively per tree level so that children always
    #: finalize (and reply) before their parent's own timeout fires.
    timeout_budget: float = 5.0


@dataclass(frozen=True, slots=True)
class HitCountReply:
    """Aggregated per-category hits flowing back up the monitoring tree.

    Carries both the hit counters (popularity estimates) and the members'
    capacity-share weights (the Section 4.3.3 denominator estimates) so the
    leader ends the round with the full per-category picture of its cluster.
    """

    round_id: int
    cluster_id: int
    counts: tuple[tuple[int, int], ...]  # (category_id, hits)
    weights: tuple[tuple[int, float], ...]  # (category_id, capacity share)
    subtree_size: int


@dataclass(frozen=True, slots=True)
class LoadReport:
    """Phase 2: a cluster leader sharing its cluster's load figures.

    ``category_weights`` are the members' capacity shares per category
    aggregated in Phase 1 — the decentralized estimate of the Section
    4.3.3 denominator, which Phase 3's fairness evaluation and Phase 4's
    reassignment both use (they must agree, or rebalancing oscillates).
    """

    round_id: int
    cluster_id: int
    leader_id: int
    category_hits: tuple[tuple[int, int], ...]
    category_weights: tuple[tuple[int, float], ...]
    capacity_units: float
    n_members: int


@dataclass(frozen=True, slots=True)
class ReassignNotice:
    """Phase 4 outcome: a category moved from one cluster to another.

    Carries the bumped ``move_counter`` so late or duplicated notices
    cannot roll the mapping back (Section 6.1.2, conflict resolution).
    """

    category_id: int
    source_cluster: int
    target_cluster: int
    move_counter: int
    #: pairings of (source node, destination node) for the data transfer.
    transfer_pairs: tuple[tuple[int, int], ...] = ()
    #: (source node, documents it is designated to ship): the coordinator
    #: partitions the category's document set over the source nodes using
    #: its cluster metadata, so each document travels once even though hot
    #: replicas sit on every source node.  Sources without an entry fall
    #: back to shipping everything they hold.
    source_docs: tuple[tuple[int, tuple[int, ...]], ...] = ()
    #: ownership epoch being claimed for the target cluster.  0 keeps the
    #: legacy (unfenced) protocol; when durability is armed, peers reject
    #: notices whose epoch does not exceed their recorded epoch for the
    #: category — a stale pre-partition owner cannot reclaim a category
    #: after the heal (single-owner-per-epoch).
    epoch: int = 0


@dataclass(frozen=True, slots=True)
class TransferRequest:
    """A destination node pulling a document group from its paired source."""

    category_id: int
    requester_id: int
    doc_ids: tuple[int, ...]


@dataclass(frozen=True, slots=True)
class TransferData:
    """Documents shipped to a destination node (sized as their content)."""

    category_id: int
    doc_ids: tuple[int, ...]
    total_bytes: int


@dataclass(frozen=True, slots=True)
class GossipDigest:
    """Anti-entropy exchange of DCRT entries (epidemic dissemination)."""

    sender_id: int
    entries: tuple[tuple[int, DCRTEntry], ...]


@dataclass(frozen=True, slots=True)
class CapabilityAnnounce:
    """Pre-election information exchange (Section 6.1.1).

    Nodes inform cluster neighbours of their computing/storage/bandwidth
    capabilities and forward what they heard from others, so that by
    election time every member has "a quite clear picture" of the cluster.
    """

    cluster_id: int
    capabilities: tuple[tuple[int, float], ...]  # (node_id, capacity_units)


@dataclass(frozen=True, slots=True)
class LeaderProbe:
    """Liveness probe sent to the believed leader during adaptation."""

    round_id: int
    cluster_id: int
    prober_id: int


@dataclass(frozen=True, slots=True)
class LeaderProbeReply:
    """The leader confirming it is alive."""

    round_id: int
    cluster_id: int
    leader_id: int


@dataclass(frozen=True, slots=True)
class Ack:
    """Receipt acknowledgement for a reliably-sent message.

    ``delivery_id`` is the sender-side id that stays stable across
    retransmissions, so any attempt's ack settles the delivery.
    """

    delivery_id: int
    receiver_id: int


@dataclass(frozen=True, slots=True)
class Ping:
    """Heartbeat probe from the failure detector (Section 6.1's liveness
    assumption made explicit): "are you there?"."""

    probe_id: int
    prober_id: int


@dataclass(frozen=True, slots=True)
class Pong:
    """Heartbeat reply: the probed node confirming liveness."""

    probe_id: int
    responder_id: int


@dataclass(frozen=True, slots=True)
class ManifestUpdate:
    """A document manifest on the wire (graceful-shutdown handoff).

    Chunk hashes are 63-bit integers (see :mod:`repro.content.chunks`),
    so the whole manifest stays within the codec's scalar types.
    """

    doc_id: int
    size_bytes: int
    chunk_size: int
    version: int
    chunk_hashes: tuple[int, ...]
    holders: tuple[int, ...] = ()


@dataclass(frozen=True, slots=True)
class ChunkRequest:
    """Ask a holder for one chunk of a document (content data plane).

    Flows through the holder's bounded service queue when the service
    model is enabled: ``query_id``/``requester_id``/``category_id``
    satisfy the queue's admission and BUSY-shed paths, and
    ``service_units`` scales service time with the chunk's bytes so
    bandwidth is a first-class load dimension.
    """

    request_id: int
    fetch_id: int
    requester_id: int
    doc_id: int
    chunk_index: int
    chunk_bytes: int
    category_id: int = -1

    @property
    def query_id(self) -> int:
        """Alias for the service queue's BUSY/shed accounting; chunk
        request ids live in a namespace disjoint from query ids."""
        return self.request_id

    @property
    def service_units(self) -> float:
        """Service cost relative to one control-sized query."""
        return max(1.0, self.chunk_bytes / 65_536)


@dataclass(frozen=True, slots=True)
class ChunkData:
    """One chunk answered (or refused) by a holder.

    ``found=False`` means the responder no longer holds the chunk (the
    document was dropped or cache-evicted mid-transfer); the fetcher
    fails over to another source instead of failing the fetch.
    """

    request_id: int
    fetch_id: int
    responder_id: int
    doc_id: int
    chunk_index: int
    chunk_hash: int
    size_bytes: int
    found: bool = True


@dataclass(frozen=True, slots=True)
class ChunkRepair:
    """Read-repair push: the verified chunk sent back to a stale replica,
    with the bumped manifest version."""

    doc_id: int
    chunk_index: int
    chunk_hash: int
    repairer_id: int
    version: int


# ----------------------------------------------------------------------
# wire codec
# ----------------------------------------------------------------------
#
# The simulated network passes payload objects by reference, but anything
# that wants to cross a process boundary (persisted traces, replaying a
# recorded fault schedule, an eventual real transport) needs a lossless
# JSON-safe encoding.  ``to_wire`` / ``from_wire`` round-trip every payload
# type above exactly: tuples come back as tuples, nested ``DCRTEntry`` /
# ``DocInfo`` values come back as their own types.

#: payload type name -> class, for decoding.
WIRE_TYPES: dict[str, type] = {}


def _register_wire_types() -> None:
    for name in __all__:
        obj = globals().get(name)
        if isinstance(obj, type) and dataclasses.is_dataclass(obj):
            WIRE_TYPES[obj.__name__] = obj


def _encode(value):
    if isinstance(value, DCRTEntry):
        return {"$": "DCRTEntry", "v": [value.cluster_id, value.move_counter]}
    if isinstance(value, DocInfo):
        return {
            "$": "DocInfo",
            "v": [value.doc_id, [int(c) for c in value.categories], value.size_bytes],
        }
    if isinstance(value, tuple):
        return [_encode(item) for item in value]
    if isinstance(value, (int, float, str, bool)) or value is None:
        return value
    raise TypeError(f"cannot encode {type(value).__name__} for the wire")


def _decode(value):
    if isinstance(value, dict):
        tag = value.get("$")
        if tag == "DCRTEntry":
            cluster_id, move_counter = value["v"]
            return DCRTEntry(int(cluster_id), int(move_counter))
        if tag == "DocInfo":
            doc_id, categories, size_bytes = value["v"]
            return DocInfo(
                doc_id=int(doc_id),
                categories=tuple(int(c) for c in categories),
                size_bytes=int(size_bytes),
            )
        raise TypeError(f"unknown wire tag {tag!r}")
    if isinstance(value, list):
        return tuple(_decode(item) for item in value)
    return value


def to_wire(payload) -> dict:
    """Encode a protocol payload into a JSON-safe dict.

    The result contains only dicts, lists, strings, numbers, bools, and
    nulls, so ``json.dumps`` accepts it directly.
    """
    cls = type(payload)
    if cls.__name__ not in WIRE_TYPES or WIRE_TYPES[cls.__name__] is not cls:
        raise TypeError(f"{cls.__name__} is not a registered wire type")
    fields = {
        field.name: _encode(getattr(payload, field.name))
        for field in dataclasses.fields(payload)
    }
    return {"type": cls.__name__, "fields": fields}


def from_wire(record: dict):
    """Decode a :func:`to_wire` record back into its payload object."""
    cls = WIRE_TYPES.get(record["type"])
    if cls is None:
        raise TypeError(f"unknown wire type {record['type']!r}")
    kwargs = {name: _decode(value) for name, value in record["fields"].items()}
    return cls(**kwargs)


_register_wire_types()
