"""The paper's P2P overlay: metadata, protocols, and dynamics.

Implements Section 3 (architecture and query processing) and Section 6
(dynamics) on top of the :mod:`repro.sim` substrate:

* :mod:`repro.overlay.metadata` — the Figure 1 node data structures: the
  Document Table (DT), the Document Category Routing Table (DCRT), and the
  Node Routing Table (NRT);
* :mod:`repro.overlay.messages` — protocol message types;
* :mod:`repro.overlay.peer` — per-node protocol behaviour, including the
  two-step query processing of Section 3.3 and hit-counter bookkeeping;
* :mod:`repro.overlay.cluster` — cluster graphs, spanning-tree
  construction, and leader election (Section 6.1.1);
* :mod:`repro.overlay.publish` / :mod:`repro.overlay.join` — the publish
  and join/leave protocols (Sections 6.2, 6.3);
* :mod:`repro.overlay.adaptation` — the four-phase adaptation mechanism
  (Section 6.1.2);
* :mod:`repro.overlay.rebalance` — the lazy rebalancing protocol with
  ``move_counter`` conflict resolution;
* :mod:`repro.overlay.epidemic` — anti-entropy dissemination of metadata
  updates;
* :mod:`repro.overlay.routing_indices` — the pure-P2P routing-indices
  alternative to cluster metadata (after Crespo & Garcia-Molina);
* :mod:`repro.overlay.cache` — the requester-side document cache
  (LRU/LFU) that registers cached copies as servable holders;
* :mod:`repro.overlay.replication_manager` — the demand-adaptive
  replication control loop (grow fast on pressure, shrink slowly on
  idle, QoS-aware placement);
* :mod:`repro.overlay.system` — :class:`~repro.overlay.system.P2PSystem`,
  the façade that wires a built system instance into a live simulation.
"""

from repro.overlay.cache import DocumentCache
from repro.overlay.metadata import DCRT, NRT, DocumentTable
from repro.overlay.replication_manager import (
    ReplicationConfig,
    ReplicationManager,
)
from repro.overlay.system import P2PSystem, P2PSystemConfig

__all__ = [
    "DCRT",
    "NRT",
    "DocumentCache",
    "DocumentTable",
    "P2PSystem",
    "P2PSystemConfig",
    "ReplicationConfig",
    "ReplicationManager",
]
