"""Per-node protocol behaviour.

A :class:`Peer` is one live node in the simulated overlay.  It owns the
Figure 1 metadata (DT / DCRT / NRT), its stored documents, and per-category
hit counters, and implements the node-side of every protocol in the paper:

* the two-step query processing of Section 3.3 (serve locally, forward to
  cluster neighbours, loop-break on the query id, redirect queries for
  moved categories per the lazy-rebalancing protocol);
* the publish protocol of Section 6.2 (with the cluster-0 default for
  previously empty categories and moved-category retries);
* the join/leave protocol of Section 6.3 (including free-rider dummy
  publishes and leave notices);
* capability dissemination and leader election (Section 6.1.1);
* the Phase-1 monitoring tree: hit-counter aggregation with first-seen
  parent selection, duplicate suppression, and timeouts for dead children
  (Section 6.1.2);
* the node side of the lazy rebalancing protocol: metadata updates with
  move counters, paired document-group transfers, pull-on-demand for
  not-yet-transferred content, and piggybacked DCRT corrections;
* anti-entropy gossip of DCRT entries.

Peers interact with the rest of the world only through their
:class:`repro.transport.Transport` (messages, timers, and the clock) and
the :class:`PeerHooks` callback object (for things the experiment
harness wants to observe) — the same protocol code runs over the
discrete-event simulator and over real sockets (:mod:`repro.live`).
"""

from __future__ import annotations

import warnings
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from repro import obs
# Submodule import on purpose: ``repro.content`` re-exports from
# modules that import this package, so going through its __init__ here
# would close an import cycle.
from repro.content.chunks import CHUNK_REQUEST_ID_BASE, ContentConfig
from repro.durability import durable_state
from repro.overlay import messages as m
from repro.overlay.cache import DocumentCache
from repro.overlay.cluster import elect_leader
from repro.overlay.messages import DocInfo
from repro.overlay.metadata import DCRT, DCRTEntry, NRT, DocumentTable
from repro.reliability.channel import ReliabilityConfig, ReliableChannel
from repro.overlay.service import ServiceConfig, ServiceQueue
from repro.reliability.detector import FailureDetector
from repro.sim.network import Message
from repro.transport import ReliableTransport, Transport, as_transport

__all__ = ["DocInfo", "PeerConfig", "PeerHooks", "Peer"]

# Shared across all peers (process-wide totals); cached at import time so
# the hot paths pay one attribute call, not a registry lookup.
_TRACE = obs.TRACE
_C_QUERIES_ISSUED = obs.counter("overlay.queries_issued")
_C_QUERIES_SERVED = obs.counter("overlay.queries_served")
_C_QUERIES_FORWARDED = obs.counter("overlay.queries_forwarded")
_C_QUERIES_FAILED = obs.counter("overlay.queries_failed")
_C_GOSSIP_SENT = obs.counter("overlay.gossip_messages")
_C_QUERY_FAILOVERS = obs.counter("reliability.query_failovers")
#: total loop-detection entries across all peers (leak watchdog).
_G_SEEN_QUERIES = obs.gauge("overlay.seen_query_entries")

_NO_SUSPECTS: frozenset[int] = frozenset()


@dataclass(frozen=True, slots=True)
class PeerConfig:
    """Tunables for peer behaviour."""

    nrt_capacity: int = 128
    #: number of known cluster members a publish announcement reaches.
    publish_fanout: int = 8
    #: retries when a publish reply redirects to a moved category's cluster.
    max_publish_retries: int = 8
    #: simulated-time budget for a monitoring subtree before giving up on
    #: missing children.
    monitoring_timeout: float = 5.0
    #: upper bound on the stagger applied to scheduled group transfers
    #: ("the first opportune time", Section 6.1.2 step 2).
    transfer_stagger: float = 2.0
    #: requester-side query cache (future-work item viii): number of
    #: retrieved documents kept as servable replicas, policy-evicted.
    #: 0 disables caching.
    cache_capacity: int = 0
    #: cache replacement policy; see :data:`repro.overlay.cache.CACHE_POLICIES`.
    cache_policy: str = "lru"
    #: most-recent query ids remembered for loop detection; bounds what
    #: used to be unbounded growth over long runs.
    seen_query_capacity: int = 4096
    #: ack/retry channel, query failover, and failure-detector knobs
    #: (off by default — protocols stay fire-and-forget).
    reliability: ReliabilityConfig = ReliabilityConfig()
    #: per-peer service model: finite service rate, bounded intake queue,
    #: and admission control (off by default — serving stays instant).
    service: ServiceConfig = ServiceConfig()
    #: content data plane: chunked transfer, multi-source fetch, repair
    #: loops (off by default — documents stay metadata-only tokens).
    content: ContentConfig = ContentConfig()


@dataclass(frozen=True, slots=True)
class MisbehaviorConfig:
    """How an armed peer misbehaves (scenario-engine fault injection).

    ``bogus_responses``
        Answer every query with a fabricated document id and *no*
        matching metadata.  Honest servers always ship one ``DocInfo``
        per claimed doc (they serve from their own store), so the
        requester-side integrity check rejects these without settling
        the query — an armed failover deadline retries other members.
    ``forge_infos``
        Harden the bogus responses with complete fabricated metadata so
        they pass the requester-side check.  Exists so tests can prove
        the system-level ``response-integrity`` invariant catches what
        the local check cannot.
    ``stale_gossip``
        Replay the DCRT digest captured at arming time in every
        outgoing gossip push, forever.  Receivers ignore stale entries
        by move-counter ordering, and the armed peer still merges
        incoming corrections, so the damage is bounded to wasted bytes.
    """

    bogus_responses: bool = False
    forge_infos: bool = False
    stale_gossip: bool = False
    #: fabricated doc ids start here, far above any real document.
    bogus_doc_base: int = 10_000_000


class PeerHooks:
    """Observation callbacks; the default implementation ignores everything.

    The experiment harness (:class:`repro.overlay.system.P2PSystem`)
    overrides what it needs — e.g. recording query responses or learning
    that a peer joined a cluster so the cluster graph can be updated.
    """

    def on_query_response(self, peer: "Peer", response: m.QueryResponse) -> None:
        """A response for a query this peer originated arrived."""

    def on_query_failed(self, peer: "Peer", query_id: int, reason: str) -> None:
        """A query could not even be dispatched (no live target known)."""

    def on_bogus_response(self, peer: "Peer", response: m.QueryResponse) -> None:
        """The peer rejected a response that failed the integrity check."""

    def on_document_stored(self, peer: "Peer", doc_id: int) -> None:
        """A peer stored a document (contribution, replica, or transfer)."""

    def on_document_dropped(self, peer: "Peer", doc_id: int) -> None:
        """A peer dropped a stored document."""

    def on_request_served(self, peer: "Peer") -> None:
        """The peer answered a query (its ``requests_served`` advanced)."""

    def lookup_holders(
        self, peer: "Peer", cluster_id: int, doc_id: int
    ) -> tuple[int, ...]:
        """Cluster metadata lookup: which cluster nodes store ``doc_id``.

        Models the Section 3.1 cluster metadata "describing which documents
        are stored by which cluster nodes" (kept at every node or at super
        peers).  The default implementation knows nothing.
        """
        return ()

    def on_cluster_joined(self, peer: "Peer", cluster_id: int) -> None:
        """The peer became a member of a cluster (via publish or join)."""

    def on_monitoring_complete(
        self, peer: "Peer", cluster_id: int, round_id: int,
        counts: dict[int, int], weights: dict[int, float], subtree_size: int,
    ) -> None:
        """A leader finished aggregating its cluster's hit counters."""

    def on_load_report(self, peer: "Peer", report: m.LoadReport) -> None:
        """A leader received another cluster's load report."""

    def on_transfer_complete(
        self, peer: "Peer", category_id: int, doc_ids: tuple[int, ...]
    ) -> None:
        """A document-group transfer landed at this peer."""

    def on_leave_notice(self, peer: "Peer", notice: m.LeaveNotice) -> None:
        """A cluster fellow announced departure."""


@dataclass(slots=True)
class _MonitoringRound:
    """Per-round state of the Phase-1 hit-counter aggregation."""

    round_id: int
    cluster_id: int
    parent_id: int  # own id when this peer is the aggregation root
    pending_children: int
    counts: dict[int, int]
    weights: dict[int, float]
    subtree_size: int = 1
    finished: bool = False


@dataclass(slots=True)
class _QueryAttempt:
    """Failover state of a query this peer originated (reliability on).

    ``tried`` accumulates dispatch targets so each deadline expiry
    retries against a *different* NRT member of the target cluster.
    """

    query_id: int
    category_id: int
    m_results: int
    target_doc_id: int
    tried: set[int] = field(default_factory=set)
    attempts: int = 0
    settled: bool = False


@dataclass(slots=True)
class _PendingTransfer:
    """A document group owed to this peer by its paired source node."""

    category_id: int
    source_id: int
    requested: bool = False
    #: queries waiting for the content (pull-on-demand, lazy step 4).
    waiting_queries: list[m.QueryMessage] = field(default_factory=list)


class Peer:
    """One live node of the overlay.

    Parameters
    ----------
    node_id, capacity_units:
        Identity and processing capacity (Section 4.3.1 units).
    network:
        Legacy spelling of ``transport``: a simulated ``Network`` (or
        any ``Transport``), coerced via ``as_transport``.  The peer
        registers its handler on creation.
    rng:
        Protocol randomness (random target selection, gossip partners).
    hooks:
        Observation callbacks.
    config:
        Behaviour tunables.
    jitter_rng:
        Named stream for retry-backoff jitter; consulted only when a
        retransmission actually fires, so loss-free runs never touch it.
    transport:
        The world this peer lives in (keyword-only; exclusive with
        ``network``).  :class:`repro.transport.SimTransport` for the
        simulator, :class:`repro.live.AsyncioTransport` for sockets.
    """

    def __init__(
        self,
        node_id: int,
        capacity_units: float,
        network=None,
        rng: np.random.Generator | None = None,
        hooks: PeerHooks | None = None,
        config: PeerConfig | None = None,
        jitter_rng: np.random.Generator | None = None,
        *,
        transport: Transport | None = None,
    ) -> None:
        if transport is None:
            transport = network
        elif network is not None:
            raise TypeError("pass either network= or transport=, not both")
        if transport is None:
            raise TypeError("Peer requires a transport= (or legacy network=)")
        if rng is None:
            raise TypeError("Peer requires an rng")
        base = as_transport(transport)
        self.node_id = node_id
        self.capacity_units = capacity_units
        #: the world seam every send, timer, and clock read goes through;
        #: rebound below to the reliability wrapper when acks are on.
        self.transport: Transport = base
        self.rng = rng
        self.hooks = hooks if hooks is not None else PeerHooks()
        self.config = config if config is not None else PeerConfig()

        self.dt = DocumentTable()
        self.dcrt = DCRT()
        self.nrt = NRT(max_nodes_per_cluster=self.config.nrt_capacity)
        #: documents stored locally, with their metadata.
        self.docs: dict[int, DocInfo] = {}
        #: clusters this node is a member of.
        self.memberships: set[int] = set()
        #: cluster id -> neighbour node ids in the cluster graph.
        self.cluster_neighbors: dict[int, set[int]] = {}
        #: per-category requests served (the paper's load measure).
        self.hit_counters: dict[int, int] = {}
        self.requests_served = 0
        #: doc queries this node *routed* (metadata lookups / redirects)
        #: without serving content — the super peer's directory workload.
        self.queries_routed = 0
        #: capability knowledge per cluster (Section 6.1.1 gossip).
        self.known_capabilities: dict[int, dict[int, float]] = {}
        self.believed_leader: dict[int, int] = {}
        #: cluster id -> super-peer node holding the cluster metadata, when
        #: the deployment runs in super-peer mode (Section 3's hybrid
        #: alternative); empty in the fully-replicated-metadata mode.
        self.super_peers: dict[int, int] = {}
        #: category -> highest ownership epoch this peer has adopted.
        #: Epochs fence ReassignNotices when durability is armed (all
        #: zero otherwise — the legacy unfenced protocol).
        self.ownership_epochs: dict[int, int] = {}
        #: durability journal (None unless the deployment attaches one).
        self._journal = None
        #: True between a power loss (memory wiped) and the replay that
        #: restores durable state on recovery.
        self._lost_memory = False

        #: reliable delivery: both halves of the ack/retry protocol plus
        #: the heartbeat failure detector.  Constructed unconditionally —
        #: the receiver side (ack + dedup) must work even when this peer
        #: does not itself send reliably; the sender side only engages
        #: when ``config.reliability.enabled``.
        self._reliability = self.config.reliability
        self.channel = ReliableChannel(
            node_id,
            base,
            self._reliability,
            jitter_rng=jitter_rng,
            on_give_up=self._on_delivery_give_up,
        )
        self.detector = FailureDetector(node_id, base, self._reliability)
        if self._reliability.enabled:
            # Reliability composes as a transport wrapper: kinds wanting
            # ack/retry route through the channel, the rest pass straight
            # to the base transport — one send path either way.
            self.transport = ReliableTransport(base, self.channel)
        #: bounded service queue in front of query processing; None keeps
        #: the historical instant-serve behaviour (and registers none of
        #: the overload metrics).
        self._service = (
            ServiceQueue(self, self.config.service)
            if self.config.service.enabled
            else None
        )
        #: chunk-protocol endpoint (content data plane); None keeps
        #: documents as metadata-only tokens with zero extra state.
        if self.config.content.enabled:
            # Runtime import: repro.content.fetcher imports this module's
            # package at load time, so binding it here breaks the cycle.
            from repro.content.fetcher import PeerContent

            self._content = PeerContent(self, self.config.content)
        else:
            self._content = None

        #: recently seen query ids (loop detection), LRU-bounded.
        self._seen_queries: "OrderedDict[int, None]" = OrderedDict()
        #: query id -> failover state for queries this peer originated.
        self._query_attempts: dict[int, _QueryAttempt] = {}
        #: (src, delivery_id) -> times the protocol handler ran for it;
        #: the exactly-once chaos invariant asserts every count is 1.
        self._applied_counts: "OrderedDict[tuple[int, int], int]" = OrderedDict()
        self._monitoring: dict[tuple[int, int], _MonitoringRound] = {}
        self._publish_retries: dict[tuple[int, int], int] = {}
        #: category -> transfer owed to us during a category move.
        self._pending_transfers: dict[int, _PendingTransfer] = {}
        #: category -> destination partners this node (as a source) must
        #: split its document group across.
        self._transfer_partners: dict[int, tuple[int, ...]] = {}
        #: category -> documents the coordinator designated this node to
        #: ship (deduplicates replicated content across source nodes).
        self._designated_docs: dict[int, tuple[int, ...]] = {}
        #: requester-side cache of retrieved (servable) documents; see
        #: PeerConfig.cache_capacity / cache_policy.
        self._cache = DocumentCache(
            self.config.cache_capacity, self.config.cache_policy
        )
        #: (cluster, round) probes awaiting a leader's liveness reply.
        self._pending_probes: set[tuple[int, int]] = set()
        #: armed misbehavior mode (scenario fault injection); None = honest.
        self.misbehavior: MisbehaviorConfig | None = None
        #: DCRT digest frozen at arming time (stale_gossip mode).
        self._stale_gossip_digest: tuple | None = None

        self._dispatch = {
            "query": self._handle_query,
            "query_response": self._handle_query_response,
            "busy": self._handle_busy,
            "publish_request": self._handle_publish_request,
            "publish_reply": self._handle_publish_reply,
            "join_request": self._handle_join_request,
            "join_reply": self._handle_join_reply,
            "leave_notice": self._handle_leave_notice,
            "capability": self._handle_capability,
            "hit_count_request": self._handle_hit_count_request,
            "hit_count_reply": self._handle_hit_count_reply,
            "load_report": self._handle_load_report,
            "leader_probe": self._handle_leader_probe,
            "leader_probe_reply": self._handle_leader_probe_reply,
            "reassign_notice": self._handle_reassign_notice,
            "transfer_request": self._handle_transfer_request,
            "transfer_data": self._handle_transfer_data,
            "gossip": self._handle_gossip,
            "gossip_reply": self._handle_gossip_reply,
            "ack": self._handle_ack,
            "ping": self._handle_ping,
            "pong": self._handle_pong,
            "chunk_request": self._handle_chunk_request,
            "chunk_data": self._handle_chunk_data,
            "chunk_repair": self._handle_chunk_repair,
            "manifest_update": self._handle_manifest_update,
        }
        base.register(node_id, self.handle_message)

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    @property
    def network(self):
        """Deprecated: the simulated network under the transport stack.

        Kept for external callers that still poke the network directly;
        raises ``AttributeError`` when the peer runs over a transport
        with no simulated network underneath (the live stack).
        """
        warnings.warn(
            "Peer.network is deprecated: use Peer.transport (the simulated "
            "network, when present, is Peer.transport.network)",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.transport.network

    def handle_message(self, message: Message) -> None:
        """Network entry point: ack/dedup reliable traffic, then dispatch."""
        self.detector.note_alive(message.src)
        if self.channel.observe(message):
            return  # duplicate of an already-applied reliable delivery
        if message.delivery_id >= 0:
            key = (message.src, message.delivery_id)
            previous = self._applied_counts.get(key)
            self._applied_counts[key] = 1 if previous is None else previous + 1
            if previous is None:
                while len(self._applied_counts) > self._reliability.dedup_capacity:
                    self._applied_counts.popitem(last=False)
        handler = self._dispatch.get(message.kind)
        if handler is None:
            raise ValueError(f"peer {self.node_id}: unknown kind {message.kind!r}")
        handler(message)

    def arm_misbehavior(self, config: MisbehaviorConfig) -> None:
        """Switch this peer into a misbehaving mode (scenario injection).

        For ``stale_gossip`` the current DCRT snapshot is frozen now and
        replayed in every future gossip push; the peer's *own* DCRT keeps
        merging honestly, so only its outgoing digests lie.
        """
        self.misbehavior = config
        if config.stale_gossip:
            self._stale_gossip_digest = tuple(self.dcrt.snapshot().items())

    def _send(self, dst: int, kind: str, payload, size: int = m.CONTROL_SIZE) -> None:
        # One send path for every configuration: the reliability branch
        # lives in the transport stack (ReliableTransport), not here.
        self.transport.send(self.node_id, dst, kind, payload, size_bytes=size)

    def _on_delivery_give_up(self, dst: int, kind: str) -> None:
        """A reliable delivery exhausted its attempts: evidence of death."""
        self.detector.note_missed(dst)

    def suspects(self) -> frozenset[int] | set[int]:
        """Nodes the failure detector currently believes dead."""
        if self._reliability.enabled and self.detector.suspects:
            return self.detector.suspects
        return _NO_SUSPECTS

    def _handle_ack(self, message: Message) -> None:
        self.channel.handle_ack(message.payload)

    def _handle_ping(self, message: Message) -> None:
        ping: m.Ping = message.payload
        self._send(
            ping.prober_id,
            "pong",
            m.Pong(probe_id=ping.probe_id, responder_id=self.node_id),
        )

    def _handle_pong(self, message: Message) -> None:
        self.detector.handle_pong(message.payload)

    # ------------------------------------------------------------------
    # content data plane (chunk protocol; see repro.content)
    # ------------------------------------------------------------------
    @property
    def content_state(self) -> PeerContent | None:
        """This peer's chunk-protocol endpoint (None when disabled)."""
        return self._content

    def _handle_chunk_request(self, message: Message) -> None:
        if self._content is None:
            return  # data plane disabled here; the request is lost
        request: m.ChunkRequest = message.payload
        if self._service is not None:
            # Chunk serving is member-side work like query serving: it
            # pays admission control and byte-proportional service time.
            self._service.offer(request)
            return
        self._content.serve_chunk(request)

    def _handle_chunk_data(self, message: Message) -> None:
        if self._content is not None:
            self._content.handle_chunk_data(message.payload)

    def _handle_chunk_repair(self, message: Message) -> None:
        if self._content is not None:
            self._content.handle_chunk_repair(message.payload)

    def _handle_manifest_update(self, message: Message) -> None:
        if self._content is not None:
            self._content.handle_manifest_update(message.payload)

    def heartbeat_once(self) -> None:
        """One failure-detector round: ping a few known contacts.

        Round-driven (see ``P2PSystem.run_failure_detector_rounds``)
        rather than self-scheduling, so run-to-quiescence callers still
        drain.  Targets are drawn from the same pool gossip uses: cluster
        neighbours first, NRT contacts as the fallback.
        """
        partners: set[int] = set()
        for neighbors in self.cluster_neighbors.values():
            partners |= neighbors
        if not partners:
            for cluster_id in self.nrt.clusters():
                partners.update(self.nrt.nodes_in(cluster_id))
        partners.discard(self.node_id)
        if not partners:
            return
        pool = sorted(partners)
        fanout = min(self._reliability.probe_fanout, len(pool))
        for index in self.rng.permutation(len(pool))[:fanout]:
            self.detector.probe(pool[int(index)])

    # ------------------------------------------------------------------
    # storage
    # ------------------------------------------------------------------
    def store_document(self, info: DocInfo) -> None:
        """Store a document locally (contribution, replica, or transfer)."""
        self.docs[info.doc_id] = info
        self.dt.add(info.doc_id, info.categories)
        # Write-ahead: the store is journaled before any hook can
        # acknowledge it to the rest of the deployment.
        if self._journal is not None:
            self._journal.record(
                "store", info.doc_id, info.size_bytes, list(info.categories)
            )
        self.hooks.on_document_stored(self, info.doc_id)

    def drop_document(self, doc_id: int) -> None:
        if doc_id in self.docs:
            if self._journal is not None:
                self._journal.record("drop", doc_id)
            self.hooks.on_document_dropped(self, doc_id)
        self.docs.pop(doc_id, None)
        self.dt.remove(doc_id)

    def stored_bytes(self) -> int:
        return sum(info.size_bytes for info in self.docs.values())

    def pull_documents(
        self, source_id: int, category_id: int, doc_ids: Iterable[int]
    ) -> None:
        """Pull specific documents from a holder (replica placement).

        Used by the demand-adaptive replication manager: the source
        answers with ``transfer_data`` sized as the documents' content, so
        creating a replica pays real transfer bytes — and the arriving
        copies register in the holder directory via ``store_document``.
        """
        self._send(
            source_id,
            "transfer_request",
            m.TransferRequest(
                category_id=category_id,
                requester_id=self.node_id,
                doc_ids=tuple(doc_ids),
            ),
        )

    # ------------------------------------------------------------------
    # introspection (read-only views for invariant checkers)
    # ------------------------------------------------------------------
    def doc_ids(self) -> list[int]:
        """Sorted ids of all locally stored documents."""
        return sorted(self.docs)

    def dcrt_items(self) -> list[tuple[int, DCRTEntry]]:
        """Sorted ``(category_id, entry)`` pairs of the local DCRT."""
        return self.dcrt.items()

    def reliable_application_counts(self) -> dict[tuple[int, int], int]:
        """Copy of the (src, delivery_id) -> handler-run counts window.

        Exactly-once effects under at-least-once delivery means every
        count is 1; the chaos invariant checker asserts exactly that.
        """
        return dict(self._applied_counts)

    def seen_query_count(self) -> int:
        """Current size of the bounded loop-detection window."""
        return len(self._seen_queries)

    def transfer_backlog(self) -> dict[int, int]:
        """Category -> number of queries parked on a pending transfer.

        Non-empty entries at quiescence mean a transfer pull was lost and
        the queries it was holding will never be answered — exactly the
        kind of leak the chaos harness watches for.
        """
        return {
            category_id: len(pending.waiting_queries)
            for category_id, pending in sorted(self._pending_transfers.items())
            if pending.waiting_queries
        }

    def service_snapshot(self) -> dict | None:
        """Service-queue accounting, or None when the model is disabled."""
        return None if self._service is None else self._service.snapshot()

    def cache_stats(self) -> dict:
        """Public accounting view of the requester-side cache.

        Always available (zeros when caching is disabled); the replica
        manager and the caching experiments read demand signals from here
        instead of reaching into private state.
        """
        return self._cache.stats()

    def cache_owns(self, doc_id: int) -> bool:
        """True when ``doc_id`` is held as an evictable cached copy."""
        return self._cache.owns(doc_id)

    def cache_promote(self, doc_id: int) -> bool:
        """Pin a cached copy: keep the stored document, stop tracking it
        as evictable.

        Used by the replication manager to convert a transient cached
        copy into a managed replica without re-shipping bytes the node
        already holds.  Returns False when the document is not
        cache-owned (nothing changes).
        """
        return self._cache.discard(doc_id)

    def handle_crash(self) -> None:
        """The host crashed: shed all accepted service-queue work.

        Called by the deployment (``P2PSystem.crash_node``) at the moment
        of the crash — a dead node must not keep a scheduled service
        completion armed or hold admitted queries forever.
        """
        if self._service is not None:
            self._service.on_crash()
        if self._content is not None:
            self._content.on_crash()

    def clear_failure_state(self) -> None:
        """Forget pre-crash liveness evidence; called when this node heals.

        While the node was crashed its already-armed retry and probe
        timers kept firing with no acks or pongs able to arrive, so it
        accrued suspicion of peers that were fine all along.  Rejoining
        with that stale suspect set would make the healed node silently
        drop queries it should forward (NRT selection excludes suspects).
        """
        self.detector.reset()
        self.channel.cancel_all()

    def join_cluster(self, cluster_id: int, known_members: Iterable[int] = ()) -> None:
        """Become a member of ``cluster_id`` and learn some fellows."""
        newly = cluster_id not in self.memberships
        self.memberships.add(cluster_id)
        self.nrt.add(cluster_id, self.node_id)
        self.nrt.add_many(cluster_id, known_members)
        self.cluster_neighbors.setdefault(cluster_id, set())
        capabilities = self.known_capabilities.setdefault(cluster_id, {})
        capabilities[self.node_id] = self.capacity_units
        if newly:
            if self._journal is not None:
                self._journal.record("join", cluster_id)
            self.hooks.on_cluster_joined(self, cluster_id)

    def set_cluster_neighbors(self, cluster_id: int, neighbors: Iterable[int]) -> None:
        self.cluster_neighbors[cluster_id] = set(neighbors) - {self.node_id}

    # ------------------------------------------------------------------
    # durability (repro.durability): journal hookup, power loss, recovery
    # ------------------------------------------------------------------
    @property
    def journal(self):
        """This peer's durability journal (None when durability is off)."""
        return self._journal

    def attach_journal(self, journal) -> None:
        """Arm durability: every future durable change is journaled.

        The journal's snapshot callback is bound to this peer's live
        state, and a baseline snapshot is compacted immediately so a
        power loss right after attach still recovers the bootstrap
        state.
        """
        self._journal = journal
        journal.snapshot_fn = lambda: durable_state(self, journal.flags)
        self.dcrt.on_change = self._journal_dcrt_change
        if self._content is not None:
            self._content.on_manifest = self._journal_manifest
        journal.compact()

    def _journal_dcrt_change(self, category_id: int, entry: DCRTEntry) -> None:
        if self._journal is not None:
            self._journal.record(
                "dcrt", category_id, entry.cluster_id, entry.move_counter
            )

    def _journal_manifest(self, doc_id: int, manifest) -> None:
        if self._journal is not None:
            self._journal.record(
                "manifest",
                doc_id,
                manifest.size_bytes,
                manifest.chunk_size,
                manifest.version,
            )

    def lose_power(self) -> None:
        """Amnesia crash: volatile memory is gone; the disk survives.

        Called by ``P2PSystem.power_loss`` after ``handle_crash``.  What
        survives is exactly what lives on disk — the journal, partially
        fetched chunks, and chunk-corruption marks.  Documents are shed
        through ``drop_document`` so deployment hooks keep the holder
        directory consistent, but with the journal detached for the
        wipe: losing memory is not an acknowledged drop.
        """
        journal, self._journal = self._journal, None
        try:
            for doc_id in list(self.docs):
                self.drop_document(doc_id)
        finally:
            self._journal = journal
        self.dcrt = DCRT(
            on_change=self._journal_dcrt_change if journal is not None else None
        )
        self.nrt = NRT(max_nodes_per_cluster=self.config.nrt_capacity)
        self.memberships.clear()
        self.cluster_neighbors.clear()
        self.hit_counters.clear()
        self.requests_served = 0
        self.queries_routed = 0
        self.known_capabilities.clear()
        self.believed_leader.clear()
        self.super_peers.clear()
        self.ownership_epochs.clear()
        self._seen_queries.clear()
        self._query_attempts.clear()
        self._applied_counts.clear()
        self._monitoring.clear()
        self._publish_retries.clear()
        self._pending_transfers.clear()
        self._transfer_partners.clear()
        self._designated_docs.clear()
        self._cache = DocumentCache(
            self.config.cache_capacity, self.config.cache_policy
        )
        self._pending_probes.clear()
        self._stale_gossip_digest = None
        self.detector.reset()
        self.channel.lose_memory()
        if self._content is not None:
            self._content.lose_power()
        self._lost_memory = True

    @property
    def lost_memory(self) -> bool:
        """True while this peer awaits a durable-state replay."""
        return self._lost_memory

    def restore_durable_state(self, state: dict) -> None:
        """Replay a materialized snapshot+WAL state after a power loss.

        The journal is detached for the replay — restoring already
        durable state must not re-journal it (a crash loop would grow
        the log unboundedly).  Hooks still fire so the deployment's
        holder directory and membership views heal alongside the peer.
        """
        journal, self._journal = self._journal, None
        try:
            for doc_id, size_bytes, categories in state["docs"]:
                self.store_document(
                    DocInfo(
                        doc_id=doc_id,
                        categories=tuple(categories),
                        size_bytes=size_bytes,
                    )
                )
            for category_id, cluster_id, counter in state["dcrt"]:
                self.dcrt.set(category_id, cluster_id, counter)
            for category_id, epoch in state["epochs"]:
                self.ownership_epochs[category_id] = epoch
            for cluster_id in state["memberships"]:
                self.join_cluster(cluster_id)
            if self._content is not None and state["manifests"]:
                # Runtime import mirrors the PeerContent construction in
                # __init__ (repro.content imports this package).
                from repro.content.manifest import build_manifest

                for doc_id, size_bytes, chunk_size, version in state[
                    "manifests"
                ]:
                    self._content.manifests[doc_id] = build_manifest(
                        doc_id, size_bytes, chunk_size, version=version
                    )
        finally:
            self._journal = journal
        self._lost_memory = False

    # ------------------------------------------------------------------
    # queries (Section 3.3)
    # ------------------------------------------------------------------
    def start_query(
        self,
        query_id: int,
        category_id: int,
        m_results: int,
        target_doc_id: int = -1,
    ) -> None:
        """Step 1 of query processing, at the requesting node.

        Maps the (pre-categorized) query to its cluster via the DCRT, picks
        a random cluster node via the NRT, and dispatches.  Fails when no
        member of the cluster is known — "if no live node exists, the query
        will fail".  With ``target_doc_id`` set, the query asks for a
        specific document (the retrieval case); otherwise it asks for up to
        ``m_results`` documents of the category.
        """
        if m_results < 1:
            raise ValueError(f"m_results must be >= 1, got {m_results}")
        cluster_id = self.dcrt.cluster_of(category_id)
        _C_QUERIES_ISSUED.value += 1
        if _TRACE.enabled:
            _TRACE.emit(
                "query_issue",
                t=self.transport.now,
                node=self.node_id,
                query=query_id,
                category=category_id,
            )
        if self._reliability.enabled:
            state = _QueryAttempt(
                query_id=query_id,
                category_id=category_id,
                m_results=m_results,
                target_doc_id=target_doc_id,
            )
            self._query_attempts[query_id] = state
            self._try_query(state)
            return
        target = self.nrt.random_node(cluster_id, self.rng)
        if target is None:
            self._fail_query(query_id, "no-known-member")
            return
        message = m.QueryMessage(
            query_id=query_id,
            requester_id=self.node_id,
            category_id=category_id,
            remaining=m_results,
            hops=1,
            target_cluster=cluster_id,
            target_doc_id=target_doc_id,
        )
        self._send(target, "query", message)

    def _fail_query(self, query_id: int, reason: str) -> None:
        _C_QUERIES_FAILED.value += 1
        if _TRACE.enabled:
            _TRACE.emit(
                "query_fail",
                t=self.transport.now,
                node=self.node_id,
                query=query_id,
                reason=reason,
            )
        self.hooks.on_query_failed(self, query_id, reason)

    def _try_query(self, state: _QueryAttempt) -> None:
        """One failover dispatch attempt, with an end-to-end deadline.

        The target cluster is re-read from the DCRT each attempt (the
        category may have moved between attempts).  Targets exclude both
        already-tried nodes and the failure detector's suspects; if that
        empties the candidate set, the exclusions are relaxed in order —
        wrong suspicion must not fail a query a plain retry could save.
        """
        cluster_id = self.dcrt.cluster_of(state.category_id)
        suspects = self.suspects()
        avoid = state.tried | suspects if suspects else state.tried
        target = self.nrt.random_node(cluster_id, self.rng, exclude=avoid)
        if target is None and state.tried:
            target = self.nrt.random_node(cluster_id, self.rng, exclude=suspects)
        if target is None and suspects:
            target = self.nrt.random_node(cluster_id, self.rng)
        if target is None:
            self._query_attempts.pop(state.query_id, None)
            self._fail_query(state.query_id, "no-known-member")
            return
        state.tried.add(target)
        state.attempts += 1
        armed_attempts = state.attempts
        self._send(
            target,
            "query",
            m.QueryMessage(
                query_id=state.query_id,
                requester_id=self.node_id,
                category_id=state.category_id,
                remaining=state.m_results,
                hops=1,
                target_cluster=cluster_id,
                target_doc_id=state.target_doc_id,
            ),
        )

        def on_deadline() -> None:
            current = self._query_attempts.get(state.query_id)
            if current is not state or state.settled:
                return  # answered, failed, or superseded
            if state.attempts != armed_attempts:
                return  # a BUSY-triggered failover already re-dispatched
            if state.attempts >= self._reliability.query_attempts:
                self._query_attempts.pop(state.query_id, None)
                self._fail_query(state.query_id, "deadline-exhausted")
                return
            _C_QUERY_FAILOVERS.value += 1
            if _TRACE.enabled:
                _TRACE.emit(
                    "query_failover",
                    t=self.transport.now,
                    node=self.node_id,
                    query=state.query_id,
                    attempt=state.attempts,
                )
            self._try_query(state)

        self.transport.schedule(self._reliability.query_deadline, on_deadline)

    def _handle_query(self, message: Message) -> None:
        """Step 2, at a target node: serve, redirect, or forward."""
        query: m.QueryMessage = message.payload
        if query.query_id in self._seen_queries:
            self._seen_queries.move_to_end(query.query_id)
            return  # loop broken via idQ (Section 3.3, step 2b)
        self._seen_queries[query.query_id] = None
        _G_SEEN_QUERIES.value += 1
        while len(self._seen_queries) > self.config.seen_query_capacity:
            self._seen_queries.popitem(last=False)
            _G_SEEN_QUERIES.value -= 1

        if self.misbehavior is not None and self.misbehavior.bogus_responses:
            self._send_bogus_response(query)
            return

        entry = self.dcrt.entry(query.category_id)
        serving_cluster = entry.cluster_id
        if serving_cluster not in self.memberships:
            # This node no longer serves the category (it moved, or the
            # requester's NRT was stale): forward toward the cluster the
            # local DCRT names (lazy-rebalancing step 3).  The requester's
            # original believed cluster stays in the message so the serving
            # node can piggyback the metadata correction (step 4).
            target = self.nrt.random_node(
                serving_cluster, self.rng, exclude=self.suspects()
            )
            if target is not None:
                _C_QUERIES_FORWARDED.value += 1
                self._send(
                    target,
                    "query",
                    m.QueryMessage(
                        query_id=query.query_id,
                        requester_id=query.requester_id,
                        category_id=query.category_id,
                        remaining=query.remaining,
                        hops=query.hops + 1,
                        target_cluster=query.target_cluster,
                        target_doc_id=query.target_doc_id,
                    ),
                )
            return

        if self._service is not None:
            # Member-side work (serving, replica lookups, graph fan-out)
            # costs service time and intake-queue admission; the routing
            # above stays instant — forwarding is cheap, serving is not.
            self._service.offer(query)
            return
        self._process_query(query)

    def _process_query(self, query: m.QueryMessage) -> None:
        """Member-side query work: serve, redirect over metadata, or fan out.

        With the service model enabled this runs at service *completion*
        (after queueing delay plus ``1/capacity_units`` service time);
        otherwise it runs inline, exactly as it historically did.
        """
        if isinstance(query, m.ChunkRequest):
            # Chunk serving admitted through the service queue completes
            # here, after queueing delay and byte-proportional service.
            if self._content is not None:
                self._content.serve_chunk(query)
            return

        entry = self.dcrt.entry(query.category_id)
        pending = self._pending_transfers.get(query.category_id)

        if query.target_doc_id >= 0:
            # Document retrieval: serve locally, wait for an in-flight
            # transfer, or locate a replica holder via cluster metadata.
            if self.dt.has_document(query.target_doc_id):
                self._serve_docs(query, (query.target_doc_id,), entry)
            elif pending is not None:
                pending.waiting_queries.append(query)
                self._request_transfer(
                    pending, urgent=True, doc_id=query.target_doc_id
                )
            else:
                holders = [
                    holder
                    for holder in self.hooks.lookup_holders(
                        self, entry.cluster_id, query.target_doc_id
                    )
                    if holder != self.node_id
                ]
                forwarded = m.QueryMessage(
                    query_id=query.query_id,
                    requester_id=query.requester_id,
                    category_id=query.category_id,
                    remaining=query.remaining,
                    hops=query.hops + 1,
                    target_cluster=query.target_cluster,
                    target_doc_id=query.target_doc_id,
                )
                if holders:
                    choice = holders[int(self.rng.integers(0, len(holders)))]
                    self.queries_routed += 1
                    self._send(choice, "query", forwarded)
                else:
                    # Super-peer mode: this node holds no cluster metadata;
                    # route the query to the cluster's super peer, which
                    # does (one extra hop — the hybrid trade-off).
                    super_peer = self.super_peers.get(entry.cluster_id)
                    if super_peer is not None and super_peer != self.node_id:
                        self.queries_routed += 1
                        self._send(super_peer, "query", forwarded)
            return

        matched = self.dt.docs_in_category(query.category_id)
        if not matched and pending is not None:
            # Destination of an in-flight move without the content yet:
            # pull from the coupled source node, then answer (lazy step 4).
            pending.waiting_queries.append(query)
            self._request_transfer(pending, urgent=True)
            return

        self._serve_and_forward(query, matched, entry)

    def _serve_docs(
        self,
        query: m.QueryMessage,
        doc_ids: tuple[int, ...],
        entry: DCRTEntry,
    ) -> None:
        """Answer the requester with ``doc_ids`` and account the load.

        The response carries the documents themselves (sized as their
        content), so the requester can cache them.
        """
        self.requests_served += 1
        self.hit_counters[query.category_id] = (
            self.hit_counters.get(query.category_id, 0) + 1
        )
        if len(self._cache):
            for doc_id in doc_ids:
                if self._cache.owns(doc_id):
                    self._cache.served_hits += 1
        self.hooks.on_request_served(self)
        _C_QUERIES_SERVED.value += 1
        if _TRACE.enabled:
            _TRACE.emit(
                "query_serve",
                t=self.transport.now,
                node=self.node_id,
                query=query.query_id,
                hops=query.hops,
                docs=len(doc_ids),
            )
        updates: tuple[tuple[int, DCRTEntry], ...] = ()
        if query.target_cluster != entry.cluster_id:
            # The requester routed on a stale mapping; piggyback the
            # correction (lazy-rebalancing step 4).
            updates = ((query.category_id, entry),)
        infos = tuple(
            self.docs[doc_id] for doc_id in doc_ids if doc_id in self.docs
        )
        payload_bytes = sum(info.size_bytes for info in infos)
        self._send(
            query.requester_id,
            "query_response",
            m.QueryResponse(
                query_id=query.query_id,
                doc_ids=doc_ids,
                responder_id=self.node_id,
                hops=query.hops,
                dcrt_updates=updates,
                doc_infos=infos,
            ),
            size=max(payload_bytes, m.CONTROL_SIZE),
        )

    def _serve_and_forward(
        self,
        query: m.QueryMessage,
        matched: list[int],
        entry: DCRTEntry,
    ) -> None:
        served = tuple(matched[: query.remaining])
        if served:
            self._serve_docs(query, served, entry)
        remaining = query.remaining - len(served)
        if remaining > 0:
            neighbors = self.cluster_neighbors.get(entry.cluster_id, ())
            if neighbors:
                _C_QUERIES_FORWARDED.value += len(neighbors)
            for neighbor in neighbors:
                self._send(
                    neighbor,
                    "query",
                    m.QueryMessage(
                        query_id=query.query_id,
                        requester_id=query.requester_id,
                        category_id=query.category_id,
                        remaining=remaining,
                        hops=query.hops + 1,
                        target_cluster=query.target_cluster,
                    ),
                )

    def _send_bogus_response(self, query: m.QueryMessage) -> None:
        """Answer with fabricated content (armed ``bogus_responses`` mode).

        The fabricated doc id is claimed in ``doc_ids`` but — unless
        ``forge_infos`` hardens the lie — no matching ``DocInfo`` ships,
        which is exactly the asymmetry the requester-side integrity
        check rejects (an honest server serves from its own store, so
        its metadata always covers every claimed doc).
        """
        mis = self.misbehavior
        fake_doc_id = mis.bogus_doc_base + query.query_id
        infos: tuple[DocInfo, ...] = ()
        if mis.forge_infos:
            infos = (
                DocInfo(
                    doc_id=fake_doc_id,
                    categories=(query.category_id,),
                    size_bytes=m.CONTROL_SIZE,
                ),
            )
        # Lazily registered: honest worlds never reach this path, so the
        # counter stays out of their metric snapshots (and goldens).
        obs.counter("overlay.bogus_responses_sent").inc()
        self._send(
            query.requester_id,
            "query_response",
            m.QueryResponse(
                query_id=query.query_id,
                doc_ids=(fake_doc_id,),
                responder_id=self.node_id,
                hops=query.hops,
                doc_infos=infos,
            ),
        )

    def _handle_query_response(self, message: Message) -> None:
        response: m.QueryResponse = message.payload
        if len(response.doc_infos) != len(response.doc_ids):
            # Integrity check: an honest server builds ``doc_infos`` from
            # the documents it actually holds, so metadata always covers
            # every claimed doc id.  A mismatch means fabricated content —
            # reject *without settling*, so an armed failover deadline
            # keeps retrying other members.  (Counter registered lazily:
            # honest runs never take this branch, keeping goldens intact.)
            obs.counter("overlay.bogus_responses_rejected").inc()
            self.hooks.on_bogus_response(self, response)
            return
        state = self._query_attempts.pop(response.query_id, None)
        if state is not None:
            state.settled = True  # disarms any in-flight failover deadline
        for category_id, entry in response.dcrt_updates:
            self.dcrt.merge(category_id, entry)
        if self.config.cache_capacity > 0:
            for info in response.doc_infos:
                self._cache_store(info)
        self.hooks.on_query_response(self, response)

    # ------------------------------------------------------------------
    # overload signals (service model; see repro.overlay.service)
    # ------------------------------------------------------------------
    def _redirect_query(self, query: m.QueryMessage) -> bool:
        """Hand an overflow query to another holder or cluster member.

        The load-based-redirection admission policy: prefer a replica
        holder of the wanted document (cluster metadata), fall back to a
        random fellow member (NRT).  Returns False when nobody else is
        known — the caller sheds instead.
        """
        if isinstance(query, m.ChunkRequest):
            # Chunk requests target one specific holder's bytes; there is
            # no equivalent replica to redirect to from here (the fetcher
            # owns source selection), so overflow falls through to a shed
            # and the requester's BUSY handler fails over.
            return False
        entry = self.dcrt.entry(query.category_id)
        forwarded = m.QueryMessage(
            query_id=query.query_id,
            requester_id=query.requester_id,
            category_id=query.category_id,
            remaining=query.remaining,
            hops=query.hops + 1,
            target_cluster=query.target_cluster,
            target_doc_id=query.target_doc_id,
        )
        if query.target_doc_id >= 0:
            holders = [
                holder
                for holder in self.hooks.lookup_holders(
                    self, entry.cluster_id, query.target_doc_id
                )
                if holder != self.node_id
            ]
            if holders:
                choice = holders[int(self.rng.integers(0, len(holders)))]
                self.queries_routed += 1
                self._send(choice, "query", forwarded)
                return True
        target = self.nrt.random_node(
            entry.cluster_id, self.rng, exclude=self.suspects() | {self.node_id}
        )
        if target is not None:
            self.queries_routed += 1
            self._send(target, "query", forwarded)
            return True
        return False

    def _reject_busy(self, query: m.QueryMessage) -> None:
        """Shed a query: tell the requester to back off and go elsewhere."""
        self._send(
            query.requester_id,
            "busy",
            m.Busy(
                query_id=query.query_id,
                responder_id=self.node_id,
                retry_after=self.config.service.busy_retry_after,
            ),
        )

    def _handle_busy(self, message: Message) -> None:
        """An overloaded member shed our query: back off, then fail over."""
        busy: m.Busy = message.payload
        if busy.query_id >= CHUNK_REQUEST_ID_BASE:
            # A shed chunk request (ids live in their own namespace):
            # the fetcher fails over to another source immediately.
            if self._content is not None:
                self._content.handle_busy(busy)
            return
        state = self._query_attempts.get(busy.query_id)
        if state is None:
            # No failover state (reliability off): the shed is terminal.
            if not self._reliability.enabled:
                self._fail_query(busy.query_id, "overloaded")
            return
        if state.settled:
            return  # another member already answered
        if state.attempts >= self._reliability.query_attempts:
            self._query_attempts.pop(state.query_id, None)
            self._fail_query(state.query_id, "overloaded")
            return
        armed_attempts = state.attempts

        def retry() -> None:
            current = self._query_attempts.get(state.query_id)
            if (
                current is not state
                or state.settled
                or state.attempts != armed_attempts
            ):
                return  # answered, failed, or another busy/deadline acted
            _C_QUERY_FAILOVERS.value += 1
            if _TRACE.enabled:
                _TRACE.emit(
                    "query_busy_failover",
                    t=self.transport.now,
                    node=self.node_id,
                    query=state.query_id,
                    shed_by=busy.responder_id,
                )
            self._try_query(state)

        self.transport.schedule(max(busy.retry_after, 0.0), retry)

    def _cache_store(self, info: DocInfo) -> None:
        """Keep a retrieved document as a servable cached replica.

        Cached copies register in the cluster metadata like any stored
        document, so they absorb future requests for hot content
        (future-work item viii).  Only cache-owned entries are evicted —
        contributions and placed replicas are never touched.
        """
        if self._cache.touch(info.doc_id):
            return
        if info.doc_id in self.docs:
            return  # already stored as contribution/replica
        self.store_document(info)
        for evicted in self._cache.add(info.doc_id):
            self.drop_document(evicted)

    # ------------------------------------------------------------------
    # publish (Section 6.2)
    # ------------------------------------------------------------------
    def publish_document(self, info: DocInfo) -> None:
        """Publish a new local document, one announcement per new category."""
        already_published = {
            category_id
            for category_id in info.categories
            if self.dt.has_category(category_id)
        }
        self.store_document(info)
        for category_id in info.categories:
            if category_id in already_published:
                continue  # step 2: this node already announced to s_i
            self._announce_publish(info.doc_id, category_id)

    def announce_contributions(self) -> None:
        """Announce every category of the already-stored local documents.

        Used by the join protocol: the joiner's contributions are in its DT
        before it has told anyone (Section 6.3 step 2 runs the publish
        protocol "for every document d it wishes to contribute").
        """
        categories = sorted(
            {
                category_id
                for doc_id in self.dt.doc_ids()
                for category_id in self.dt.categories_of(doc_id)
            }
        )
        for category_id in categories:
            self._announce_publish(doc_id=-1, category_id=category_id)

    def dummy_publish(self) -> None:
        """A free-rider's empty publish: join cluster 0 to receive updates."""
        self._announce_publish(doc_id=-1, category_id=-1)

    def _announce_publish(self, doc_id: int, category_id: int) -> None:
        cluster_id = (
            self.dcrt.cluster_of(category_id) if category_id >= 0 else DCRT.DEFAULT_CLUSTER
        )
        known = self.nrt.nodes_in(cluster_id)
        targets = [n for n in known if n != self.node_id][: self.config.publish_fanout]
        if not targets:
            # Nobody known in the target cluster: adopt membership locally;
            # gossip will spread our presence.
            self.join_cluster(cluster_id)
            return
        request = m.PublishRequest(
            publisher_id=self.node_id,
            doc_id=doc_id,
            category_id=category_id,
            believed_entry=self.dcrt.entry(category_id)
            if category_id >= 0
            else DCRTEntry(DCRT.DEFAULT_CLUSTER, 0),
        )
        for target in targets:
            self._send(target, "publish_request", request)

    def _handle_publish_request(self, message: Message) -> None:
        request: m.PublishRequest = message.payload
        category_id = request.category_id
        entry = (
            self.dcrt.entry(category_id)
            if category_id >= 0
            else DCRTEntry(DCRT.DEFAULT_CLUSTER, 0)
        )
        accepted = entry.cluster_id in self.memberships
        updates: tuple[tuple[int, DCRTEntry], ...] = ()
        if category_id >= 0 and entry.move_counter > request.believed_entry.move_counter:
            updates = ((category_id, entry),)
        members: tuple[int, ...] = ()
        if accepted:
            members = tuple(self.nrt.nodes_in(entry.cluster_id))
            # step 5: receivers in the serving cluster record the new node.
            self.nrt.add(entry.cluster_id, request.publisher_id)
        self._send(
            request.publisher_id,
            "publish_reply",
            m.PublishReply(
                category_id=category_id,
                accepted=accepted,
                responder_id=self.node_id,
                dcrt_updates=updates,
                cluster_members=members,
            ),
        )

    def _handle_publish_reply(self, message: Message) -> None:
        reply: m.PublishReply = message.payload
        changed = False
        for category_id, entry in reply.dcrt_updates:
            changed = self.dcrt.merge(category_id, entry) or changed
        if reply.accepted:
            cluster_id = (
                self.dcrt.cluster_of(reply.category_id)
                if reply.category_id >= 0
                else DCRT.DEFAULT_CLUSTER
            )
            self.join_cluster(cluster_id, known_members=reply.cluster_members)
            self._publish_retries.pop((reply.category_id, cluster_id), None)
            return
        if changed and reply.category_id >= 0:
            # The category moved since our announcement: chase it
            # (Section 6.2 step 5's "repeat until the correct cluster").
            key = (reply.category_id, self.dcrt.cluster_of(reply.category_id))
            retries = self._publish_retries.get(key, 0)
            if retries < self.config.max_publish_retries:
                self._publish_retries[key] = retries + 1
                self._announce_publish(doc_id=-1, category_id=reply.category_id)

    # ------------------------------------------------------------------
    # join / leave (Section 6.3)
    # ------------------------------------------------------------------
    def start_join(self, bootstrap_id: int) -> None:
        """Contact an existing node and retrieve its metadata (step 2)."""
        self._send(bootstrap_id, "join_request", m.JoinRequest(joiner_id=self.node_id))

    def _handle_join_request(self, message: Message) -> None:
        request: m.JoinRequest = message.payload
        nrt_snapshot = tuple(
            (cluster_id, tuple(self.nrt.nodes_in(cluster_id)))
            for cluster_id in self.nrt.clusters()
        )
        self._send(
            request.joiner_id,
            "join_reply",
            m.JoinReply(
                responder_id=self.node_id,
                dcrt_snapshot=tuple(self.dcrt.snapshot().items()),
                nrt_snapshot=nrt_snapshot,
            ),
            size=4 * m.CONTROL_SIZE,
        )

    def _handle_join_reply(self, message: Message) -> None:
        reply: m.JoinReply = message.payload
        self.dcrt.merge_snapshot(dict(reply.dcrt_snapshot))
        for cluster_id, members in reply.nrt_snapshot:
            self.nrt.add_many(cluster_id, members)
        if self.docs:
            self.announce_contributions()
        else:
            self.dummy_publish()

    def start_leave(self) -> None:
        """Announce departure to every cluster this node belongs to."""
        for cluster_id in sorted(self.memberships):
            notice = m.LeaveNotice(
                leaver_id=self.node_id,
                cluster_id=cluster_id,
                doc_ids=tuple(sorted(self.docs)),
            )
            for neighbor in self.cluster_neighbors.get(cluster_id, ()):
                self._send(neighbor, "leave_notice", notice)
        self.transport.unregister(self.node_id)

    def _handle_leave_notice(self, message: Message) -> None:
        notice: m.LeaveNotice = message.payload
        self.nrt.remove_node(notice.leaver_id)
        for neighbors in self.cluster_neighbors.values():
            neighbors.discard(notice.leaver_id)
        for capabilities in self.known_capabilities.values():
            capabilities.pop(notice.leaver_id, None)
        # A clean departure is not a failure: drop any heartbeat
        # suspicion evidence about the leaver so it does not linger in
        # the suspect map (the crash/leave asymmetry — recover_node
        # clears crash-era state, but nothing cleared leave-era state).
        self.detector.forget(notice.leaver_id)
        self.hooks.on_leave_notice(self, notice)

    # ------------------------------------------------------------------
    # capability gossip and leader election (Section 6.1.1)
    # ------------------------------------------------------------------
    def announce_capabilities(self) -> None:
        """Tell cluster neighbours everything known about member capacities."""
        for cluster_id in self.memberships:
            capabilities = self.known_capabilities.setdefault(cluster_id, {})
            capabilities[self.node_id] = self.capacity_units
            payload = m.CapabilityAnnounce(
                cluster_id=cluster_id,
                capabilities=tuple(sorted(capabilities.items())),
            )
            for neighbor in self.cluster_neighbors.get(cluster_id, ()):
                self._send(neighbor, "capability", payload)

    def _handle_capability(self, message: Message) -> None:
        announce: m.CapabilityAnnounce = message.payload
        known = self.known_capabilities.setdefault(announce.cluster_id, {})
        for node_id, capacity in announce.capabilities:
            known[node_id] = capacity

    def elect_leaders(self, alive: set[int] | None = None) -> None:
        """Apply the election rule to each cluster's known capabilities.

        The failure detector's suspects are struck from the eligible set
        (a dead leader costs a whole adaptation round); if suspicion
        would leave nobody eligible, it is ignored — a wrong suspect list
        must never block the election entirely.
        """
        suspects = self.suspects()
        for cluster_id in self.memberships:
            capabilities = self.known_capabilities.get(
                cluster_id, {self.node_id: self.capacity_units}
            )
            eligible = alive
            if suspects:
                pool = set(alive) if alive is not None else set(capabilities)
                eligible = (pool - suspects) or pool
            winner = elect_leader(capabilities, alive=eligible)
            if winner is not None:
                self.believed_leader[cluster_id] = winner

    # ------------------------------------------------------------------
    # leader liveness probing (Section 6.1.1: "during the adaptation
    # stage, nodes probe their cluster leaders to assure they are alive")
    # ------------------------------------------------------------------
    def probe_leader(self, cluster_id: int, round_id: int, timeout: float = 2.0) -> None:
        """Probe the believed leader; on timeout, fail over to the next
        most capable known node (excluding the dead one) — Section 6.1.1's
        "in the case of a leader failure, another node is selected"."""
        leader_id = self.believed_leader.get(cluster_id)
        if leader_id is None or leader_id == self.node_id:
            return
        probe_key = (cluster_id, round_id)
        self._pending_probes.add(probe_key)
        self._send(
            leader_id,
            "leader_probe",
            m.LeaderProbe(
                round_id=round_id, cluster_id=cluster_id, prober_id=self.node_id
            ),
        )

        def on_timeout() -> None:
            if probe_key not in self._pending_probes:
                return  # the leader answered in time
            self._pending_probes.discard(probe_key)
            if self._reliability.enabled:
                # Share the evidence: an unresponsive leader is suspect
                # for every protocol, not just this probe.
                self.detector.note_missed(leader_id)
            capabilities = dict(self.known_capabilities.get(cluster_id, {}))
            capabilities.pop(leader_id, None)
            replacement = elect_leader(capabilities)
            if replacement is not None:
                self.believed_leader[cluster_id] = replacement

        self.transport.schedule(timeout, on_timeout)

    def _handle_leader_probe(self, message: Message) -> None:
        probe: m.LeaderProbe = message.payload
        # Answer if this node believes itself to be (a) leader of the
        # cluster; divergent beliefs are tolerated (Section 6.1.1).
        if self.believed_leader.get(probe.cluster_id) == self.node_id:
            self._send(
                probe.prober_id,
                "leader_probe_reply",
                m.LeaderProbeReply(
                    round_id=probe.round_id,
                    cluster_id=probe.cluster_id,
                    leader_id=self.node_id,
                ),
            )

    def _handle_leader_probe_reply(self, message: Message) -> None:
        reply: m.LeaderProbeReply = message.payload
        self._pending_probes.discard((reply.cluster_id, reply.round_id))
        self.believed_leader[reply.cluster_id] = reply.leader_id

    # ------------------------------------------------------------------
    # monitoring: Phase 1 of adaptation (Section 6.1.2)
    # ------------------------------------------------------------------
    def start_monitoring(self, cluster_id: int, round_id: int) -> None:
        """Leader entry point: aggregate the cluster's hit counters."""
        if cluster_id not in self.memberships:
            raise ValueError(
                f"node {self.node_id} is not a member of cluster {cluster_id}"
            )
        round_key = (cluster_id, round_id)
        state = _MonitoringRound(
            round_id=round_id,
            cluster_id=cluster_id,
            parent_id=self.node_id,
            pending_children=0,
            counts=dict(self._local_counts_for(cluster_id)),
            weights=dict(self._local_weights_for(cluster_id)),
        )
        self._monitoring[round_key] = state
        budget = self.config.monitoring_timeout
        request = m.HitCountRequest(
            round_id=round_id,
            cluster_id=cluster_id,
            leader_id=self.node_id,
            timeout_budget=budget * 0.7,
        )
        suspects = self.suspects()
        for neighbor in self.cluster_neighbors.get(cluster_id, ()):
            if neighbor in suspects:
                continue  # routed around instead of timed out
            self._send(neighbor, "hit_count_request", request)
            state.pending_children += 1
        if state.pending_children == 0:
            self._finish_monitoring(state)
        else:
            self._arm_monitoring_timeout(round_key, budget)

    def _local_counts_for(self, cluster_id: int) -> dict[int, int]:
        """This node's hit counters for the categories of ``cluster_id``."""
        return {
            category_id: hits
            for category_id, hits in self.hit_counters.items()
            if self.dcrt.cluster_of(category_id) == cluster_id
        }

    def _local_weights_for(self, cluster_id: int) -> dict[int, float]:
        """Decentralized estimate of this node's capacity share per category.

        The Section 4.3.3 weight is ``u_k * p(D_i(k)) / p(D(k))`` — a split
        of the node's units over its *stored content*.  Without knowing true
        popularities, the node splits its units in proportion to how many
        documents it stores per category.  Crucially this is a property of
        what is stored, not of observed traffic: weights derived from hit
        counters would be self-fulfilling (any load distribution looks fair
        when capacity shares shadow the hits) and rebalancing would never
        converge.
        """
        doc_counts: dict[int, int] = {}
        total_docs = 0
        for info in self.docs.values():
            for category_id in info.categories:
                doc_counts[category_id] = doc_counts.get(category_id, 0) + 1
                total_docs += 1
        if total_docs == 0:
            return {}
        return {
            category_id: self.capacity_units * count / total_docs
            for category_id, count in doc_counts.items()
            if self.dcrt.cluster_of(category_id) == cluster_id
        }

    def _handle_hit_count_request(self, message: Message) -> None:
        request: m.HitCountRequest = message.payload
        round_key = (request.cluster_id, request.round_id)
        if round_key in self._monitoring:
            # Duplicate via another graph path: answer "already counted" so
            # the sender is not left waiting (tree loops broken here).
            self._send(
                message.src,
                "hit_count_reply",
                m.HitCountReply(
                    round_id=request.round_id,
                    cluster_id=request.cluster_id,
                    counts=(),
                    weights=(),
                    subtree_size=0,
                ),
            )
            return
        state = _MonitoringRound(
            round_id=request.round_id,
            cluster_id=request.cluster_id,
            parent_id=message.src,
            pending_children=0,
            counts=dict(self._local_counts_for(request.cluster_id)),
            weights=dict(self._local_weights_for(request.cluster_id)),
        )
        self._monitoring[round_key] = state
        forwarded = m.HitCountRequest(
            round_id=request.round_id,
            cluster_id=request.cluster_id,
            leader_id=request.leader_id,
            timeout_budget=request.timeout_budget * 0.7,
        )
        suspects = self.suspects()
        for neighbor in self.cluster_neighbors.get(request.cluster_id, ()):
            if neighbor == message.src or neighbor in suspects:
                continue
            self._send(neighbor, "hit_count_request", forwarded)
            state.pending_children += 1
        if state.pending_children == 0:
            self._finish_monitoring(state)
        else:
            self._arm_monitoring_timeout(round_key, request.timeout_budget)

    def _arm_monitoring_timeout(
        self, round_key: tuple[int, int], budget: float
    ) -> None:
        def timeout() -> None:
            state = self._monitoring.get(round_key)
            if state is not None and not state.finished:
                state.pending_children = 0
                self._finish_monitoring(state)

        self.transport.schedule(max(budget, 0.1), timeout)

    def _handle_hit_count_reply(self, message: Message) -> None:
        reply: m.HitCountReply = message.payload
        round_key = (reply.cluster_id, reply.round_id)
        state = self._monitoring.get(round_key)
        if state is None or state.finished:
            return
        for category_id, hits in reply.counts:
            state.counts[category_id] = state.counts.get(category_id, 0) + hits
        for category_id, weight in reply.weights:
            state.weights[category_id] = state.weights.get(category_id, 0.0) + weight
        state.subtree_size += reply.subtree_size
        state.pending_children -= 1
        if state.pending_children <= 0:
            self._finish_monitoring(state)

    def _finish_monitoring(self, state: _MonitoringRound) -> None:
        state.finished = True
        if state.parent_id == self.node_id:
            self.hooks.on_monitoring_complete(
                self,
                state.cluster_id,
                state.round_id,
                state.counts,
                state.weights,
                state.subtree_size,
            )
            return
        self._send(
            state.parent_id,
            "hit_count_reply",
            m.HitCountReply(
                round_id=state.round_id,
                cluster_id=state.cluster_id,
                counts=tuple(state.counts.items()),
                weights=tuple(state.weights.items()),
                subtree_size=state.subtree_size,
            ),
            size=2 * m.CONTROL_SIZE,
        )

    def _handle_load_report(self, message: Message) -> None:
        self.hooks.on_load_report(self, message.payload)

    # ------------------------------------------------------------------
    # rebalancing: node side of the lazy protocol (Section 6.1.2)
    # ------------------------------------------------------------------
    def _handle_reassign_notice(self, message: Message) -> None:
        notice: m.ReassignNotice = message.payload
        known_epoch = self.ownership_epochs.get(notice.category_id, 0)
        if notice.epoch or known_epoch:
            # Epoch fencing (durability armed): a notice must strictly
            # advance the category's ownership epoch.  A stale owner
            # resurfacing after a partition heal re-announces its old
            # epoch and is rejected here, whatever its move counter says.
            if notice.epoch <= known_epoch:
                return
            self.ownership_epochs[notice.category_id] = notice.epoch
            if self._journal is not None:
                self._journal.record(
                    "epoch", notice.category_id, notice.epoch
                )
        entry = DCRTEntry(notice.target_cluster, notice.move_counter)
        if not self.dcrt.merge(notice.category_id, entry):
            return  # stale or duplicate notice
        # Source role: remember which destination partners this node must
        # split its group across (the paper divides each category's data
        # "into |Ni| pieces, one per each node" of the destination).
        my_partners = tuple(
            destination_id
            for source_id, destination_id in notice.transfer_pairs
            if source_id == self.node_id
        )
        if my_partners:
            self._transfer_partners[notice.category_id] = my_partners
        for source_id, doc_ids in notice.source_docs:
            if source_id == self.node_id:
                self._designated_docs[notice.category_id] = tuple(doc_ids)
        # Destination role: schedule the pull of this node's piece.
        for source_id, destination_id in notice.transfer_pairs:
            if destination_id == self.node_id:
                pending = _PendingTransfer(
                    category_id=notice.category_id, source_id=source_id
                )
                self._pending_transfers[notice.category_id] = pending
                # Schedule the group transfer for an opportune moment.
                delay = float(self.rng.random()) * self.config.transfer_stagger
                self.transport.schedule(
                    delay, lambda p=pending: self._request_transfer(p)
                )

    def _request_transfer(
        self,
        pending: _PendingTransfer,
        urgent: bool = False,
        doc_id: int | None = None,
    ) -> None:
        """Pull the owed group (or one urgent document) from the source."""
        if urgent and doc_id is not None:
            # Pull-on-demand for a specific document can run even while the
            # bulk group transfer is pending or already requested.
            self._send(
                pending.source_id,
                "transfer_request",
                m.TransferRequest(
                    category_id=pending.category_id,
                    requester_id=self.node_id,
                    doc_ids=(doc_id,),
                ),
            )
            return
        if pending.requested:
            return
        pending.requested = True
        self._send(
            pending.source_id,
            "transfer_request",
            m.TransferRequest(
                category_id=pending.category_id,
                requester_id=self.node_id,
                doc_ids=(),
            ),
        )

    def _group_for_partner(self, category_id: int, partner_id: int) -> list[int]:
        """The slice of this node's category documents owed to ``partner_id``.

        The node ships its *designated* documents (the coordinator's
        deduplicated partition of the category; falls back to everything it
        holds), split deterministically across its partners, so the
        destination cluster collectively receives one copy of everything
        instead of every partner receiving everything.
        """
        designated = self._designated_docs.get(category_id)
        if designated is not None:
            held = sorted(d for d in designated if self.dt.has_document(d))
        else:
            held = sorted(self.dt.docs_in_category(category_id))
        partners = self._transfer_partners.get(category_id, ())
        if partner_id not in partners:
            return held
        index = partners.index(partner_id)
        return held[index :: len(partners)]

    def _handle_transfer_request(self, message: Message) -> None:
        request: m.TransferRequest = message.payload
        if request.doc_ids:
            doc_ids = request.doc_ids  # urgent pull of specific documents
        else:
            doc_ids = tuple(
                self._group_for_partner(request.category_id, request.requester_id)
            )
        infos = [self.docs[d] for d in doc_ids if d in self.docs]
        total = sum(info.size_bytes for info in infos)
        self._send(
            request.requester_id,
            "transfer_data",
            m.TransferData(
                category_id=request.category_id,
                doc_ids=tuple(info.doc_id for info in infos),
                total_bytes=total,
            ),
            size=max(total, m.CONTROL_SIZE),
        )
        # The source keeps its copies for now: its DCRT already routes
        # queries away.  Space is reclaimed lazily (not modelled further).

    def _handle_transfer_data(self, message: Message) -> None:
        data: m.TransferData = message.payload
        per_doc = data.total_bytes // max(1, len(data.doc_ids))
        for doc_id in data.doc_ids:
            self.store_document(
                DocInfo(
                    doc_id=doc_id,
                    categories=(data.category_id,),
                    size_bytes=per_doc,
                )
            )
        pending = self._pending_transfers.get(data.category_id)
        if pending is not None:
            entry = self.dcrt.entry(data.category_id)
            waiting, pending.waiting_queries = pending.waiting_queries, []
            if pending.requested:
                # The bulk group has arrived; future queries go through the
                # normal path (and may still pull individual docs urgently).
                self._pending_transfers.pop(data.category_id, None)
            for query in waiting:
                if query.target_doc_id >= 0:
                    if self.dt.has_document(query.target_doc_id):
                        self._serve_docs(query, (query.target_doc_id,), entry)
                    else:
                        # Not in this piece: locate a holder through the
                        # cluster metadata instead of stalling forever.
                        holders = [
                            holder
                            for holder in self.hooks.lookup_holders(
                                self, entry.cluster_id, query.target_doc_id
                            )
                            if holder != self.node_id
                        ]
                        if holders:
                            choice = holders[
                                int(self.rng.integers(0, len(holders)))
                            ]
                            self._send(choice, "query", query)
                    continue
                matched = self.dt.docs_in_category(query.category_id)
                self._serve_and_forward(query, matched, entry)
        self.hooks.on_transfer_complete(self, data.category_id, data.doc_ids)

    # ------------------------------------------------------------------
    # epidemic dissemination of metadata (lazy step 5)
    # ------------------------------------------------------------------
    def gossip_once(self) -> None:
        """Push-pull the local DCRT with one random known neighbour.

        Partners come from the cluster graph; nodes without cluster
        neighbours (free riders after their dummy publish) fall back to
        NRT contacts so they keep "receiving further updates of NRTs and
        DCRTs" (Section 6.3).
        """
        partners: list[int] = []
        for neighbors in self.cluster_neighbors.values():
            partners.extend(neighbors)
        if not partners:
            for cluster_id in self.nrt.clusters():
                partners.extend(
                    node_id
                    for node_id in self.nrt.nodes_in(cluster_id)
                    if node_id != self.node_id
                )
        if not partners:
            return
        partner = partners[int(self.rng.integers(0, len(partners)))]
        _C_GOSSIP_SENT.value += 1
        if _TRACE.enabled:
            _TRACE.emit(
                "gossip",
                t=self.transport.now,
                node=self.node_id,
                partner=partner,
            )
        entries = tuple(self.dcrt.snapshot().items())
        if (
            self.misbehavior is not None
            and self.misbehavior.stale_gossip
            and self._stale_gossip_digest is not None
        ):
            # Replay the digest frozen at arming time: the push half of
            # push-pull spreads nothing new, but receivers ignore stale
            # entries by move-counter and this peer still merges incoming
            # corrections — so the blast radius is wasted bytes, not
            # divergence (asserted by the gossip-convergence invariant).
            entries = self._stale_gossip_digest
        self._send(
            partner,
            "gossip",
            m.GossipDigest(sender_id=self.node_id, entries=entries),
            size=2 * m.CONTROL_SIZE,
        )

    def _handle_gossip(self, message: Message) -> None:
        digest: m.GossipDigest = message.payload
        newer_here: list[tuple[int, DCRTEntry]] = []
        for category_id, entry in digest.entries:
            local = self.dcrt.entry(category_id)
            if local.move_counter > entry.move_counter:
                newer_here.append((category_id, local))
            else:
                self.dcrt.merge(category_id, entry)
        if newer_here and message.kind == "gossip":
            # Push-pull: send back what the partner is missing.
            self._send(
                digest.sender_id,
                "gossip_reply",
                m.GossipDigest(sender_id=self.node_id, entries=tuple(newer_here)),
            )

    def _handle_gossip_reply(self, message: Message) -> None:
        digest: m.GossipDigest = message.payload
        for category_id, entry in digest.entries:
            self.dcrt.merge(category_id, entry)
