"""Per-peer service model: bounded intake queues and admission control.

The paper's load-balancing machinery (MaxFair assignment, random target
selection, top-m replication) balances *where* queries land, but assumes
every node can absorb whatever the overlay routes to it.  This module
adds the missing capacity model: each peer serves queries one at a time,
taking ``base_service_time / capacity_units`` simulated seconds per
query, with a bounded FIFO intake queue in front of the server.

When the queue is full an admission policy decides what to do with the
overflow:

* ``drop-tail`` — shed the incoming query with a ``BUSY`` signal; the
  requester backs off and fails over to another cluster member.
* ``shed-popular`` — compare the incoming query's category popularity
  (local hit counters) against the hottest queued query and shed the
  more popular of the two.  Hot content is exactly what top-m
  replication copies to other nodes, so its requesters have somewhere
  else to go; cold content may have a single holder.
* ``redirect`` — hand the overflow query directly to another replica
  holder (via the cluster metadata) or cluster member (via the NRT),
  the load-based redirection of Roussopoulos & Baker.

Everything is off by default (``ServiceConfig(enabled=False)``): peers
serve instantly with unbounded intake, exactly as before, and none of
the overload metrics are even registered — deterministic metric
snapshots of non-overload runs stay byte-identical.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro import obs

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.overlay import messages as m
    from repro.overlay.peer import Peer

__all__ = ["ADMISSION_POLICIES", "ServiceConfig", "ServiceQueue"]

#: Admission policies a full intake queue can apply to overflow.
ADMISSION_POLICIES = ("drop-tail", "shed-popular", "redirect")


@dataclass(frozen=True, slots=True)
class ServiceConfig:
    """Knobs for the per-peer service model (off by default)."""

    #: master switch; off keeps query serving instantaneous and
    #: unbounded, with zero extra events, RNG draws, or metrics.
    enabled: bool = False
    #: simulated seconds one query costs a capacity-1 node; a node with
    #: ``capacity_units`` serves each query in ``base / capacity_units``
    #: (Section 4.3.1 units double as a service rate).
    base_service_time: float = 0.05
    #: intake queue bound in front of the single server; 0 = unbounded
    #: (work-conserving but with unbounded waiting — the "protection
    #: off" arm of the overload experiment).
    queue_capacity: int = 16
    #: what to do with overflow when the queue is full.
    policy: str = "drop-tail"
    #: back-off hint carried in the BUSY signal sent for shed queries.
    busy_retry_after: float = 0.5

    def __post_init__(self) -> None:
        if self.base_service_time <= 0:
            raise ValueError(
                f"base_service_time must be > 0, got {self.base_service_time}"
            )
        if self.queue_capacity < 0:
            raise ValueError(
                f"queue_capacity must be >= 0, got {self.queue_capacity}"
            )
        if self.policy not in ADMISSION_POLICIES:
            raise ValueError(
                f"policy must be one of {ADMISSION_POLICIES}, got {self.policy!r}"
            )
        if self.busy_retry_after < 0:
            raise ValueError(
                f"busy_retry_after must be >= 0, got {self.busy_retry_after}"
            )


class ServiceQueue:
    """Single-server FIFO queue gating one peer's query processing.

    Constructed only when ``ServiceConfig.enabled`` — the overload
    metrics below are registered here, lazily, so default-off runs
    register nothing and deterministic snapshots stay byte-identical.

    Accounting invariant (checked by the chaos harness)::

        offered == processed + shed + redirected + depth + in_service
    """

    def __init__(self, peer: "Peer", config: ServiceConfig) -> None:
        self.peer = peer
        self.config = config
        self._queue: deque["m.QueryMessage"] = deque()
        self._in_service = False
        #: query currently occupying the server (None when idle).
        self._current: "m.QueryMessage | None" = None
        #: bumped on crash so already-scheduled completions become no-ops.
        self._epoch = 0
        # local accounting (per peer)
        self.offered = 0
        self.processed = 0
        self.shed = 0
        self.redirected = 0
        self.max_depth = 0
        # process-wide totals, shared by every enabled queue
        self._c_shed = obs.counter("overload.shed")
        self._c_redirected = obs.counter("overload.redirected")
        self._c_busy = obs.counter("overload.busy_signals")
        self._g_depth = obs.gauge("overload.queue_depth")

    # ------------------------------------------------------------------
    # intake
    # ------------------------------------------------------------------
    def offer(self, query: "m.QueryMessage") -> None:
        """Admit, queue, or shed one incoming query."""
        self.offered += 1
        if not self._in_service:
            self._begin(query)
            return
        capacity = self.config.queue_capacity
        if capacity <= 0 or len(self._queue) < capacity:
            self._enqueue(query)
            return
        self._admit_overflow(query)

    def _enqueue(self, query: "m.QueryMessage") -> None:
        self._queue.append(query)
        self._g_depth.value += 1
        if len(self._queue) > self.max_depth:
            self.max_depth = len(self._queue)

    def _admit_overflow(self, incoming: "m.QueryMessage") -> None:
        policy = self.config.policy
        if policy == "redirect" and self.peer._redirect_query(incoming):
            self.redirected += 1
            self._c_redirected.value += 1
            return
        victim = incoming
        if policy == "shed-popular":
            queued = self._hottest_queued()
            if queued is not None and self._popularity(
                queued
            ) > self._popularity(incoming):
                # The queued query is for hotter content (replicated
                # elsewhere by top-m): shed it, keep the cold incoming.
                self._queue.remove(queued)
                self._g_depth.value -= 1
                self._enqueue(incoming)
                victim = queued
        self._shed(victim)

    def _popularity(self, query: "m.QueryMessage") -> int:
        return self.peer.hit_counters.get(query.category_id, 0)

    def _hottest_queued(self) -> "m.QueryMessage | None":
        if not self._queue:
            return None
        return max(self._queue, key=self._popularity)

    def _shed(self, query: "m.QueryMessage") -> None:
        self.shed += 1
        self._c_shed.value += 1
        self._c_busy.value += 1
        self.peer._reject_busy(query)

    # ------------------------------------------------------------------
    # the server
    # ------------------------------------------------------------------
    @property
    def service_time(self) -> float:
        """Per-query service time, inversely proportional to capacity.

        Derived from the peer's *current* ``capacity_units`` at every
        service start, so capacity changes mid-run (adaptive placement on
        capacity tiers, operator retuning) change the service rate for
        the next query instead of being silently ignored.
        """
        return self.config.base_service_time / max(
            self.peer.capacity_units, 1e-9
        )

    def _begin(self, query: "m.QueryMessage") -> None:
        self._in_service = True
        self._current = query
        epoch = self._epoch
        # Bandwidth as a load dimension: payloads carrying bytes (chunk
        # requests from the content data plane) declare ``service_units``
        # proportional to their size; plain queries cost exactly one unit
        # (multiplying by 1.0 is exact, so query-only runs are untouched).
        units = getattr(query, "service_units", 1.0)
        self.peer.transport.schedule(
            self.service_time * units, lambda: self._complete(query, epoch)
        )

    def _complete(self, query: "m.QueryMessage", epoch: int) -> None:
        if epoch != self._epoch:
            return  # the host crashed mid-service; on_crash accounted it
        if not self.peer.transport.is_alive(self.peer.node_id):
            # Belt and suspenders: a crash that bypassed on_crash must not
            # let a dead node keep serving.  The queue is left undrained on
            # purpose — the overload-drain invariant flags the unwired path.
            return
        self._current = None
        self.processed += 1
        self.peer._process_query(query)
        if self._queue:
            self._g_depth.value -= 1
            self._begin(self._queue.popleft())
        else:
            self._in_service = False

    def on_crash(self) -> None:
        """The host died without goodbye: account all accepted work.

        The in-flight query and every queued query are shed — their BUSY
        signals originate from a crashed node, so the network drops them
        and requesters learn of the loss through failover deadlines, just
        like any other message to or from a dead peer.  What matters here
        is conservation: no accepted query may silently vanish from the
        ``offered == processed + shed + redirected + depth + in_service``
        ledger, and the already-scheduled completion must not fire on the
        corpse (the epoch bump disarms it).
        """
        self._epoch += 1
        if self._in_service:
            self._in_service = False
            current, self._current = self._current, None
            if current is not None:
                self._shed(current)
        while self._queue:
            self._g_depth.value -= 1
            self._shed(self._queue.popleft())

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        return len(self._queue)

    @property
    def in_service(self) -> bool:
        return self._in_service

    def snapshot(self) -> dict:
        """Read-only accounting view for tests and invariant checks."""
        return {
            "offered": self.offered,
            "processed": self.processed,
            "shed": self.shed,
            "redirected": self.redirected,
            "depth": len(self._queue),
            "in_service": self._in_service,
            "max_depth": self.max_depth,
            "capacity": self.config.queue_capacity,
        }
