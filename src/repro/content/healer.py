"""Anti-entropy healing: re-replicate under-replicated documents.

One healing round scans every registered manifest, finds documents
whose live full-holder count fell below ``ContentConfig.
replication_floor`` (churn, crashes), and starts verified multi-source
fetches at deterministic targets to bring the count back up.  Targets
prefer live members of the document's home cluster (highest capacity
first, node id as the tie break), falling back to any live peer when
the cluster itself was hollowed out.

Round-driven, like gossip and the replication manager: the healer
never self-schedules, so run-to-quiescence callers still drain.  Call
:meth:`~repro.overlay.system.P2PSystem.run_healing_round` to run one
round and settle the fetches it started.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.content.manifest import ContentManager

__all__ = ["ContentHealer"]


class ContentHealer:
    """Periodic (round-driven) under-replication repair."""

    def __init__(self, manager: "ContentManager") -> None:
        self.manager = manager
        self.rounds_run = 0

    def run_round(self) -> dict:
        """Scan all manifests once; start repair fetches for the gaps.

        Returns a summary: documents scanned, documents found below the
        floor, repair fetches started, and documents that are currently
        unrepairable (no live holder at all — nothing to copy from).
        """
        manager = self.manager
        system = manager.system
        floor = manager.config.replication_floor
        budget = manager.config.heal_fetch_limit
        scanned = below_floor = started = unrepairable = 0
        for doc_id in sorted(manager.manifests):
            scanned += 1
            holders = manager.live_holders(doc_id)
            if not holders:
                unrepairable += 1
                continue
            if len(holders) >= floor:
                continue
            below_floor += 1
            if budget <= 0:
                continue
            for target in self._targets(doc_id, holders):
                if budget <= 0:
                    break
                if manager.fetch(target, doc_id, purpose="heal") is not None:
                    started += 1
                    budget -= 1
        self.rounds_run += 1
        return {
            "scanned": scanned,
            "below_floor": below_floor,
            "fetches": started,
            "unrepairable": unrepairable,
        }

    def _targets(self, doc_id: int, holders: list[int]) -> list[int]:
        """Deterministic re-replication destinations for one document."""
        manager = self.manager
        system = manager.system
        floor = manager.config.replication_floor
        need = floor - len(holders)
        info = manager.doc_info(doc_id)
        candidates: list = []
        if info is not None and info.categories:
            cluster_id = int(
                system.assignment.category_to_cluster[info.categories[0]]
            )
            candidates = [
                peer
                for peer in system.peers_in_cluster(cluster_id)
                if doc_id not in peer.docs
            ]
        if len(candidates) < need:
            in_cluster = {peer.node_id for peer in candidates}
            candidates += [
                peer
                for peer in system.alive_peers()
                if doc_id not in peer.docs and peer.node_id not in in_cluster
            ]
        candidates.sort(key=lambda p: (-p.capacity_units, p.node_id))
        return [peer.node_id for peer in candidates[:need]]
