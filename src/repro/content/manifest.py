"""Per-document manifests and the deployment-level content manager.

The manifest is the content data plane's unit of metadata: the chunk
list (as content hashes), the document size, and a version that
read-repair bumps whenever a fetch pushed correct chunks back to a
stale or corrupt replica.  Manifests are registered alongside the
cluster metadata the deployment already keeps (the holder index behind
``PeerHooks.lookup_holders``), so the fetch scheduler resolves sources
from the same ground truth replica lookups use.

:class:`ContentManager` is constructed by :class:`~repro.overlay.system.
P2PSystem` only when ``ContentConfig.enabled`` — like the service and
replication subsystems, a disabled data plane builds nothing, registers
no metrics, and draws no randomness.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from itertools import count
from typing import TYPE_CHECKING

from repro import obs
from repro.content.chunks import (
    ContentConfig,
    chunk_bytes,
    chunk_hash,
    n_chunks,
)
from repro.content.healer import ContentHealer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.overlay import messages as m
    from repro.overlay.peer import DocInfo, Peer
    from repro.overlay.system import P2PSystem

__all__ = [
    "ContentManager",
    "FetchRecord",
    "Manifest",
    "build_manifest",
    "manifest_from_update",
    "manifest_to_update",
]


@dataclass(frozen=True, slots=True)
class Manifest:
    """Immutable snapshot of a document's chunk metadata."""

    doc_id: int
    size_bytes: int
    chunk_size: int
    version: int
    chunk_hashes: tuple[int, ...]

    @property
    def n_chunks(self) -> int:
        return len(self.chunk_hashes)

    def chunk_bytes(self, index: int) -> int:
        return chunk_bytes(self.size_bytes, index, self.chunk_size)


def build_manifest(
    doc_id: int,
    size_bytes: int,
    chunk_size: int,
    version: int = 0,
) -> Manifest:
    """Derive the manifest of a document from its identity and size."""
    total = n_chunks(size_bytes, chunk_size)
    return Manifest(
        doc_id=doc_id,
        size_bytes=size_bytes,
        chunk_size=chunk_size,
        version=version,
        chunk_hashes=tuple(chunk_hash(doc_id, i) for i in range(total)),
    )


def manifest_to_update(manifest: Manifest, holders=()) -> "m.ManifestUpdate":
    """Encode a manifest (plus a holder hint) as a wire message."""
    from repro.overlay import messages as m

    return m.ManifestUpdate(
        doc_id=manifest.doc_id,
        size_bytes=manifest.size_bytes,
        chunk_size=manifest.chunk_size,
        version=manifest.version,
        chunk_hashes=manifest.chunk_hashes,
        holders=tuple(sorted(holders)),
    )


def manifest_from_update(update: "m.ManifestUpdate") -> Manifest:
    """Decode a :class:`~repro.overlay.messages.ManifestUpdate`."""
    return Manifest(
        doc_id=update.doc_id,
        size_bytes=update.size_bytes,
        chunk_size=update.chunk_size,
        version=update.version,
        chunk_hashes=tuple(update.chunk_hashes),
    )


@dataclass(slots=True)
class FetchRecord:
    """Ledger entry for one multi-source fetch (user, heal, or replicate)."""

    fetch_id: int
    doc_id: int
    requester_id: int
    n_chunks: int
    purpose: str
    started_at: float
    manifest_version: int
    completed_at: float | None = None
    verified: bool = False
    failed: bool = False
    failure: str = ""
    failovers: int = 0
    repairs: int = 0
    bytes_fetched: int = 0
    #: per-chunk hashes as received and verified, set on completion.
    chunk_hashes: tuple[int, ...] = ()

    @property
    def settled(self) -> bool:
        return self.completed_at is not None or self.failed


class ContentManager:
    """Deployment-wide manifest registry, fetch ledger, and healer.

    Holder ground truth is the deployment's existing replica index
    (``P2PSystem._doc_holders``, maintained by the store/drop hooks);
    the manager adds the chunk-level view on top: manifests, partial
    holders (peers mid-fetch that can already serve some chunks), and
    the append-only fetch ledger the integrity invariant audits.
    """

    def __init__(self, system: "P2PSystem", config: ContentConfig) -> None:
        self.system = system
        self.config = config
        #: doc id -> current manifest (version bumps replace the entry).
        self.manifests: dict[int, Manifest] = {}
        #: doc id -> DocInfo used to re-materialize the document at a
        #: fetch's destination (categories + authoritative size).
        self._infos: dict[int, "DocInfo"] = {}
        #: doc id -> node id -> chunk indexes held partially (in-flight
        #: or abandoned fetches); full holders are *not* listed here.
        self.partials: dict[int, dict[int, set[int]]] = {}
        #: append-only fetch ledger (the integrity invariant keeps a
        #: cursor into this list, so entries are never removed).
        self.records: list[FetchRecord] = []
        self._records_by_id: dict[int, FetchRecord] = {}
        self._next_fetch_id = count(1)
        self.healer = ContentHealer(self)
        # process-wide totals; registered here, lazily, so content-off
        # runs keep their metric snapshots byte-identical.
        self._c_fetches = obs.counter("content.fetches")
        self._c_completed = obs.counter("content.fetches_completed")
        self._c_failed = obs.counter("content.fetches_failed")
        self._c_failovers = obs.counter("content.chunk_failovers")
        self._c_repairs = obs.counter("content.read_repairs")
        self._c_heal = obs.counter("content.heal_fetches")
        self._c_bytes = obs.counter("content.bytes_fetched")
        for doc in system.instance.documents.values():
            self._register(doc.doc_id, doc.size_bytes)

    # ------------------------------------------------------------------
    # manifests
    # ------------------------------------------------------------------
    def _register(self, doc_id: int, size_bytes: int) -> Manifest:
        manifest = build_manifest(doc_id, size_bytes, self.config.chunk_size)
        self.manifests[doc_id] = manifest
        return manifest

    def manifest_for(self, doc_id: int) -> Manifest | None:
        """The current manifest of ``doc_id``, or None if unknown."""
        return self.manifests.get(doc_id)

    def note_stored(self, peer: "Peer", doc_id: int) -> None:
        """Hook relay: a peer stored ``doc_id`` (publish, transfer, fetch).

        First sight of a chaos-published document registers its manifest;
        a node holding the full document no longer counts as partial.
        """
        info = peer.docs.get(doc_id)
        if doc_id not in self.manifests and info is not None:
            self._register(doc_id, info.size_bytes)
        if doc_id not in self._infos and info is not None:
            self._infos[doc_id] = info
        self.drop_partial(peer.node_id, doc_id)

    def doc_info(self, doc_id: int) -> "DocInfo | None":
        """The DocInfo a fetch destination should store on completion."""
        info = self._infos.get(doc_id)
        if info is not None:
            return info
        from repro.overlay.peer import DocInfo

        try:
            doc = self.system.instance.documents[doc_id]
        except (IndexError, KeyError):
            return None
        if doc.doc_id != doc_id:
            return None
        info = DocInfo(
            doc_id=doc_id,
            categories=tuple(doc.categories),
            size_bytes=doc.size_bytes,
        )
        self._infos[doc_id] = info
        return info

    def bump_version(self, doc_id: int) -> int:
        """Read-repair pushed correct chunks back: advance the version."""
        manifest = self.manifests.get(doc_id)
        if manifest is None:
            return 0
        manifest = replace(manifest, version=manifest.version + 1)
        self.manifests[doc_id] = manifest
        self._c_repairs.inc()
        return manifest.version

    # ------------------------------------------------------------------
    # holders
    # ------------------------------------------------------------------
    def live_holders(self, doc_id: int) -> list[int]:
        """Sorted live nodes holding the *full* document."""
        network = self.system.network
        return sorted(
            node_id
            for node_id in self.system._doc_holders.get(doc_id, ())
            if network.is_alive(node_id)
        )

    def chunk_sources(self, doc_id: int) -> dict[int, tuple[int, ...]]:
        """Per-chunk live sources: full holders plus partial holders."""
        manifest = self.manifests.get(doc_id)
        if manifest is None:
            return {}
        full = self.live_holders(doc_id)
        sources = {index: list(full) for index in range(manifest.n_chunks)}
        network = self.system.network
        for node_id, held in self.partials.get(doc_id, {}).items():
            if node_id in full or not network.is_alive(node_id):
                continue
            for index in held:
                if index in sources:
                    sources[index].append(node_id)
        return {
            index: tuple(sorted(nodes)) for index, nodes in sources.items()
        }

    def note_partial(self, node_id: int, doc_id: int, index: int) -> None:
        self.partials.setdefault(doc_id, {}).setdefault(node_id, set()).add(
            index
        )

    def drop_partial(self, node_id: int, doc_id: int) -> None:
        held = self.partials.get(doc_id)
        if held is not None:
            held.pop(node_id, None)
            if not held:
                self.partials.pop(doc_id, None)

    # ------------------------------------------------------------------
    # fetches
    # ------------------------------------------------------------------
    def fetch(
        self, requester_id: int, doc_id: int, purpose: str = "fetch"
    ) -> int | None:
        """Start a multi-source fetch of ``doc_id`` at ``requester_id``.

        Returns the fetch id, or None when there is nothing to do (the
        requester already holds the document, is not alive, or the
        document is unknown).  A fetch with no live sources *is* started
        and immediately recorded as failed — unavailability must show up
        in the ledger, not vanish silently.
        """
        peer = self.system.peer(requester_id)
        if peer is None or not self.system.network.is_alive(requester_id):
            return None
        state = peer.content_state
        if state is None:
            return None
        if doc_id in peer.docs:
            return None
        manifest = self.manifests.get(doc_id)
        info = self.doc_info(doc_id)
        if manifest is None or info is None:
            return None
        fetch_id = next(self._next_fetch_id)
        record = FetchRecord(
            fetch_id=fetch_id,
            doc_id=doc_id,
            requester_id=requester_id,
            n_chunks=manifest.n_chunks,
            purpose=purpose,
            started_at=self.system.sim.now,
            manifest_version=manifest.version,
        )
        self.records.append(record)
        self._records_by_id[fetch_id] = record
        self._c_fetches.inc()
        if purpose == "heal":
            self._c_heal.inc()
        state.start_fetch(fetch_id, info, manifest, index=self)
        return fetch_id

    def record_for(self, fetch_id: int) -> FetchRecord | None:
        return self._records_by_id.get(fetch_id)

    def fetch_ledger(self) -> tuple[FetchRecord, ...]:
        return tuple(self.records)

    # callbacks from the per-peer fetchers -----------------------------
    def on_chunk_failover(self, fetch_id: int) -> None:
        self._c_failovers.inc()
        record = self._records_by_id.get(fetch_id)
        if record is not None:
            record.failovers += 1

    def on_read_repair(self, fetch_id: int, doc_id: int) -> int:
        version = self.bump_version(doc_id)
        record = self._records_by_id.get(fetch_id)
        if record is not None:
            record.repairs += 1
            record.manifest_version = version
        return version

    def on_fetch_complete(
        self, fetch_id: int, chunk_hashes: tuple[int, ...], bytes_fetched: int
    ) -> None:
        record = self._records_by_id.get(fetch_id)
        if record is None or record.settled:
            return
        record.completed_at = self.system.sim.now
        record.verified = True
        record.chunk_hashes = chunk_hashes
        record.bytes_fetched = bytes_fetched
        self._c_completed.inc()
        self._c_bytes.value += bytes_fetched

    def on_fetch_failed(self, fetch_id: int, reason: str) -> None:
        record = self._records_by_id.get(fetch_id)
        if record is None or record.settled:
            return
        record.failed = True
        record.failure = reason
        self._c_failed.inc()
