"""Chunk math and content hashes for the simulated data plane.

Documents carry no real bytes — what moves through the network is a
*size*, and what gets verified is a deterministic per-chunk content
hash derived from ``(doc_id, chunk_index)``.  That is enough to model
everything the robustness loop cares about: transfer time (the network
already charges ``size_bytes / bandwidth``), integrity (a corrupt
replica serves a hash that fails verification), and repair (pushing
the correct hash back).

Hashes are 63-bit non-negative integers so chunk messages stay within
the wire codec's scalar types (no raw strings or bytes on the wire).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

__all__ = [
    "CHUNK_REQUEST_ID_BASE",
    "DEFAULT_CHUNK_SIZE",
    "ContentConfig",
    "chunk_bytes",
    "chunk_hash",
    "corrupted_hash",
    "n_chunks",
]

#: default fixed chunk size (bytes); the chaos worlds' 256 KiB documents
#: split into four chunks at this size.
DEFAULT_CHUNK_SIZE = 65_536

#: chunk request ids live far above any workload query id, so a BUSY
#: signal's ``query_id`` identifies which subsystem it belongs to.
CHUNK_REQUEST_ID_BASE = 1_000_000_000_000

_HASH_MASK = (1 << 63) - 1
#: non-zero constant XORed into a hash to model corruption; any non-zero
#: mask guarantees ``corrupted_hash(h) != h``.
_CORRUPTION_MASK = 0x5DEECE66D


@dataclass(frozen=True, slots=True)
class ContentConfig:
    """Knobs for the content data plane (off by default).

    Disabled means *nothing* is constructed: no manifests, no metrics,
    no per-peer fetch state, and no extra RNG draws — default runs and
    their deterministic metric snapshots stay byte-identical.
    """

    #: master switch for the whole subsystem.
    enabled: bool = False
    #: fixed chunk size documents are split into.
    chunk_size: int = DEFAULT_CHUNK_SIZE
    #: anti-entropy healing re-replicates any document whose live full
    #: holder count fell below this floor (when live targets exist).
    replication_floor: int = 2
    #: per-chunk response deadline before the fetcher fails over to
    #: another source (and reports a miss to the failure detector).
    chunk_timeout: float = 1.5
    #: attempts per chunk (initial request + failovers) before the whole
    #: fetch is abandoned.
    max_chunk_attempts: int = 4
    #: cap on re-replication fetches one healing round may start, so a
    #: single round stays bounded after mass churn.
    heal_fetch_limit: int = 16

    def __post_init__(self) -> None:
        if self.chunk_size <= 0:
            raise ValueError(f"chunk_size must be > 0, got {self.chunk_size}")
        if self.replication_floor < 1:
            raise ValueError(
                f"replication_floor must be >= 1, got {self.replication_floor}"
            )
        if self.chunk_timeout <= 0:
            raise ValueError(
                f"chunk_timeout must be > 0, got {self.chunk_timeout}"
            )
        if self.max_chunk_attempts < 1:
            raise ValueError(
                f"max_chunk_attempts must be >= 1, got {self.max_chunk_attempts}"
            )
        if self.heal_fetch_limit < 1:
            raise ValueError(
                f"heal_fetch_limit must be >= 1, got {self.heal_fetch_limit}"
            )


def n_chunks(size_bytes: int, chunk_size: int = DEFAULT_CHUNK_SIZE) -> int:
    """Number of fixed-size chunks a document of ``size_bytes`` splits into."""
    if size_bytes <= 0:
        return 1
    return -(-size_bytes // chunk_size)


def chunk_bytes(
    size_bytes: int, index: int, chunk_size: int = DEFAULT_CHUNK_SIZE
) -> int:
    """Byte length of chunk ``index`` (the last chunk may be short)."""
    total = n_chunks(size_bytes, chunk_size)
    if not 0 <= index < total:
        raise IndexError(f"chunk {index} out of range for {total} chunks")
    if index == total - 1:
        return size_bytes - index * chunk_size if size_bytes > 0 else 1
    return chunk_size


def chunk_hash(doc_id: int, index: int) -> int:
    """Deterministic content hash of chunk ``index`` of ``doc_id``."""
    digest = hashlib.blake2b(
        f"repro.content:{doc_id}:{index}".encode(), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big") & _HASH_MASK


def corrupted_hash(value: int) -> int:
    """The hash a corrupt replica serves in place of ``value``."""
    return (value ^ _CORRUPTION_MASK) & _HASH_MASK
