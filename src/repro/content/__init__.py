"""Self-healing content data plane (chunked transfer + repair loops).

Documents gain simulated bytes split into fixed-size chunks with
deterministic content hashes; a per-document :class:`Manifest` (chunk
hashes, size, version) is registered alongside the cluster metadata,
and fetches move chunks from multiple sources with per-chunk integrity
verification and mid-transfer failover.  Three robustness loops ride
on top: read-repair (:mod:`repro.content.fetcher`), anti-entropy
healing (:mod:`repro.content.healer`), and graceful-shutdown handoff
(``P2PSystem.shutdown_node``).

Everything is off by default (``ContentConfig(enabled=False)``):
disabled runs construct nothing, register no metrics, and consume no
randomness, keeping deterministic snapshots byte-identical.
"""

from repro.content.chunks import (  # noqa: F401
    DEFAULT_CHUNK_SIZE,
    ContentConfig,
    chunk_bytes,
    chunk_hash,
    corrupted_hash,
    n_chunks,
)
from repro.content.fetcher import (  # noqa: F401
    CHUNK_REQUEST_ID_BASE,
    PeerContent,
)
from repro.content.healer import ContentHealer  # noqa: F401
from repro.content.manifest import (  # noqa: F401
    ContentManager,
    FetchRecord,
    Manifest,
    build_manifest,
    manifest_from_update,
    manifest_to_update,
)

__all__ = [
    "CHUNK_REQUEST_ID_BASE",
    "DEFAULT_CHUNK_SIZE",
    "ContentConfig",
    "ContentHealer",
    "ContentManager",
    "FetchRecord",
    "Manifest",
    "PeerContent",
    "build_manifest",
    "chunk_bytes",
    "chunk_hash",
    "corrupted_hash",
    "manifest_from_update",
    "manifest_to_update",
    "n_chunks",
]
