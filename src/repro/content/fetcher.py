"""Per-peer chunk server and multi-source fetch scheduler.

One :class:`PeerContent` hangs off every peer when the content data
plane is enabled.  It plays both sides of the chunk protocol:

* **Server**: answers ``chunk_request`` for documents the peer fully
  holds *or* holds partially from an in-flight fetch, with the chunk's
  content hash (deliberately wrong when the chaos harness marked the
  chunk corrupt).  With the service model enabled, chunk requests go
  through the same bounded intake queue as queries — a chunk costs
  service time proportional to its bytes, so bandwidth is a first-class
  load dimension and overloaded holders shed chunk work with BUSY.

* **Client**: schedules one request per chunk across the live sources,
  rarest-first (chunks with the fewest live sources are requested
  first, ties broken by chunk index — fully deterministic, no RNG).
  Every received chunk is verified against the manifest hash; a
  mismatch, a BUSY shed, a ``found=False`` miss (the holder evicted or
  dropped the document mid-transfer), or a response deadline triggers
  failover to the next source.  A hash mismatch additionally schedules
  **read-repair**: once the correct chunk arrives from elsewhere, it is
  pushed back to the stale replica and the manifest version bumps.

Determinism contract: source selection sorts candidates and indexes
them by attempt count; deadlines are fixed sim-time offsets; request
ids come from a private namespace (``CHUNK_REQUEST_ID_BASE``) disjoint
from query ids, so BUSY signals route unambiguously.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import count
from typing import TYPE_CHECKING, Callable

from repro.content.chunks import (
    CHUNK_REQUEST_ID_BASE,
    ContentConfig,
    chunk_hash,
    corrupted_hash,
)
from repro.content.manifest import Manifest, manifest_from_update
from repro.overlay import messages as m

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.content.manifest import ContentManager
    from repro.overlay.peer import DocInfo, Peer

__all__ = ["CHUNK_REQUEST_ID_BASE", "PeerContent"]


@dataclass(slots=True)
class _ChunkState:
    index: int
    attempts: int = 0
    done: bool = False
    outstanding: int | None = None  # request id in flight, if any
    tried: set[int] = field(default_factory=set)


@dataclass(slots=True)
class _Fetch:
    fetch_id: int
    info: "DocInfo"
    manifest: Manifest
    index: "ContentManager | None"
    on_done: Callable | None
    sources_fn: Callable[[], dict[int, tuple[int, ...]]]
    chunks: dict[int, _ChunkState]
    remaining: int
    bytes_fetched: int = 0
    failovers: int = 0
    repairs: int = 0
    received: dict[int, int] = field(default_factory=dict)
    #: (stale holder, chunk index) pairs owed a read-repair push once
    #: the correct chunk is in hand.
    pending_repairs: set[tuple[int, int]] = field(default_factory=set)


class PeerContent:
    """Chunk-protocol endpoint attached to one peer (enabled runs only)."""

    def __init__(self, peer: "Peer", config: ContentConfig) -> None:
        self.peer = peer
        self.config = config
        #: doc id -> chunk indexes held from in-flight/abandoned fetches.
        self.partial: dict[int, set[int]] = {}
        #: doc id -> chunk indexes whose local copy is corrupt (chaos).
        self.corrupt: dict[int, set[int]] = {}
        #: locally cached manifests (fetches, repairs, handoffs).
        self.manifests: dict[int, Manifest] = {}
        #: optional ``(doc_id, manifest)`` callback fired whenever the
        #: manifest cache learns or advances a version — the durability
        #: journal's hook for replaying missed manifest bumps.
        self.on_manifest: Callable | None = None
        self._fetches: dict[int, _Fetch] = {}
        #: request id -> (fetch id, chunk index) for in-flight requests.
        self._requests: dict[int, tuple[int, int]] = {}
        self._next_request = count(1)
        # local accounting (per peer)
        self.chunks_served = 0
        self.bytes_served = 0
        self.repairs_received = 0

    # ------------------------------------------------------------------
    # server side
    # ------------------------------------------------------------------
    def holds_chunk(self, doc_id: int, index: int) -> bool:
        if doc_id in self.peer.docs:
            return True
        return index in self.partial.get(doc_id, ())

    def mark_corrupt(self, doc_id: int, index: int) -> bool:
        """Chaos injection: this replica's chunk now hashes wrong.

        Only effective when the peer actually holds the chunk; returns
        whether the mark stuck.
        """
        if not self.holds_chunk(doc_id, index):
            return False
        self.corrupt.setdefault(doc_id, set()).add(index)
        return True

    def serve_chunk(self, request: m.ChunkRequest) -> None:
        """Answer one chunk request (runs at service completion when the
        service model queues it, inline otherwise)."""
        doc_id, index = request.doc_id, request.chunk_index
        if not self.holds_chunk(doc_id, index):
            self.peer._send(
                request.requester_id,
                "chunk_data",
                m.ChunkData(
                    request_id=request.request_id,
                    fetch_id=request.fetch_id,
                    responder_id=self.peer.node_id,
                    doc_id=doc_id,
                    chunk_index=index,
                    chunk_hash=0,
                    size_bytes=0,
                    found=False,
                ),
            )
            return
        value = chunk_hash(doc_id, index)
        if index in self.corrupt.get(doc_id, ()):
            value = corrupted_hash(value)
        size = max(request.chunk_bytes, m.CONTROL_SIZE)
        self.chunks_served += 1
        self.bytes_served += request.chunk_bytes
        self.peer._send(
            request.requester_id,
            "chunk_data",
            m.ChunkData(
                request_id=request.request_id,
                fetch_id=request.fetch_id,
                responder_id=self.peer.node_id,
                doc_id=doc_id,
                chunk_index=index,
                chunk_hash=value,
                size_bytes=request.chunk_bytes,
                found=True,
            ),
            size=size,
        )

    # ------------------------------------------------------------------
    # client side
    # ------------------------------------------------------------------
    def start_fetch(
        self,
        fetch_id: int,
        info: "DocInfo",
        manifest: Manifest,
        index: "ContentManager | None" = None,
        sources_fn: Callable[[], dict[int, tuple[int, ...]]] | None = None,
        on_done: Callable | None = None,
    ) -> None:
        """Begin fetching ``info.doc_id`` chunk by chunk, rarest first.

        ``index`` is the deployment's :class:`ContentManager` (source
        lookups, ledger callbacks); unit tests may instead pass a bare
        ``sources_fn`` returning ``{chunk index: (source ids, ...)}``.
        """
        doc_id = info.doc_id
        if sources_fn is None:
            if index is None:
                raise ValueError("start_fetch needs an index or a sources_fn")
            sources_fn = lambda: index.chunk_sources(doc_id)  # noqa: E731
        chunks = {
            i: _ChunkState(index=i) for i in range(manifest.n_chunks)
        }
        fetch = _Fetch(
            fetch_id=fetch_id,
            info=info,
            manifest=manifest,
            index=index,
            on_done=on_done,
            sources_fn=sources_fn,
            chunks=chunks,
            remaining=manifest.n_chunks,
        )
        self._fetches[fetch_id] = fetch
        self.manifests[doc_id] = manifest
        if self.on_manifest is not None:
            self.on_manifest(doc_id, manifest)
        already = self.partial.get(doc_id, set())
        for i in sorted(already & set(chunks)):
            # Chunks left behind by an abandoned fetch are already
            # verified local copies — no need to move them again.
            chunk = chunks[i]
            chunk.done = True
            fetch.received[i] = manifest.chunk_hashes[i]
            fetch.remaining -= 1
        if fetch.remaining == 0:
            self._complete(fetch)
            return
        for position, i in enumerate(self._rarest_first(fetch)):
            chunk = chunks[i]
            if chunk.done:
                continue
            source = self._pick_source(fetch, chunk, stagger=position)
            if source is None:
                self._fail(fetch, "no-live-source")
                return
            self._request_chunk(fetch, chunk, source)

    def _rarest_first(self, fetch: _Fetch) -> list[int]:
        """Chunk indexes ordered by (live source count, index)."""
        sources = fetch.sources_fn()
        return sorted(
            fetch.chunks,
            key=lambda i: (len(sources.get(i, ())), i),
        )

    def _pick_source(
        self, fetch: _Fetch, chunk: _ChunkState, stagger: int = 0
    ) -> int | None:
        """Deterministically choose the next source for one chunk.

        Candidates are the chunk's current live sources minus this peer,
        already-tried sources, and failure-detector suspects; like query
        failover, exclusions relax in that order rather than failing a
        fetch a plain retry could save.  ``stagger`` spreads the initial
        wave round-robin across sources so one holder does not absorb
        every first request.
        """
        sources = fetch.sources_fn().get(chunk.index, ())
        suspects = self.peer.suspects()
        mine = self.peer.node_id
        candidates = [
            s
            for s in sources
            if s != mine and s not in chunk.tried and s not in suspects
        ]
        if not candidates and chunk.tried:
            candidates = [
                s for s in sources if s != mine and s not in suspects
            ]
        if not candidates and suspects:
            candidates = [s for s in sources if s != mine]
        if not candidates:
            return None
        return candidates[(stagger + chunk.attempts) % len(candidates)]

    def _request_chunk(
        self, fetch: _Fetch, chunk: _ChunkState, source: int
    ) -> None:
        request_id = CHUNK_REQUEST_ID_BASE + next(self._next_request)
        self._requests[request_id] = (fetch.fetch_id, chunk.index)
        chunk.outstanding = request_id
        chunk.tried.add(source)
        chunk.attempts += 1
        self.peer._send(
            source,
            "chunk_request",
            m.ChunkRequest(
                request_id=request_id,
                fetch_id=fetch.fetch_id,
                requester_id=self.peer.node_id,
                doc_id=fetch.info.doc_id,
                chunk_index=chunk.index,
                chunk_bytes=fetch.manifest.chunk_bytes(chunk.index),
                category_id=(
                    fetch.info.categories[0] if fetch.info.categories else -1
                ),
            ),
        )
        self.peer.transport.schedule(
            self.config.chunk_timeout,
            lambda: self._on_deadline(request_id, source),
        )

    def _on_deadline(self, request_id: int, source: int) -> None:
        entry = self._requests.pop(request_id, None)
        if entry is None:
            return  # answered, shed, or the fetch is gone
        fetch_id, index = entry
        fetch = self._fetches.get(fetch_id)
        if fetch is None:
            return
        # An unresponsive source is evidence of death — the same signal
        # a reliable-delivery give-up feeds the failure detector.
        self.peer.detector.note_missed(source)
        self._failover(fetch, fetch.chunks[index])

    def _failover(self, fetch: _Fetch, chunk: _ChunkState) -> None:
        chunk.outstanding = None
        fetch.failovers += 1
        if fetch.index is not None:
            fetch.index.on_chunk_failover(fetch.fetch_id)
        if chunk.attempts >= self.config.max_chunk_attempts:
            self._fail(fetch, "attempts-exhausted")
            return
        source = self._pick_source(fetch, chunk)
        if source is None:
            self._fail(fetch, "no-live-source")
            return
        self._request_chunk(fetch, chunk, source)

    def handle_busy(self, busy: m.Busy) -> None:
        """An overloaded holder shed one of our chunk requests."""
        entry = self._requests.pop(busy.query_id, None)
        if entry is None:
            return
        fetch_id, index = entry
        fetch = self._fetches.get(fetch_id)
        if fetch is None:
            return
        self._failover(fetch, fetch.chunks[index])

    def handle_chunk_data(self, data: m.ChunkData) -> None:
        entry = self._requests.pop(data.request_id, None)
        if entry is None:
            return  # late reply after deadline/busy already acted
        fetch_id, index = entry
        fetch = self._fetches.get(fetch_id)
        if fetch is None:
            return
        chunk = fetch.chunks[index]
        chunk.outstanding = None
        if chunk.done:
            return
        if not data.found:
            # The holder no longer has the chunk (dropped or evicted
            # mid-transfer): fail over, never fail the fetch outright.
            self._failover(fetch, chunk)
            return
        expected = fetch.manifest.chunk_hashes[index]
        if data.chunk_hash != expected:
            # Integrity failure: remember the stale replica for
            # read-repair, then fetch the chunk from someone else.
            fetch.pending_repairs.add((data.responder_id, index))
            self._failover(fetch, chunk)
            return
        chunk.done = True
        fetch.remaining -= 1
        fetch.received[index] = data.chunk_hash
        fetch.bytes_fetched += data.size_bytes
        doc_id = fetch.info.doc_id
        self.partial.setdefault(doc_id, set()).add(index)
        if fetch.index is not None:
            fetch.index.note_partial(self.peer.node_id, doc_id, index)
        for target, repair_index in sorted(fetch.pending_repairs):
            if repair_index == index:
                self._push_repair(fetch, target, index, expected)
        fetch.pending_repairs = {
            pair for pair in fetch.pending_repairs if pair[1] != index
        }
        if fetch.remaining == 0:
            self._complete(fetch)

    def _push_repair(
        self, fetch: _Fetch, target: int, index: int, value: int
    ) -> None:
        """Read-repair: push the verified chunk back to a stale replica."""
        fetch.repairs += 1
        doc_id = fetch.info.doc_id
        version = fetch.manifest.version
        if fetch.index is not None:
            version = fetch.index.on_read_repair(fetch.fetch_id, doc_id)
        self.peer._send(
            target,
            "chunk_repair",
            m.ChunkRepair(
                doc_id=doc_id,
                chunk_index=index,
                chunk_hash=value,
                repairer_id=self.peer.node_id,
                version=version,
            ),
            size=max(fetch.manifest.chunk_bytes(index), m.CONTROL_SIZE),
        )

    def handle_chunk_repair(self, repair: m.ChunkRepair) -> None:
        """A fetcher pushed a correct chunk over our stale/corrupt copy."""
        marks = self.corrupt.get(repair.doc_id)
        if marks is not None:
            marks.discard(repair.chunk_index)
            if not marks:
                self.corrupt.pop(repair.doc_id, None)
        self.repairs_received += 1
        cached = self.manifests.get(repair.doc_id)
        if cached is not None and repair.version > cached.version:
            from dataclasses import replace

            fresh = replace(cached, version=repair.version)
            self.manifests[repair.doc_id] = fresh
            if self.on_manifest is not None:
                self.on_manifest(repair.doc_id, fresh)

    def handle_manifest_update(self, update: m.ManifestUpdate) -> None:
        """Cache a manifest announced to us (graceful-shutdown handoff)."""
        cached = self.manifests.get(update.doc_id)
        if cached is None or update.version >= cached.version:
            fresh = manifest_from_update(update)
            self.manifests[update.doc_id] = fresh
            if self.on_manifest is not None:
                self.on_manifest(update.doc_id, fresh)

    def _complete(self, fetch: _Fetch) -> None:
        doc_id = fetch.info.doc_id
        self._fetches.pop(fetch.fetch_id, None)
        hashes = tuple(
            fetch.received.get(i, fetch.manifest.chunk_hashes[i])
            for i in range(fetch.manifest.n_chunks)
        )
        if doc_id not in self.peer.docs:
            self.peer.store_document(fetch.info)
        self.partial.pop(doc_id, None)
        if fetch.index is not None:
            fetch.index.drop_partial(self.peer.node_id, doc_id)
            fetch.index.on_fetch_complete(
                fetch.fetch_id, hashes, fetch.bytes_fetched
            )
        if fetch.on_done is not None:
            fetch.on_done(fetch.fetch_id, True, "")

    def _fail(self, fetch: _Fetch, reason: str) -> None:
        self._fetches.pop(fetch.fetch_id, None)
        for request_id, (fetch_id, _) in list(self._requests.items()):
            if fetch_id == fetch.fetch_id:
                self._requests.pop(request_id, None)
        # Partial chunks stay: they are verified local copies other
        # fetchers can use as sources, and a retry resumes from them.
        if fetch.index is not None:
            fetch.index.on_fetch_failed(fetch.fetch_id, reason)
        if fetch.on_done is not None:
            fetch.on_done(fetch.fetch_id, False, reason)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def on_crash(self) -> None:
        """The host crashed: every in-flight fetch it started dies.

        Partial chunks persist (this model's crashes keep disks), so a
        post-recovery fetch resumes from them.
        """
        for fetch in list(self._fetches.values()):
            self._fail(fetch, "requester-crashed")

    def lose_power(self) -> None:
        """Amnesia crash: wipe volatile state, keep what lives on disk.

        Cached manifests and request bookkeeping are memory and vanish;
        ``partial`` (verified chunks on disk) and ``corrupt`` (the bits
        are still bad after a reboot) survive.  Runs after
        :meth:`on_crash` has already failed the in-flight fetches.
        """
        self.manifests.clear()
        self._fetches.clear()
        self._requests.clear()

    def in_flight(self) -> int:
        return len(self._fetches)

    def stats(self) -> dict:
        return {
            "chunks_served": self.chunks_served,
            "bytes_served": self.bytes_served,
            "repairs_received": self.repairs_received,
            "in_flight": len(self._fetches),
            "partial_docs": len(self.partial),
            "corrupt_docs": len(self.corrupt),
        }
