"""``python -m repro.bench`` — run the benchmark suites, track regressions.

Writes ``BENCH_core.json`` (schema ``repro.bench/v1``) at the chosen
``--out`` path:

.. code-block:: json

    {
      "schema": "repro.bench/v1",
      "suite": "all",
      "size": 1.0,
      "scale": {"algo": 0.25, "des": 0.05},
      "results": [ {"name": ..., "kind": ..., "unit": ...,
                    "repeats": ..., "warmup": ...,
                    "best_s": ..., "median_s": ..., "mean_s": ...,
                    "stddev_s": ..., "extra": {...}}, ... ]
    }

``--compare BASELINE.json`` checks the freshly-measured medians against a
committed report and exits 1 when any shared benchmark slowed down by more
than ``--max-regress`` percent — the CI regression gate.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.bench import macro, micro
from repro.bench.core import SCHEMA, BenchResult, compare_results, run_specs
from repro.experiments.common import default_scale, des_scale

__all__ = ["main", "collect_specs", "write_report"]

DEFAULT_OUT = "BENCH_core.json"


def collect_specs(suite: str, size: float = 1.0, names=None):
    """Resolve ``--suite``/``--only`` into an ordered spec list."""
    if suite == "micro":
        specs = micro.specs(size=size)
    elif suite == "macro":
        specs = macro.specs()
    elif suite == "all":
        specs = micro.specs(size=size) + macro.specs()
    else:
        raise ValueError(f"unknown suite: {suite!r}")
    if names:
        wanted = set(names)
        unknown = wanted - {spec.name for spec in specs}
        if unknown:
            raise ValueError(
                f"unknown benchmark name(s): {', '.join(sorted(unknown))}"
            )
        specs = [spec for spec in specs if spec.name in wanted]
    return specs


def write_report(
    path: Path, results: list[BenchResult], suite: str, size: float
) -> None:
    report = {
        "schema": SCHEMA,
        "suite": suite,
        "size": size,
        "scale": {"algo": default_scale(), "des": des_scale()},
        "results": [result.to_dict() for result in results],
    }
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")


def _validate_baseline(baseline) -> str | None:
    """Why ``baseline`` cannot be compared against, or None when it can.

    The check runs before any benchmark is measured, so a stale or
    hand-mangled baseline fails fast with a message naming the defect
    instead of surfacing as a KeyError after minutes of timing runs.
    """
    if not isinstance(baseline, dict):
        return f"expected a JSON object, got {type(baseline).__name__}"
    if baseline.get("schema") != SCHEMA:
        return f"schema is {baseline.get('schema')!r}, expected {SCHEMA!r}"
    results = baseline.get("results")
    if not isinstance(results, list):
        return f"'results' must be a list, got {type(results).__name__}"
    for index, entry in enumerate(results):
        if not isinstance(entry, dict):
            return (
                f"results[{index}] must be an object, "
                f"got {type(entry).__name__}"
            )
        name = entry.get("name")
        if not isinstance(name, str):
            return f"results[{index}] has no string 'name' field"
        median = entry.get("median_s")
        if not isinstance(median, (int, float)) or isinstance(median, bool):
            return f"results[{index}] ({name!r}) has no numeric 'median_s'"
    return None


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Run the repro benchmark suites and write BENCH_core.json.",
    )
    parser.add_argument(
        "--suite",
        choices=("micro", "macro", "all"),
        default="all",
        help="which suite to run (default: all)",
    )
    parser.add_argument(
        "--only",
        nargs="+",
        metavar="NAME",
        help="restrict to specific benchmark names within the suite",
    )
    parser.add_argument(
        "--size",
        type=float,
        default=1.0,
        help="work-size multiplier for the micro suite (default: 1.0)",
    )
    parser.add_argument(
        "--repeats", type=int, help="override per-spec repeat counts"
    )
    parser.add_argument(
        "--warmup", type=int, help="override per-spec warmup counts"
    )
    parser.add_argument(
        "--out",
        default=DEFAULT_OUT,
        help=f"report path (default: {DEFAULT_OUT}; '-' to skip writing)",
    )
    parser.add_argument(
        "--compare",
        metavar="BASELINE",
        help="baseline BENCH_*.json to diff medians against",
    )
    parser.add_argument(
        "--max-regress",
        type=float,
        default=25.0,
        help="allowed median slowdown in percent before failing (default: 25)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list benchmark names and exit"
    )
    args = parser.parse_args(argv)

    try:
        specs = collect_specs(args.suite, size=args.size, names=args.only)
    except ValueError as error:
        parser.error(str(error))

    if args.list:
        for spec in specs:
            print(f"{spec.kind:5s} {spec.name:24s} {spec.description}")
        return 0

    baseline = None
    if args.compare:
        baseline_path = Path(args.compare)
        if not baseline_path.is_file():
            parser.error(f"--compare baseline not found: {baseline_path}")
        try:
            baseline = json.loads(baseline_path.read_text())
        except json.JSONDecodeError as error:
            parser.error(
                f"--compare baseline {baseline_path} is not valid JSON "
                f"({error}) — regenerate it with `python -m repro.bench`"
            )
        error = _validate_baseline(baseline)
        if error is not None:
            parser.error(
                f"--compare baseline {baseline_path} schema mismatch: "
                f"{error} — regenerate it with `python -m repro.bench`"
            )

    results = run_specs(
        specs, repeats=args.repeats, warmup=args.warmup, log=print
    )

    if args.out != "-":
        out_path = Path(args.out)
        write_report(out_path, results, suite=args.suite, size=args.size)
        print(f"wrote {out_path} ({len(results)} benchmarks)")

    if baseline is not None:
        regressions, skipped = compare_results(
            results, baseline, max_regress_pct=args.max_regress
        )
        for name in skipped:
            print(f"compare: skipped {name} (not in both reports)")
        if regressions:
            for reg in regressions:
                print(
                    f"REGRESSION {reg.name}: median "
                    f"{reg.baseline_median_s * 1e3:.2f} ms -> "
                    f"{reg.current_median_s * 1e3:.2f} ms "
                    f"(+{reg.regress_pct:.1f}% > {args.max_regress:.1f}%)"
                )
            return 1
        print(f"compare: no regressions beyond {args.max_regress:.1f}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
