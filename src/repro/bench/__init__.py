"""Benchmark subsystem: tracked, regression-gated performance artifacts.

``python -m repro.bench`` runs the micro suite (engine event churn,
network send/deliver, Zipf sampling) and the macro suite (figure2
end-to-end, scaling sweep, chaos fuzzing, loss experiment), writing
``BENCH_core.json`` at the repo root.  ``--compare`` diffs a fresh run
against a committed report and fails on slowdowns beyond a percent
threshold — see :mod:`repro.bench.cli`.
"""

from repro.bench.core import (
    BenchResult,
    BenchSpec,
    Regression,
    compare_results,
    run_spec,
    run_specs,
)

__all__ = [
    "BenchResult",
    "BenchSpec",
    "Regression",
    "compare_results",
    "run_spec",
    "run_specs",
]
