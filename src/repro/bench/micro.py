"""Micro benchmarks: one simulator-core operation per spec, in a tight loop.

Each spec builds its own small world inside the measured callable so that
repeats are independent; sizes scale linearly with the CLI ``--size``
multiplier, letting CI run the same suite cheaply.
"""

from __future__ import annotations

import numpy as np

from repro.bench.core import BenchSpec
from repro.model.zipf import ZipfSampler
from repro.overlay.peer import DocInfo, Peer, PeerConfig
from repro.overlay.service import ServiceConfig
from repro.sim.engine import Simulator
from repro.sim.network import Network

__all__ = ["specs"]


def _engine_churn_fn(n_events: int):
    def fn():
        sim = Simulator()
        remaining = [n_events]

        def tick() -> None:
            remaining[0] -= 1
            if remaining[0] > 0:
                sim.schedule(0.001, tick)

        sim.schedule(0.0, tick)
        sim.run()
        return {"events_per_s": float(n_events)}

    return fn


def _network_fn(n_messages: int, n_nodes: int):
    def fn():
        sim = Simulator()
        network = Network(sim, base_latency=0.01, bandwidth=None)
        delivered = [0]

        def handler(message) -> None:
            delivered[0] += 1

        for node_id in range(n_nodes):
            network.register(node_id, handler)
        for i in range(n_messages):
            network.transmit(
                src=i % n_nodes,
                dst=(i + 1) % n_nodes,
                kind="bench",
                payload=None,
            )
        sim.run()
        assert delivered[0] == n_messages
        return {"messages_per_s": float(n_messages)}

    return fn


def _zipf_fn(n_items: int, n_samples: int):
    sampler = ZipfSampler(n_items, 0.8)

    def fn():
        rng = np.random.default_rng(1234)
        sampler.sample(rng, n_samples)
        return {"samples_per_s": float(n_samples)}

    return fn


def _service_queue_fn(n_queries: int):
    # The service-queue hot path: every query at the server goes through
    # offer -> (enqueue | begin) -> complete.  Queries arrive in bursts of
    # four against a drain budget that clears them, so the run exercises
    # both the pass-through and the enqueue/dequeue branches without ever
    # shedding (shedding would make the work data-dependent).
    service_time = 0.00025
    burst_interval = 0.0011

    def fn():
        sim = Simulator()
        network = Network(sim, base_latency=0.0001, bandwidth=None)
        rng = np.random.default_rng(99)
        server = Peer(
            node_id=1,
            capacity_units=1.0,
            network=network,
            rng=rng,
            config=PeerConfig(
                service=ServiceConfig(
                    enabled=True,
                    base_service_time=service_time,
                    queue_capacity=32,
                )
            ),
        )
        client = Peer(node_id=0, capacity_units=1.0, network=network, rng=rng)
        server.join_cluster(0, known_members=[1])
        server.dcrt.set(0, 0)
        server.store_document(
            DocInfo(doc_id=1, categories=(0,), size_bytes=1000)
        )
        client.dcrt.set(0, 0)
        client.nrt.add(0, 1)
        for i in range(n_queries):
            sim.schedule_at(
                (i // 4) * burst_interval,
                lambda q=i: client.start_query(q, 0, 1, target_doc_id=1),
            )
        sim.run()
        snapshot = server.service_snapshot()
        assert snapshot["processed"] == n_queries, snapshot
        return {"service_queries_per_s": float(n_queries)}

    return fn


def _replication_rounds_fn(n_rounds: int):
    # The replication-manager control loop: each round reads per-category
    # demand signals over every peer, ranks hot documents, and decides
    # grow/shrink.  Demand oscillates (two hot rounds, then quiet) so the
    # measured churn covers all three decision branches — grow with real
    # transfer pulls, the hysteresis dead band, and the slow shrink.
    from repro.core.maxfair import maxfair
    from repro.core.popularity import build_category_stats
    from repro.core.replication import plan_replication
    from repro.model.system import SystemConfig, build_system
    from repro.overlay.replication_manager import ReplicationConfig
    from repro.overlay.system import P2PSystem, P2PSystemConfig

    def fn():
        instance = build_system(SystemConfig(
            seed=7,
            n_docs=200,
            n_nodes=12,
            n_categories=12,
            n_clusters=4,
            doc_size_bytes=65_536,
        ))
        stats = build_category_stats(instance)
        assignment = maxfair(instance, stats=stats)
        plan = plan_replication(instance, assignment, n_reps=2, hot_mass=0.35)
        system = P2PSystem(
            instance,
            assignment,
            plan=plan,
            config=P2PSystemConfig(
                seed=7,
                cache_capacity=8,
                replication=ReplicationConfig(enabled=True, shrink_after=2),
            ),
        )
        manager = system.replication
        hot_category = min(manager._category_docs)
        holder = system.peers_in_cluster(
            int(system.assignment.category_to_cluster[hot_category])
        )[0]
        for i in range(n_rounds):
            if i % 8 < 2:
                holder.hit_counters[hot_category] = (
                    holder.hit_counters.get(hot_category, 0) + 10_000
                )
            system.run_replication_round()
        assert manager.rounds_run == n_rounds
        return {"replication_rounds_per_s": float(n_rounds)}

    return fn


def _chunk_fetch_fn(n_fetches: int):
    # The content data plane's hot path: a multi-source fetch resolves
    # per-chunk sources rarest-first, requests every chunk, verifies
    # hashes, and stores the document.  Fetches rotate over documents
    # and requesters so each one does real work (the requester must not
    # already hold the target).
    from repro.content.chunks import ContentConfig
    from repro.core.maxfair import maxfair
    from repro.core.popularity import build_category_stats
    from repro.core.replication import plan_replication
    from repro.model.system import SystemConfig, build_system
    from repro.overlay.system import P2PSystem, P2PSystemConfig

    def fn():
        instance = build_system(SystemConfig(
            seed=7,
            n_docs=200,
            n_nodes=12,
            n_categories=12,
            n_clusters=4,
            doc_size_bytes=262_144,
        ))
        stats = build_category_stats(instance)
        assignment = maxfair(instance, stats=stats)
        plan = plan_replication(instance, assignment, n_reps=2, hot_mass=0.35)
        system = P2PSystem(
            instance,
            assignment,
            plan=plan,
            config=P2PSystemConfig(
                seed=7,
                content=ContentConfig(enabled=True),
            ),
        )
        manager = system.content
        doc_ids = sorted(manager.manifests)
        alive = [peer.node_id for peer in system.alive_peers()]
        started = 0
        attempt = 0
        # Walk every (document, requester) pair exactly once per cycle: a
        # pair only yields no work when the requester already holds the
        # document, so progress is guaranteed until holders saturate.
        max_attempts = len(doc_ids) * len(alive)
        while started < n_fetches and attempt < max_attempts:
            doc_id = doc_ids[attempt % len(doc_ids)]
            requester = alive[(attempt // len(doc_ids)) % len(alive)]
            attempt += 1
            fetch_id = manager.fetch(requester, doc_id)
            if fetch_id is None:
                continue
            started += 1
            system.sim.run()
        assert started == n_fetches, (started, n_fetches)
        records = manager.fetch_ledger()
        assert all(
            record.completed_at is not None and record.verified
            for record in records
        ), "bench fetches must all complete verified"
        return {"chunk_fetches_per_s": float(started)}

    return fn


def _scenario_step_fn(n_events: int):
    # The scenario engine's expansion hot path: one fully-modulated spec
    # (diurnal + regional offsets + drift + a skew flip) expanded into a
    # deterministic event stream.  The world is built once outside the
    # timed callable (like _zipf_fn's sampler) so repeats measure only
    # generation: the windowed rate math, the time-varying Zipf draws,
    # and the joint time sort.
    from repro.model.system import SystemConfig, build_system
    from repro.scenario import (
        DiurnalSpec,
        DriftSpec,
        ScenarioSpec,
        SkewFlipSpec,
        generate_events,
    )

    instance = build_system(SystemConfig(
        seed=7,
        n_docs=200,
        n_nodes=16,
        n_categories=12,
        n_clusters=4,
        doc_size_bytes=65_536,
    ))
    duration = 40.0
    spec = ScenarioSpec(
        name="bench",
        seed=7,
        duration=duration,
        base_rate=n_events / duration,
        n_regions=4,
        window=0.5,
        diurnal=DiurnalSpec(
            period=10.0,
            amplitude=0.8,
            regional_offsets=(0.0, 0.25, 0.5, 0.75),
        ),
        drift=DriftSpec(ranks_per_unit=2.0),
        flips=(SkewFlipSpec(at=duration / 2.0, mass=0.4, n_hot=4),),
    )

    def fn():
        stream = generate_events(spec, instance)
        return {"scenario_events_per_s": float(len(stream))}

    return fn


def _rate_post(key: str):
    """Turn a work count stashed in ``extra`` into a per-second rate."""

    def post(result):
        work = result.extra.get(key, 0.0)
        if result.median_s <= 0:
            return {}
        return {key: work / result.median_s}

    return post


def specs(size: float = 1.0) -> list[BenchSpec]:
    """The micro suite, with work sizes scaled by ``size``."""
    if size <= 0:
        raise ValueError(f"size must be positive, got {size}")
    n_events = max(1000, int(20_000 * size))
    n_messages = max(1000, int(10_000 * size))
    n_samples = max(10_000, int(200_000 * size))
    n_service = max(2000, int(20_000 * size))
    n_rounds = max(40, int(400 * size))
    n_fetches = max(50, int(400 * size))
    n_scenario = max(5_000, int(50_000 * size))
    return [
        BenchSpec(
            name="engine_event_churn",
            kind="micro",
            description="heap schedule/pop throughput of the DES engine",
            unit=f"s / {n_events} events",
            fn=_engine_churn_fn(n_events),
            post=_rate_post("events_per_s"),
        ),
        BenchSpec(
            name="network_send_deliver",
            kind="micro",
            description="fault-free Network.send + deliver round trips",
            unit=f"s / {n_messages} messages",
            fn=_network_fn(n_messages, n_nodes=64),
            post=_rate_post("messages_per_s"),
        ),
        BenchSpec(
            name="zipf_sampling",
            kind="micro",
            description="precomputed-CDF Zipf sampling (ZipfSampler)",
            unit=f"s / {n_samples} samples",
            fn=_zipf_fn(n_items=20_000, n_samples=n_samples),
            post=_rate_post("samples_per_s"),
        ),
        BenchSpec(
            name="service_queue",
            kind="micro",
            description="bounded service queue offer/enqueue/complete churn",
            unit=f"s / {n_service} served queries",
            fn=_service_queue_fn(n_service),
            post=_rate_post("service_queries_per_s"),
        ),
        BenchSpec(
            name="replication_manager",
            kind="micro",
            description=(
                "adaptive replication control rounds (signals + "
                "grow/shrink churn)"
            ),
            unit=f"s / {n_rounds} control rounds",
            fn=_replication_rounds_fn(n_rounds),
            post=_rate_post("replication_rounds_per_s"),
        ),
        BenchSpec(
            name="chunk_fetch",
            kind="micro",
            description=(
                "multi-source chunk fetches (rarest-first scheduling + "
                "hash verification + store)"
            ),
            unit=f"s / {n_fetches} fetches",
            fn=_chunk_fetch_fn(n_fetches),
            post=_rate_post("chunk_fetches_per_s"),
        ),
        BenchSpec(
            name="scenario_step",
            kind="micro",
            description=(
                "scenario-engine event generation (diurnal + drift + "
                "skew-flip modulated stream)"
            ),
            unit=f"s / ~{n_scenario} events",
            fn=_scenario_step_fn(n_scenario),
            post=_rate_post("scenario_events_per_s"),
        ),
    ]
