"""Benchmark harness primitives.

A :class:`BenchSpec` names a measurable unit of work; :func:`run_spec`
times it with warmup + repeats and returns a :class:`BenchResult` carrying
min/median/mean/stddev wall-clock seconds.  Results serialize to the
``BENCH_core.json`` schema (see :mod:`repro.bench.cli`) so the perf
trajectory can be tracked and regression-gated across PRs.
"""

from __future__ import annotations

import math
import statistics
import time
from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = [
    "BenchSpec",
    "BenchResult",
    "run_spec",
    "run_specs",
    "compare_results",
    "Regression",
]

#: JSON schema identifier stamped into every benchmark report.
SCHEMA = "repro.bench/v1"


@dataclass(frozen=True, slots=True)
class BenchSpec:
    """A named benchmark: a callable timed under warmup + repeats.

    Attributes
    ----------
    name:
        Stable identifier; comparisons across reports join on it.
    kind:
        ``"micro"`` (one subsystem operation in a tight loop) or
        ``"macro"`` (an end-to-end experiment path).
    description:
        One line of human context.
    unit:
        What one repeat measures (always wall-clock seconds; the unit
        string documents the work inside, e.g. ``"s / 20k events"``).
    fn:
        The measured callable.  It may return a dict of floats, merged
        into the result's ``extra`` (throughput numbers etc.); the dict
        from the *last* repeat wins.
    setup:
        Optional un-timed callable invoked once before warmup (builds
        caches, worlds, workloads).
    repeats / warmup:
        Default measurement counts; the CLI can override both.
    post:
        Optional hook receiving the finished :class:`BenchResult` and
        returning additional ``extra`` entries (e.g. speedup vs a
        recorded baseline).
    """

    name: str
    kind: str
    description: str
    unit: str
    fn: Callable[[], Any]
    setup: Callable[[], None] | None = None
    repeats: int = 5
    warmup: int = 1
    post: Callable[["BenchResult"], dict[str, float]] | None = None

    def __post_init__(self) -> None:
        if self.kind not in ("micro", "macro"):
            raise ValueError(f"kind must be 'micro' or 'macro', got {self.kind!r}")
        if self.repeats < 1:
            raise ValueError(f"repeats must be >= 1, got {self.repeats}")
        if self.warmup < 0:
            raise ValueError(f"warmup must be >= 0, got {self.warmup}")


@dataclass(frozen=True, slots=True)
class BenchResult:
    """Timing summary of one :class:`BenchSpec` run."""

    name: str
    kind: str
    unit: str
    repeats: int
    warmup: int
    best_s: float
    median_s: float
    mean_s: float
    stddev_s: float
    extra: dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "kind": self.kind,
            "unit": self.unit,
            "repeats": self.repeats,
            "warmup": self.warmup,
            "best_s": self.best_s,
            "median_s": self.median_s,
            "mean_s": self.mean_s,
            "stddev_s": self.stddev_s,
            "extra": dict(self.extra),
        }


def run_spec(
    spec: BenchSpec,
    repeats: int | None = None,
    warmup: int | None = None,
) -> BenchResult:
    """Time ``spec`` and summarize the repeats."""
    n_repeats = spec.repeats if repeats is None else max(1, repeats)
    n_warmup = spec.warmup if warmup is None else max(0, warmup)
    if spec.setup is not None:
        spec.setup()
    extra: dict[str, float] = {}
    for _ in range(n_warmup):
        spec.fn()
    times: list[float] = []
    for _ in range(n_repeats):
        t0 = time.perf_counter()
        returned = spec.fn()
        times.append(time.perf_counter() - t0)
        if isinstance(returned, dict):
            extra.update(
                (key, float(value)) for key, value in returned.items()
            )
    result = BenchResult(
        name=spec.name,
        kind=spec.kind,
        unit=spec.unit,
        repeats=n_repeats,
        warmup=n_warmup,
        best_s=min(times),
        median_s=statistics.median(times),
        mean_s=statistics.fmean(times),
        stddev_s=statistics.stdev(times) if len(times) > 1 else 0.0,
        extra=extra,
    )
    if spec.post is not None:
        extra.update(spec.post(result))
    return result


def run_specs(
    specs: list[BenchSpec],
    repeats: int | None = None,
    warmup: int | None = None,
    log: Callable[[str], None] | None = None,
) -> list[BenchResult]:
    """Run every spec in order, optionally logging progress lines."""
    results = []
    for spec in specs:
        if log is not None:
            log(f"bench {spec.kind}/{spec.name} ...")
        result = run_spec(spec, repeats=repeats, warmup=warmup)
        if log is not None:
            log(
                f"bench {spec.kind}/{spec.name}: "
                f"best {result.best_s * 1e3:.2f} ms, "
                f"median {result.median_s * 1e3:.2f} ms"
            )
        results.append(result)
    return results


@dataclass(frozen=True, slots=True)
class Regression:
    """A benchmark that slowed down beyond the allowed threshold."""

    name: str
    baseline_median_s: float
    current_median_s: float
    regress_pct: float


def compare_results(
    current: list[BenchResult],
    baseline: dict[str, Any],
    max_regress_pct: float,
) -> tuple[list[Regression], list[str]]:
    """Compare ``current`` against a parsed baseline report.

    Matching is by benchmark name on the median (more noise-robust than
    the best).  Returns the regressions beyond ``max_regress_pct`` and
    the names present in only one of the two reports (skipped).

    Raises :class:`ValueError` (not KeyError) when the baseline does not
    follow the report schema; the CLI validates before measuring, so
    this guards direct library callers.
    """
    entries = baseline.get("results", []) if isinstance(baseline, dict) else None
    if not isinstance(entries, list) or any(
        not isinstance(entry, dict)
        or "name" not in entry
        or "median_s" not in entry
        for entry in entries
    ):
        raise ValueError(
            "baseline does not match the repro.bench/v1 report schema "
            "(expected {'results': [{'name': ..., 'median_s': ...}, ...]})"
        )
    baseline_by_name = {entry["name"]: entry for entry in entries}
    regressions: list[Regression] = []
    skipped: list[str] = []
    seen = set()
    for result in current:
        seen.add(result.name)
        entry = baseline_by_name.get(result.name)
        if entry is None:
            skipped.append(result.name)
            continue
        base_median = float(entry["median_s"])
        if base_median <= 0.0 or not math.isfinite(base_median):
            skipped.append(result.name)
            continue
        regress_pct = (result.median_s / base_median - 1.0) * 100.0
        if regress_pct > max_regress_pct:
            regressions.append(
                Regression(
                    name=result.name,
                    baseline_median_s=base_median,
                    current_median_s=result.median_s,
                    regress_pct=regress_pct,
                )
            )
    skipped.extend(sorted(set(baseline_by_name) - seen))
    return regressions, skipped
