"""Macro benchmarks: end-to-end experiment paths.

``figure2_end_to_end`` runs at the seed default scale and records the
speedup against the pre-optimization baseline measured on this repo before
the hot-path pass (see ``PRE_PR_FIGURE2_BEST_S``); the other specs run at
reduced sizes so the whole macro suite stays in CI-friendly wall time.
"""

from __future__ import annotations

from repro.bench.core import BenchSpec, BenchResult
from repro.experiments import cache_qos, figure2, fuzz, loss, overload, scaling
from repro.experiments.common import default_scale

__all__ = ["specs", "PRE_PR_FIGURE2_BEST_S"]

#: best-of-5 wall-clock of ``figure2.run()`` at the seed default scale
#: (REPRO_SCALE unset, i.e. 0.25) measured immediately before the hot-path
#: optimization pass.  The recorded ``speedup_vs_pre_pr`` in
#: ``BENCH_core.json`` is relative to this number and only meaningful at
#: that same scale.
PRE_PR_FIGURE2_BEST_S = 0.432
_PRE_PR_SCALE = 0.25

#: reduced sizes for the non-figure2 macro paths.
_SCALING_SCALE = 0.05
_FUZZ_SEEDS = 2
_FUZZ_STEPS = 40
_LOSS_QUERIES = 300
_LOSS_DROPS = (0.0, 0.1)
_OVERLOAD_LOADS = (1.0, 2.0)
_OVERLOAD_WINDOW = 2.0
_CACHE_QOS_CHUNKS = 2
_CACHE_QOS_WINDOW = 1.5
_CACHE_QOS_WARMUP = 2.0
_CACHE_QOS_COOLDOWN = 8


def _figure2_post(result: BenchResult) -> dict[str, float]:
    extra = {"pre_pr_best_s": PRE_PR_FIGURE2_BEST_S}
    if default_scale() == _PRE_PR_SCALE and result.best_s > 0:
        extra["speedup_vs_pre_pr"] = PRE_PR_FIGURE2_BEST_S / result.best_s
    return extra


def _fuzz_post(result: BenchResult) -> dict[str, float]:
    total_steps = _FUZZ_SEEDS * _FUZZ_STEPS
    if result.median_s <= 0:
        return {}
    return {"fuzz_steps_per_s": total_steps / result.median_s}


def _overload_post(result: BenchResult) -> dict[str, float]:
    # Each load multiple runs one offered window per protection arm.
    total_windows = len(_OVERLOAD_LOADS) * 2
    if result.median_s <= 0:
        return {}
    return {"overload_windows_per_s": total_windows / result.median_s}


def _cache_qos_post(result: BenchResult) -> dict[str, float]:
    # Each arm runs warmup + crowd chunks + cooldown control rounds.
    total_chunks = _CACHE_QOS_CHUNKS * 2
    if result.median_s <= 0:
        return {}
    return {"cache_qos_chunks_per_s": total_chunks / result.median_s}


def _loss_post(result: BenchResult) -> dict[str, float]:
    # Each (drop, reliability) cell replays the full query workload.
    total_queries = _LOSS_QUERIES * len(_LOSS_DROPS) * 2
    if result.median_s <= 0:
        return {}
    return {"loss_queries_per_s": total_queries / result.median_s}


def specs() -> list[BenchSpec]:
    """The macro suite."""
    return [
        BenchSpec(
            name="figure2_end_to_end",
            kind="macro",
            description="Figure 2 pipeline: build world, stats, MaxFair, fairness",
            unit="s / run (seed scale)",
            fn=lambda: figure2.run(),
            repeats=5,
            warmup=1,
            post=_figure2_post,
        ),
        BenchSpec(
            name="scaling_sweep",
            kind="macro",
            description=f"T1 scaling grid + ablations at scale {_SCALING_SCALE}",
            unit=f"s / sweep (scale {_SCALING_SCALE})",
            fn=lambda: scaling.run(scale=_SCALING_SCALE),
            repeats=3,
            warmup=1,
        ),
        BenchSpec(
            name="fuzz_steps",
            kind="macro",
            description=(
                f"chaos fuzzing, {_FUZZ_SEEDS} seeds x {_FUZZ_STEPS} steps "
                "with invariant checks"
            ),
            unit=f"s / {_FUZZ_SEEDS * _FUZZ_STEPS} fuzz steps",
            fn=lambda: fuzz.run(
                seed=0,
                seeds=_FUZZ_SEEDS,
                steps=_FUZZ_STEPS,
                check_invariants=True,
                shrink_failing=False,
            ),
            repeats=3,
            warmup=1,
            post=_fuzz_post,
        ),
        BenchSpec(
            name="loss_experiment",
            kind="macro",
            description=(
                f"LOSS experiment, {_LOSS_QUERIES} queries x drops "
                f"{_LOSS_DROPS} x (unreliable, reliable)"
            ),
            unit=f"s / sweep ({_LOSS_QUERIES} queries per cell)",
            fn=lambda: loss.run(n_queries=_LOSS_QUERIES, drops=_LOSS_DROPS),
            repeats=3,
            warmup=1,
            post=_loss_post,
        ),
        BenchSpec(
            name="overload_experiment",
            kind="macro",
            description=(
                f"OVERLOAD experiment, loads {_OVERLOAD_LOADS} x "
                "(unprotected, protected)"
            ),
            unit=f"s / sweep ({_OVERLOAD_WINDOW}s windows)",
            fn=lambda: overload.run(
                loads=_OVERLOAD_LOADS, window=_OVERLOAD_WINDOW
            ),
            repeats=3,
            warmup=1,
            post=_overload_post,
        ),
        BenchSpec(
            name="cache_qos_experiment",
            kind="macro",
            description=(
                f"CACHE-QOS experiment, {_CACHE_QOS_CHUNKS} crowd chunks "
                "x (static, adaptive)"
            ),
            unit=f"s / sweep ({_CACHE_QOS_WINDOW}s chunks)",
            fn=lambda: cache_qos.run(
                crowd_chunks=_CACHE_QOS_CHUNKS,
                chunk_window=_CACHE_QOS_WINDOW,
                warmup_window=_CACHE_QOS_WARMUP,
                cooldown_rounds=_CACHE_QOS_COOLDOWN,
            ),
            repeats=3,
            warmup=1,
            post=_cache_qos_post,
        ),
    ]
