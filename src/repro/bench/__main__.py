"""Entry point: ``python -m repro.bench``."""

import sys

from repro.bench.cli import main

if __name__ == "__main__":
    sys.exit(main())
