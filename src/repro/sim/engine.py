"""Deterministic discrete-event simulation engine.

A minimal but complete DES core: events are (time, sequence, callback)
triples kept in a binary heap.  The sequence number makes simultaneous
events fire in scheduling order, so runs are bit-for-bit reproducible.

The engine is deliberately synchronous and callback-based — protocol
handlers schedule follow-up events rather than blocking — which keeps the
overlay code easy to unit-test (handlers are plain methods) and fast
enough for tens of thousands of simulated nodes.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = ["Event", "Simulator", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised on scheduling misuse (negative delays, running twice, ...)."""


@dataclass(order=True, slots=True)
class Event:
    """A scheduled callback.

    Ordered by ``(time, seq)``; ``seq`` is a monotone counter so that
    same-time events run in the order they were scheduled.
    """

    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so the engine skips it when popped."""
        self.cancelled = True


class Simulator:
    """A discrete-event simulator.

    Typical use::

        sim = Simulator()
        sim.schedule(0.0, lambda: print("hello at", sim.now))
        sim.run()

    ``run`` processes events until the queue drains, a time horizon is
    reached, or an event budget is exhausted.
    """

    def __init__(self) -> None:
        self._queue: list[Event] = []
        self._seq = 0
        self._now = 0.0
        self._running = False
        self.events_processed = 0

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    def schedule(self, delay: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` to fire ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        event = Event(time=self._now + delay, seq=self._seq, callback=callback)
        self._seq += 1
        heapq.heappush(self._queue, event)
        return event

    def schedule_at(self, time: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at absolute simulation time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time}, current time is {self._now}"
            )
        return self.schedule(time - self._now, callback)

    def schedule_periodic(
        self,
        interval: float,
        callback: Callable[[], None],
        start_delay: float | None = None,
    ) -> Callable[[], None]:
        """Fire ``callback`` every ``interval`` units until cancelled.

        Returns a zero-argument cancel function.  Models the paper's
        periodic behaviours (leader elections "every day", epidemic
        metadata exchange rounds).
        """
        if interval <= 0:
            raise SimulationError(f"interval must be positive, got {interval}")
        stopped = False
        current: Event | None = None

        def fire() -> None:
            nonlocal current
            if stopped:
                return
            callback()
            if not stopped:
                current = self.schedule(interval, fire)

        current = self.schedule(
            interval if start_delay is None else start_delay, fire
        )

        def cancel() -> None:
            nonlocal stopped
            stopped = True
            if current is not None:
                current.cancel()

        return cancel

    def run(
        self, until: float | None = None, max_events: int | None = None
    ) -> None:
        """Process events until the queue drains or a bound is hit.

        Parameters
        ----------
        until:
            Stop once the next event would fire after this time (the clock
            is advanced to ``until``).
        max_events:
            Safety valve against runaway protocols; raises
            :class:`SimulationError` when exceeded.
        """
        if self._running:
            raise SimulationError("simulator is already running")
        self._running = True
        try:
            processed_this_run = 0
            while self._queue:
                event = self._queue[0]
                if until is not None and event.time > until:
                    self._now = until
                    return
                heapq.heappop(self._queue)
                if event.cancelled:
                    continue
                if max_events is not None and processed_this_run >= max_events:
                    raise SimulationError(
                        f"event budget of {max_events} exhausted at t={self._now}"
                    )
                self._now = event.time
                event.callback()
                self.events_processed += 1
                processed_this_run += 1
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False

    def pending(self) -> int:
        """Number of not-yet-cancelled events in the queue."""
        return sum(1 for event in self._queue if not event.cancelled)

    def clear(self) -> None:
        """Drop all pending events (used between experiment phases)."""
        self._queue.clear()
