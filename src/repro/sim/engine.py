"""Deterministic discrete-event simulation engine.

A minimal but complete DES core: events are (time, sequence, callback)
triples kept in a binary heap.  The sequence number makes simultaneous
events fire in scheduling order, so runs are bit-for-bit reproducible.

The engine is deliberately synchronous and callback-based — protocol
handlers schedule follow-up events rather than blocking — which keeps the
overlay code easy to unit-test (handlers are plain methods) and fast
enough for tens of thousands of simulated nodes.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Callable

from repro import obs

__all__ = ["Event", "Simulator", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised on scheduling misuse (negative delays, running twice, ...)."""


@dataclass(order=True, slots=True)
class Event:
    """A scheduled callback.

    Ordered by ``(time, seq)``; ``seq`` is a monotone counter so that
    same-time events run in the order they were scheduled.
    """

    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    #: the owning simulator, so cancellation keeps its live-event count
    #: exact; ``None`` for events constructed outside a simulator.
    owner: "Simulator | None" = field(default=None, compare=False, repr=False)

    def cancel(self) -> None:
        """Mark the event so the engine skips it when popped."""
        if self.cancelled:
            return
        self.cancelled = True
        if self.owner is not None:
            self.owner._note_cancel()


class Simulator:
    """A discrete-event simulator.

    Typical use::

        sim = Simulator()
        sim.schedule(0.0, lambda: print("hello at", sim.now))
        sim.run()

    ``run`` processes events until the queue drains, a time horizon is
    reached, or an event budget is exhausted.
    """

    def __init__(self) -> None:
        self._queue: list[Event] = []
        self._seq = 0
        self._now = 0.0
        self._running = False
        self._live = 0
        self.events_processed = 0
        #: optional per-callback timing hook: called as
        #: ``hook(event, elapsed_seconds)`` after each dispatched callback.
        #: ``None`` (the default) skips the wall-clock reads entirely.
        self.event_hook: Callable[[Event, float], None] | None = None
        #: callbacks fired when :meth:`run` drains the queue after having
        #: processed at least one event — i.e. at every quiescent point of
        #: the simulation.  Registered via :meth:`on_quiescence`; used by
        #: the chaos harness to check system-wide invariants exactly when
        #: no message is in flight.
        self._quiescence_hooks: list[Callable[[], None]] = []
        self._c_processed = obs.counter("sim.events_processed")
        self._g_queue_depth = obs.gauge("sim.queue_depth")

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    def _note_cancel(self) -> None:
        """An owned event was cancelled; keep :meth:`pending` exact."""
        self._live -= 1

    @property
    def is_quiescent(self) -> bool:
        """True when no live event is pending (nothing in flight)."""
        return self._live == 0

    def on_quiescence(self, hook: Callable[[], None]) -> Callable[[], None]:
        """Register ``hook`` to fire whenever :meth:`run` reaches quiescence.

        Quiescence means the event queue drained after at least one event
        was processed this run — every message has landed or been dropped,
        no callback is mid-flight.  Hooks run in registration order, while
        the simulator is still marked running, so a hook that re-enters
        :meth:`run` raises :class:`SimulationError` — hooks must observe,
        not drive.  Returns a zero-argument unregister function.
        """
        self._quiescence_hooks.append(hook)

        def unregister() -> None:
            try:
                self._quiescence_hooks.remove(hook)
            except ValueError:
                pass

        return unregister

    def schedule(self, delay: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` to fire ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        event = Event(
            time=self._now + delay, seq=self._seq, callback=callback, owner=self
        )
        self._seq += 1
        heapq.heappush(self._queue, event)
        self._live += 1
        return event

    def schedule_at(self, time: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at absolute simulation time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time}, current time is {self._now}"
            )
        return self.schedule(time - self._now, callback)

    def schedule_periodic(
        self,
        interval: float,
        callback: Callable[[], None],
        start_delay: float | None = None,
    ) -> Callable[[], None]:
        """Fire ``callback`` every ``interval`` units until cancelled.

        Returns a zero-argument cancel function.  Models the paper's
        periodic behaviours (leader elections "every day", epidemic
        metadata exchange rounds).
        """
        if interval <= 0:
            raise SimulationError(f"interval must be positive, got {interval}")
        stopped = False
        current: Event | None = None

        def fire() -> None:
            nonlocal current
            if stopped:
                return
            callback()
            if not stopped:
                current = self.schedule(interval, fire)

        current = self.schedule(
            interval if start_delay is None else start_delay, fire
        )

        def cancel() -> None:
            nonlocal stopped
            stopped = True
            if current is not None:
                current.cancel()

        return cancel

    def run(
        self, until: float | None = None, max_events: int | None = None
    ) -> None:
        """Process events until the queue drains or a bound is hit.

        Parameters
        ----------
        until:
            Stop once the next event would fire after this time (the clock
            is advanced to ``until``).
        max_events:
            Safety valve against runaway protocols; raises
            :class:`SimulationError` when exceeded.  The budget is checked
            *before* an event is popped, so the event that would exceed it
            stays queued: a caller may catch the error and call ``run()``
            again to resume with no callback lost.
        """
        if self._running:
            raise SimulationError("simulator is already running")
        self._running = True
        trace_log = obs.TRACE
        heappop = heapq.heappop
        queue = self._queue
        try:
            processed_this_run = 0
            while queue:
                event = queue[0]
                if until is not None and event.time > until:
                    self._now = until
                    return
                if event.cancelled:
                    heappop(queue)
                    continue
                if max_events is not None and processed_this_run >= max_events:
                    raise SimulationError(
                        f"event budget of {max_events} exhausted at t={self._now}"
                    )
                heappop(queue)
                self._live -= 1
                event.owner = None  # cancel() after dispatch must not count
                self._now = event.time
                if trace_log.enabled:
                    trace_log.emit("event_dispatch", t=event.time, seq=event.seq)
                # self.event_hook is re-read per event: a callback may
                # install or remove the hook mid-run.
                event_hook = self.event_hook
                if event_hook is not None:
                    started = perf_counter()
                    event.callback()
                    event_hook(event, perf_counter() - started)
                else:
                    event.callback()
                self.events_processed += 1
                processed_this_run += 1
            if until is not None and until > self._now:
                self._now = until
            if processed_this_run and self._quiescence_hooks:
                # The queue drained: every message landed or was dropped.
                # tuple() so a hook unregistering itself is safe mid-sweep.
                for hook in tuple(self._quiescence_hooks):
                    hook()
        finally:
            self._c_processed.value += processed_this_run
            self._g_queue_depth.value = self._live
            self._running = False

    def pending(self) -> int:
        """Number of not-yet-cancelled events in the queue (O(1))."""
        return self._live

    def clear(self) -> None:
        """Drop all pending events (used between experiment phases)."""
        for event in self._queue:
            event.owner = None  # a later cancel() must not double-count
        self._queue.clear()
        self._live = 0
