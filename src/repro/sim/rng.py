"""Reproducible random-stream management.

Experiments need several independent randomness sources — workload
generation, protocol-level choices (random target node, gossip fan-out),
fault injection — that must not perturb each other: adding one extra
protocol coin-flip must not change which documents a workload requests.

:class:`RngRegistry` hands out one :class:`numpy.random.Generator` per
named stream, derived deterministically from a root seed and the stream
name, so streams are independent and individually reproducible.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["RngRegistry", "derive_seed"]


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from a root seed and a stream name.

    Uses SHA-256 so the mapping is stable across platforms and Python
    versions (unlike the salted builtin ``hash``).
    """
    digest = hashlib.sha256(f"{root_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RngRegistry:
    """A family of independent, named random generators.

    Example::

        rngs = RngRegistry(root_seed=42)
        workload_rng = rngs.stream("workload")
        protocol_rng = rngs.stream("protocol")

    Asking for the same name twice returns the same generator instance.
    """

    def __init__(self, root_seed: int = 0) -> None:
        self.root_seed = root_seed
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use."""
        generator = self._streams.get(name)
        if generator is None:
            generator = np.random.default_rng(derive_seed(self.root_seed, name))
            self._streams[name] = generator
        return generator

    def fork(self, name: str) -> "RngRegistry":
        """A child registry whose streams are independent of this one's."""
        return RngRegistry(root_seed=derive_seed(self.root_seed, f"fork:{name}"))

    def names(self) -> list[str]:
        """Names of all streams created so far (sorted)."""
        return sorted(self._streams)
