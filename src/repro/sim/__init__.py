"""Discrete-event simulation substrate.

The paper evaluates its protocols by simulation; this subpackage is the
substrate those simulations run on:

* :mod:`repro.sim.engine` — a deterministic discrete-event simulator with
  an event heap, timers, and stable tie-breaking;
* :mod:`repro.sim.network` — a message-passing network on top of the
  engine, with a latency/bandwidth cost model, per-link traffic
  accounting, and fault injection (message drops, node crashes, network
  partitions);
* :mod:`repro.sim.rng` — reproducible random-stream management so that
  protocol randomness (e.g. random target-node selection) is decoupled
  from workload randomness.
"""

from repro.sim.engine import Event, Simulator
from repro.sim.network import Message, Network, NetworkStats
from repro.sim.rng import RngRegistry

__all__ = [
    "Event",
    "Message",
    "Network",
    "NetworkStats",
    "RngRegistry",
    "Simulator",
]
