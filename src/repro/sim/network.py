"""Message-passing network on top of the discrete-event engine.

Models what the paper's protocols need from the internet substrate:

* **Delivery with latency** — a fixed per-hop base latency plus a
  size-proportional transfer time (``size_bytes / bandwidth``), so small
  control messages are cheap and document transfers take realistic time.
* **Traffic accounting** — per-node and global counters of messages and
  bytes sent, used by the rebalancing-cost experiment (T3) to verify the
  paper's "large transfer broken into many small pair transfers" claim.
* **Fault injection** — message drop probability, crashed nodes, and
  network partitions (Section 6.1's discussion of sub-cluster trees under
  partitionings).

Handlers are registered per node id; a delivered message invokes
``handler(message)`` at the destination.  Sending to a crashed node or
across a partition silently drops the message — exactly the failure model
the paper's protocols must tolerate.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Any, Callable

from repro import obs
from repro.sim.engine import Simulator

__all__ = ["Message", "Network", "NetworkStats"]

#: one shim warning per process (PR 4 ``--seeds`` pattern): the first
#: deprecated ``Network.send`` call warns, the rest stay silent so test
#: suites and legacy hot loops are not drowned in repeats.
_SEND_SHIM_WARNED = False


@dataclass(frozen=True, slots=True)
class Message:
    """A message in flight.

    ``payload`` is an arbitrary protocol object (the overlay uses the
    dataclasses in :mod:`repro.overlay.messages`); ``kind`` is a short
    string used for traffic breakdowns.

    ``msg_id`` is a network-assigned per-attempt id (unique per
    :meth:`Network.send` call).  ``delivery_id`` / ``attempt`` carry
    reliable-delivery metadata for senders using an ack/retry channel:
    ``delivery_id`` is stable across retransmissions of the same logical
    send (so receivers can suppress duplicates) while ``attempt`` counts
    retransmissions.  Fire-and-forget sends leave ``delivery_id`` at -1.
    """

    src: int
    dst: int
    kind: str
    payload: Any
    size_bytes: int = 256
    sent_at: float = 0.0
    msg_id: int = 0
    delivery_id: int = -1
    attempt: int = 0

    @property
    def reliable(self) -> bool:
        """True when the sender expects an acknowledgement."""
        return self.delivery_id >= 0


@dataclass(slots=True)
class NetworkStats:
    """Cumulative traffic counters.

    ``drops_by_reason`` breaks ``messages_dropped`` down by *why* the
    message was lost:

    * ``dst-dead`` — destination unregistered or crashed at send time;
    * ``src-crashed`` — the sender itself is crashed;
    * ``partitioned`` — sender and destination are in different partitions;
    * ``random-loss`` — lost to the configured drop probability;
    * ``dst-dead-at-delivery`` — the destination crashed or left while the
      message was in flight.
    """

    messages_sent: int = 0
    messages_delivered: int = 0
    messages_dropped: int = 0
    bytes_sent: int = 0
    by_kind: dict[str, int] = field(default_factory=dict)
    bytes_by_kind: dict[str, int] = field(default_factory=dict)
    drops_by_reason: dict[str, int] = field(default_factory=dict)

    def record_sent(self, message: Message) -> None:
        self.messages_sent += 1
        self.bytes_sent += message.size_bytes
        self.by_kind[message.kind] = self.by_kind.get(message.kind, 0) + 1
        self.bytes_by_kind[message.kind] = (
            self.bytes_by_kind.get(message.kind, 0) + message.size_bytes
        )

    def record_dropped(self, reason: str) -> None:
        self.messages_dropped += 1
        self.drops_by_reason[reason] = self.drops_by_reason.get(reason, 0) + 1


class Network:
    """A simulated network connecting protocol handlers.

    Parameters
    ----------
    sim:
        The discrete-event simulator driving delivery.
    base_latency:
        One-way delivery latency for a zero-size message (time units).
    bandwidth:
        Bytes per time unit; transfer time is ``size / bandwidth`` on top
        of the base latency.  ``None`` means size does not affect latency.
    drop_probability:
        Probability an arbitrary message is lost in transit.
    rng:
        Random generator for drop decisions (only consulted when
        ``drop_probability > 0``, keeping fault-free runs deterministic).
    """

    def __init__(
        self,
        sim: Simulator,
        base_latency: float = 0.05,
        bandwidth: float | None = 1_000_000.0,
        drop_probability: float = 0.0,
        rng=None,
    ) -> None:
        if base_latency < 0:
            raise ValueError(f"base_latency must be >= 0, got {base_latency}")
        if bandwidth is not None and bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth}")
        if not 0.0 <= drop_probability < 1.0:
            raise ValueError(
                f"drop_probability must be in [0, 1), got {drop_probability}"
            )
        if drop_probability > 0.0 and rng is None:
            raise ValueError("drop_probability > 0 requires an rng")
        self.sim = sim
        self.base_latency = base_latency
        self.bandwidth = bandwidth
        self.drop_probability = drop_probability
        self.rng = rng
        self.stats = NetworkStats()
        self._c_sent = obs.counter("net.messages_sent")
        self._c_delivered = obs.counter("net.messages_delivered")
        self._c_dropped = obs.counter("net.messages_dropped")
        self._c_bytes = obs.counter("net.bytes_sent")
        self._trace = obs.TRACE
        self._handlers: dict[int, Callable[[Message], None]] = {}
        self._crashed: set[int] = set()
        self._next_msg_id = 0
        #: message kind -> drop-probability override (chaos `ack-loss`
        #: style targeted faults).  Absent kinds use ``drop_probability``.
        self._kind_drop: dict[str, float] = {}
        #: node id -> partition label; nodes in different partitions cannot
        #: communicate.  Unlabelled nodes share the default partition.
        self._partition: dict[int, int] = {}
        #: True while no fault of any sort is armed; lets :meth:`send` skip
        #: the whole crash/partition/loss check chain on the hot path.
        self._fault_free = True
        self._refresh_fault_state()

    def _refresh_fault_state(self) -> None:
        """Recompute the zero-fault flag after any fault-control change."""
        self._fault_free = (
            not self._crashed
            and not self._partition
            and self.drop_probability == 0.0
            and not self._kind_drop
        )

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    def register(self, node_id: int, handler: Callable[[Message], None]) -> None:
        """Attach a node's message handler (joins the network)."""
        self._handlers[node_id] = handler
        if self._crashed:
            self._crashed.discard(node_id)
            self._refresh_fault_state()

    def unregister(self, node_id: int) -> None:
        """Detach a node (graceful leave)."""
        self._handlers.pop(node_id, None)

    def crash(self, node_id: int) -> None:
        """Mark a node crashed: it silently loses all traffic."""
        self._crashed.add(node_id)
        self._fault_free = False

    def recover(self, node_id: int) -> None:
        """Clear a node's crashed flag."""
        self._crashed.discard(node_id)
        self._refresh_fault_state()

    def is_alive(self, node_id: int) -> bool:
        return node_id in self._handlers and node_id not in self._crashed

    def registered_nodes(self) -> list[int]:
        """Sorted ids of all nodes with a handler (alive or crashed)."""
        return sorted(self._handlers)

    def crashed_nodes(self) -> list[int]:
        """Sorted ids of nodes currently marked crashed."""
        return sorted(self._crashed)

    # ------------------------------------------------------------------
    # partitions
    # ------------------------------------------------------------------
    def set_partition(self, node_ids, label: int) -> None:
        """Place ``node_ids`` into partition ``label``."""
        for node_id in node_ids:
            self._partition[node_id] = label
        self._refresh_fault_state()

    def heal_partitions(self) -> None:
        """Merge all partitions back into one network."""
        self._partition.clear()
        self._refresh_fault_state()

    def _same_partition(self, a: int, b: int) -> bool:
        return self._partition.get(a, 0) == self._partition.get(b, 0)

    def partition_labels(self) -> dict[int, int]:
        """A copy of the node -> partition-label map (empty when healed)."""
        return dict(self._partition)

    def is_partitioned(self) -> bool:
        """True when registered nodes span more than one partition label."""
        if not self._partition:
            return False
        labels = {self._partition.get(node_id, 0) for node_id in self._handlers}
        return len(labels) > 1

    # ------------------------------------------------------------------
    # scheduled fault controls (chaos harness)
    # ------------------------------------------------------------------
    def set_drop_probability(self, probability: float) -> None:
        """Change the random-loss probability mid-run.

        Raising it above zero requires the network to have been built with
        an ``rng`` (drop decisions must come from a named stream so the
        run stays reproducible).
        """
        if not 0.0 <= probability < 1.0:
            raise ValueError(
                f"drop_probability must be in [0, 1), got {probability}"
            )
        if probability > 0.0 and self.rng is None:
            raise ValueError("drop_probability > 0 requires an rng")
        self.drop_probability = probability
        self._refresh_fault_state()

    def set_kind_drop_probability(self, kind: str, probability: float) -> None:
        """Override the drop probability for one message ``kind``.

        Used by the chaos harness to target protocol paths — e.g. dropping
        only ``ack`` messages forces retransmission storms without touching
        the rest of the traffic.  The override fully replaces the global
        probability for that kind (0.0 pins a kind lossless).
        """
        if not 0.0 <= probability < 1.0:
            raise ValueError(
                f"drop_probability must be in [0, 1), got {probability}"
            )
        if probability > 0.0 and self.rng is None:
            raise ValueError("drop_probability > 0 requires an rng")
        self._kind_drop[kind] = probability
        self._fault_free = False

    def clear_kind_drop_probabilities(self) -> None:
        """Remove all per-kind overrides (part of a chaos ``heal``)."""
        self._kind_drop.clear()
        self._refresh_fault_state()

    def schedule_partition(self, delay: float, groups) -> None:
        """Schedule a partitioning: each group of node ids gets its own label.

        ``groups`` is an iterable of node-id iterables; the first group gets
        label 1, the second label 2, and so on.  Nodes in no group keep the
        default label 0 (and so can still talk to each other).
        """
        groups = [list(group) for group in groups]

        def apply() -> None:
            for label, group in enumerate(groups, start=1):
                self.set_partition(group, label)

        self.sim.schedule(delay, apply)

    def schedule_heal(self, delay: float) -> None:
        """Schedule a full partition heal."""
        self.sim.schedule(delay, self.heal_partitions)

    def schedule_loss_ramp(
        self, target: float, duration: float, steps: int = 4
    ) -> None:
        """Ramp the drop probability to ``target`` over ``duration``.

        The probability moves in ``steps`` equal increments from its value
        at ramp start, the last step landing exactly on ``target`` — the
        gradually-degrading-link regime rather than a cliff.
        """
        if steps < 1:
            raise ValueError(f"steps must be >= 1, got {steps}")
        if duration < 0:
            raise ValueError(f"duration must be >= 0, got {duration}")
        start = self.drop_probability

        def make_step(index: int):
            fraction = index / steps
            return lambda: self.set_drop_probability(
                start + (target - start) * fraction
            )

        for index in range(1, steps + 1):
            self.sim.schedule(duration * index / steps, make_step(index))

    # ------------------------------------------------------------------
    # sending
    # ------------------------------------------------------------------
    def latency_for(self, size_bytes: int) -> float:
        """Delivery latency of a message of ``size_bytes``."""
        transfer = 0.0 if self.bandwidth is None else size_bytes / self.bandwidth
        return self.base_latency + transfer

    def transmit(
        self,
        src: int,
        dst: int,
        kind: str,
        payload: Any,
        size_bytes: int = 256,
        delivery_id: int = -1,
        attempt: int = 0,
    ) -> Message:
        """Send a message; delivery is scheduled on the simulator.

        Messages to dead/partitioned destinations, or unlucky under the
        drop probability, are counted as dropped and never delivered — the
        sender gets no error (UDP-like semantics; senders needing
        reliability layer an ack/retry channel on top, tagging retries
        with a stable ``delivery_id`` — see :mod:`repro.reliability`).

        Protocol code should not call this directly: peers go through a
        :class:`repro.transport.Transport` (whose sim adapter binds this
        method), keeping the protocols world-agnostic.
        """
        self._next_msg_id += 1
        message = Message(
            src=src,
            dst=dst,
            kind=kind,
            payload=payload,
            size_bytes=size_bytes,
            sent_at=self.sim.now,
            msg_id=self._next_msg_id,
            delivery_id=delivery_id,
            attempt=attempt,
        )
        self.stats.record_sent(message)
        self._c_sent.value += 1
        self._c_bytes.value += size_bytes
        if self._trace.enabled:
            self._trace.emit(
                "msg_send",
                t=self.sim.now,
                src=src,
                dst=dst,
                msg=kind,
                size=size_bytes,
            )

        # Checked in a fixed order so the rng is consulted only for
        # messages that would otherwise go through (deterministic
        # fault-free runs) and each drop has exactly one reason.  With no
        # fault armed the chain collapses to a handler-presence check
        # (``is_alive`` with an empty crash set); the rng is untouched on
        # both paths, so fault-free runs stay deterministic either way.
        reason = None
        if self._fault_free:
            if dst not in self._handlers:
                reason = "dst-dead"
        elif not self.is_alive(dst):
            reason = "dst-dead"
        elif src in self._crashed:
            reason = "src-crashed"
        elif not self._same_partition(src, dst):
            reason = "partitioned"
        else:
            loss = self._kind_drop.get(kind, self.drop_probability)
            if loss > 0.0 and self.rng.random() < loss:
                reason = "random-loss"
        if reason is not None:
            self._drop(message, reason)
            return message

        def deliver() -> None:
            # Re-check liveness at delivery time: the destination may have
            # crashed or left while the message was in flight.
            handler = self._handlers.get(dst)
            if handler is None or dst in self._crashed:
                self._drop(message, "dst-dead-at-delivery")
                return
            self.stats.messages_delivered += 1
            self._c_delivered.value += 1
            if self._trace.enabled:
                self._trace.emit(
                    "msg_deliver", t=self.sim.now, src=src, dst=dst, msg=kind
                )
            handler(message)

        self.sim.schedule(self.latency_for(size_bytes), deliver)
        return message

    def send(
        self,
        src: int,
        dst: int,
        kind: str,
        payload: Any,
        size_bytes: int = 256,
        delivery_id: int = -1,
        attempt: int = 0,
    ) -> Message:
        """Deprecated alias of :meth:`transmit` for direct callers.

        Protocol code must route sends through a
        :class:`repro.transport.Transport`; direct network sends bypass
        the transport seam (and any reliability wrapper on it).  Warns
        once per process, then delegates.
        """
        global _SEND_SHIM_WARNED
        if not _SEND_SHIM_WARNED:
            _SEND_SHIM_WARNED = True
            warnings.warn(
                "Network.send is deprecated: route protocol sends through "
                "a repro.transport.Transport (or call Network.transmit for "
                "harness-level injection)",
                DeprecationWarning,
                stacklevel=2,
            )
        return self.transmit(
            src,
            dst,
            kind,
            payload,
            size_bytes=size_bytes,
            delivery_id=delivery_id,
            attempt=attempt,
        )

    def _drop(self, message: Message, reason: str) -> None:
        self.stats.record_dropped(reason)
        self._c_dropped.value += 1
        if self._trace.enabled:
            self._trace.emit(
                "msg_drop",
                t=self.sim.now,
                src=message.src,
                dst=message.dst,
                msg=message.kind,
                reason=reason,
            )

    def broadcast(
        self,
        src: int,
        dsts,
        kind: str,
        payload: Any,
        size_bytes: int = 256,
    ) -> int:
        """Send the same payload to many destinations; returns the count."""
        count = 0
        for dst in dsts:
            if dst != src:
                self.transmit(src, dst, kind, payload, size_bytes=size_bytes)
                count += 1
        return count
