"""Reproduction of "Towards High Performance Peer-to-Peer Content and
Resource Sharing Systems" (Triantafillou, Xiruhaki, Koubarakis, Ntarmos —
CIDR 2003).

A production-quality Python library implementing the paper's cluster-based
P2P architecture end to end:

* :mod:`repro.model` — documents, categories, heterogeneous peers, Zipf
  workloads, and the paper's evaluation scenarios;
* :mod:`repro.core` — the MaxFair / MaxFair_Reassign load-balancing
  algorithms, fairness metrics, the ICLB formalization, and the replica
  placement policy;
* :mod:`repro.sim` — a deterministic discrete-event simulation substrate
  with a latency/bandwidth network model and fault injection;
* :mod:`repro.overlay` — the full protocol suite: metadata structures
  (DT/DCRT/NRT), query processing, publish/join/leave, leader election,
  the four-phase adaptation mechanism, and the lazy rebalancing protocol;
* :mod:`repro.baselines` — Chord, Gnutella-style flooding, and a hybrid
  central-index system as comparators;
* :mod:`repro.metrics` — load and response-time accounting and reporting;
* :mod:`repro.obs` — simulation-time-aware observability: counters,
  gauges, histograms, wall-clock timers, typed tracing, and JSONL/text
  snapshot exporters the instrumented core records into;
* :mod:`repro.experiments` — one module per paper figure/table, runnable
  via ``repro-experiments`` or ``python -m repro.experiments``.

Quickstart::

    from repro.model import zipf_category_scenario
    from repro.core import maxfair, normalized_cluster_popularities, jain_fairness

    instance = zipf_category_scenario(scale=0.1, seed=7)
    assignment = maxfair(instance)
    values = normalized_cluster_popularities(
        instance, assignment.category_to_cluster
    )
    print(f"fairness = {jain_fairness(values):.4f}")
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
