"""Deterministic expansion of a :class:`ScenarioSpec` into events.

:func:`generate_events` turns a spec plus a built
:class:`~repro.model.system.SystemInstance` into an :class:`EventStream`:
a timestamped query workload plus timestamped control events (misbehavior
arming, regional partitions and heals).  Consumers are the SCENARIO
experiment (phased ``run_workload`` calls), the chaos harness (scenario
actions draw on the same modulation math), and the ``scenario_step``
micro benchmark.

Determinism contract
--------------------
The stream is a pure function of ``(spec, instance)``:

* the **stationary path** (no diurnal/drift/flips) consumes its RNG in
  exactly the :func:`~repro.model.workload.make_query_workload` order, so
  a stationary spec's queries are *identical* to today's workloads;
* the **modulated path** discretizes time into ``spec.window`` slices and
  issues a deterministic ``round(rate * window)`` queries per slice and
  region — no Poisson draws, so counts never depend on float summation
  order;
* control events use their own salted seed streams, independent of the
  query stream (adding a partition never perturbs the queries).

``EventStream.canonical_bytes()`` renders the whole stream as canonical
JSONL; the property suite asserts byte-identity across repeated
generation and across a JSON spec round trip.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass

import numpy as np

from repro.model.system import SystemInstance
from repro.model.workload import Query, QueryWorkload, make_query_workload
from repro.model.zipf import TimeVaryingZipfSampler
from repro.scenario.spec import ScenarioSpec

__all__ = [
    "ControlEvent",
    "EventStream",
    "rate_at",
    "generate_events",
    "designate_free_riders",
]

#: salts for the engine's independent seed streams — each deterministic
#: sub-generator seeds ``default_rng([spec.seed, SALT])`` so enabling one
#: modulator never shifts another's draws.
_SALT_FLIPS = 1
_SALT_MISBEHAVE = 2
_SALT_FREE_RIDERS = 3

#: float guard for the window loop's termination test.
_EPS = 1e-12


def _rng(seed: int, salt: int) -> np.random.Generator:
    return np.random.default_rng([seed, salt])


@dataclass(frozen=True, slots=True)
class ControlEvent:
    """A timestamped non-query action (``misbehave``/``partition``/``heal``).

    ``params`` is a sorted tuple of JSON-safe key/value pairs, keeping the
    event hashable and its canonical rendering stable.
    """

    time: float
    kind: str
    params: tuple[tuple[str, object], ...] = ()


@dataclass(frozen=True)
class EventStream:
    """The expanded scenario: timestamped queries plus control events."""

    spec: ScenarioSpec
    workload: QueryWorkload
    #: issue time of each query, aligned with ``workload.queries``.
    times: tuple[float, ...]
    controls: tuple[ControlEvent, ...]

    def __len__(self) -> int:
        return len(self.workload.queries)

    def canonical_bytes(self) -> bytes:
        """Canonical JSONL rendering — the byte-identity contract surface.

        One line per event in stream order (queries first, then controls,
        each already deterministically ordered), with sorted keys and
        fixed separators so equal streams serialize to equal bytes.
        """
        lines = []
        for time, query in zip(self.times, self.workload.queries):
            lines.append(
                json.dumps(
                    {
                        "t": time,
                        "kind": "query",
                        "query_id": query.query_id,
                        "requester": query.requester_id,
                        "doc": query.target_doc_id,
                        "categories": list(query.category_ids),
                        "m": query.m,
                    },
                    sort_keys=True,
                    separators=(",", ":"),
                )
            )
        for control in self.controls:
            lines.append(
                json.dumps(
                    {
                        "t": control.time,
                        "kind": control.kind,
                        "params": dict(control.params),
                    },
                    sort_keys=True,
                    separators=(",", ":"),
                )
            )
        return ("\n".join(lines) + "\n").encode("utf-8")


def rate_at(spec: ScenarioSpec, t: float, region: int = 0) -> float:
    """Instantaneous per-region request rate at time ``t``.

    Non-negative for every valid spec: the diurnal factor is
    ``1 + amplitude * sin(...)`` with ``amplitude <= 1`` by construction,
    so the product cannot go below zero (the final ``max`` only absorbs
    float rounding).
    """
    rate = spec.base_rate / spec.n_regions
    diurnal = spec.diurnal
    if diurnal is not None:
        offset = 0.0
        if diurnal.regional_offsets:
            offset = diurnal.regional_offsets[
                region % len(diurnal.regional_offsets)
            ]
        factor = 1.0 + diurnal.amplitude * math.sin(
            2.0 * math.pi * (t / diurnal.period + diurnal.phase + offset)
        )
        rate *= factor
    return max(0.0, rate)


def _doc_sampler(
    spec: ScenarioSpec, instance: SystemInstance
) -> tuple[list[int], TimeVaryingZipfSampler]:
    """The (doc ids, time-varying law) pair behind the modulated path."""
    doc_ids = sorted(instance.documents)
    popularity = np.array(
        [instance.documents[doc_id].popularity for doc_id in doc_ids]
    )
    flips = []
    if spec.flips:
        flip_rng = _rng(spec.seed, _SALT_FLIPS)
        for flip in spec.flips:
            n_hot = min(flip.n_hot, len(doc_ids))
            hot = flip_rng.choice(len(doc_ids), size=n_hot, replace=False)
            flips.append(
                (flip.at, flip.mass, tuple(int(index) for index in hot))
            )
    drift = spec.drift.ranks_per_unit if spec.drift is not None else 0.0
    sampler = TimeVaryingZipfSampler(
        popularity, drift_ranks_per_unit=drift, flips=tuple(flips)
    )
    return doc_ids, sampler


def _region_members(spec: ScenarioSpec, instance: SystemInstance) -> list[list[int]]:
    """Region ``r`` holds the nodes with ``node_id % n_regions == r``."""
    regions: list[list[int]] = [[] for _ in range(spec.n_regions)]
    for node_id in sorted(instance.nodes):
        regions[node_id % spec.n_regions].append(node_id)
    return regions


def _modulated_queries(
    spec: ScenarioSpec, instance: SystemInstance
) -> tuple[QueryWorkload, tuple[float, ...]]:
    """The non-stationary path: window-discretized, rate-modulated draws."""
    rng = np.random.default_rng(spec.seed)
    doc_ids, sampler = _doc_sampler(spec, instance)
    regions = _region_members(spec, instance)
    documents = instance.documents

    queries: list[Query] = []
    times: list[float] = []
    query_id = 0
    t = 0.0
    while t < spec.duration - _EPS:
        window = min(spec.window, spec.duration - t)
        mid = t + window / 2.0
        for region_id, members in enumerate(regions):
            if not members:
                continue
            count = int(round(rate_at(spec, mid, region_id) * window))
            if count <= 0:
                continue
            choices = sampler.sample(rng, mid, count)
            requester_idx = rng.integers(0, len(members), size=count)
            for j in range(count):
                doc = documents[doc_ids[int(choices[j])]]
                queries.append(
                    Query(
                        query_id=query_id,
                        requester_id=members[int(requester_idx[j])],
                        target_doc_id=doc.doc_id,
                        category_ids=doc.categories,
                        m=spec.m,
                    )
                )
                times.append(t + (j + 0.5) * window / count)
                query_id += 1
        t += window

    # Regions interleave within a window; sort jointly so issue times are
    # non-decreasing (ties broken by generation order — deterministic).
    order = sorted(range(len(queries)), key=lambda i: (times[i], i))
    return (
        QueryWorkload(queries=[queries[i] for i in order]),
        tuple(times[i] for i in order),
    )


def _control_events(
    spec: ScenarioSpec, instance: SystemInstance
) -> tuple[ControlEvent, ...]:
    controls: list[ControlEvent] = []
    misbehavior = spec.misbehavior
    if misbehavior is not None and (
        misbehavior.n_bogus or misbehavior.n_stale_gossip
    ):
        rng = _rng(spec.seed, _SALT_MISBEHAVE)
        node_ids = sorted(instance.nodes)
        total = min(
            misbehavior.n_bogus + misbehavior.n_stale_gossip, len(node_ids)
        )
        picks = rng.choice(len(node_ids), size=total, replace=False)
        for k, index in enumerate(picks):
            mode = "bogus" if k < misbehavior.n_bogus else "stale_gossip"
            controls.append(
                ControlEvent(
                    time=float(misbehavior.at),
                    kind="misbehave",
                    params=(
                        ("mode", mode),
                        ("node_id", int(node_ids[int(index)])),
                    ),
                )
            )
    for partition in spec.partitions:
        controls.append(
            ControlEvent(
                time=float(partition.at),
                kind="partition",
                params=(("region", int(partition.region)),),
            )
        )
        controls.append(
            ControlEvent(
                time=float(partition.at + partition.duration), kind="heal"
            )
        )
    controls.sort(key=lambda c: (c.time, c.kind, c.params))
    return tuple(controls)


def generate_events(
    spec: ScenarioSpec, instance: SystemInstance
) -> EventStream:
    """Expand ``spec`` against ``instance`` into an :class:`EventStream`.

    Stationary specs (no diurnal/drift/flips) delegate to
    :func:`~repro.model.workload.make_query_workload` with the spec's seed
    — same RNG stream, same queries — and space issues evenly over the
    duration.  Modulated specs go through the windowed path.
    """
    if spec.is_stationary:
        workload = make_query_workload(
            instance, spec.n_queries, seed=spec.seed, m=spec.m
        )
        n = len(workload.queries)
        interval = spec.duration / n if n else 0.0
        times = tuple(i * interval for i in range(n))
    else:
        workload, times = _modulated_queries(spec, instance)
    return EventStream(
        spec=spec,
        workload=workload,
        times=times,
        controls=_control_events(spec, instance),
    )


def designate_free_riders(
    instance: SystemInstance, fraction: float, seed: int
) -> tuple[int, ...]:
    """Turn a seeded ``fraction`` of nodes into free riders, in place.

    The chosen nodes hand every contribution to the remaining
    contributors (round-robin), so documents and per-category popularity
    are conserved and ``instance.validate()`` still passes; afterwards
    each chosen node has ``Node.is_free_rider`` true, no
    ``node_categories`` entry, and therefore no cluster membership — it
    consumes queries while contributing no capacity or documents.

    Returns the chosen node ids (sorted).  At least one contributor
    always remains.
    """
    if not 0.0 <= fraction < 1.0:
        raise ValueError(f"fraction must be in [0, 1), got {fraction}")
    node_ids = sorted(instance.nodes)
    n_free = min(int(round(len(node_ids) * fraction)), len(node_ids) - 1)
    if n_free <= 0:
        return ()
    rng = _rng(seed, _SALT_FREE_RIDERS)
    picks = rng.choice(len(node_ids), size=n_free, replace=False)
    free = sorted(node_ids[int(index)] for index in picks)
    free_set = set(free)
    recipients = [
        node_id for node_id in node_ids if node_id not in free_set
    ]
    next_recipient = 0
    for node_id in free:
        node = instance.nodes[node_id]
        for doc_id in list(node.contributed_doc_ids):
            recipient_id = recipients[next_recipient % len(recipients)]
            next_recipient += 1
            recipient = instance.nodes[recipient_id]
            recipient.contribute(doc_id)
            cats = instance.node_categories.setdefault(recipient_id, [])
            for category_id in instance.documents[doc_id].categories:
                if category_id not in cats:
                    cats.append(category_id)
                    cats.sort()
            node.stored_doc_ids.discard(doc_id)
        node.contributed_doc_ids.clear()
        instance.node_categories.pop(node_id, None)
    return tuple(free)
