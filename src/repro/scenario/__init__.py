"""Composable, declarative workload scenarios (the scenario engine).

Specs (:mod:`repro.scenario.spec`) describe non-stationary workloads as
frozen, JSON-round-trippable dataclasses; the engine
(:mod:`repro.scenario.engine`) expands a spec against a built world into
a deterministic :class:`~repro.scenario.engine.EventStream`.  Same spec +
seed ⇒ byte-identical stream; stationary specs reproduce
:func:`~repro.model.workload.make_query_workload` exactly.

Consumed by the SCENARIO experiment
(:mod:`repro.experiments.scenario`), the chaos harness's scenario
actions (:mod:`repro.chaos`), and the ``scenario_step`` micro benchmark.
"""

from repro.scenario.engine import (  # noqa: F401  (re-exported)
    ControlEvent,
    EventStream,
    designate_free_riders,
    generate_events,
    rate_at,
)
from repro.scenario.spec import (  # noqa: F401  (re-exported)
    DiurnalSpec,
    DriftSpec,
    FreeRiderSpec,
    MisbehaviorSpec,
    RegionalPartitionSpec,
    ScenarioSpec,
    SkewFlipSpec,
    standard_matrix,
)

__all__ = [
    "ControlEvent",
    "DiurnalSpec",
    "DriftSpec",
    "EventStream",
    "FreeRiderSpec",
    "MisbehaviorSpec",
    "RegionalPartitionSpec",
    "ScenarioSpec",
    "SkewFlipSpec",
    "designate_free_riders",
    "generate_events",
    "rate_at",
    "standard_matrix",
]
