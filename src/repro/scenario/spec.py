"""Declarative scenario specifications (frozen, JSON-round-trippable).

A :class:`ScenarioSpec` describes a complete non-stationary workload as
data: a base request rate over a duration, optionally modulated by a
diurnal cycle (with per-region time-zone offsets), popularity drift, and
breaking-news skew flips, plus environment stressors — free-riding nodes,
misbehaving peers, and correlated regional partitions.

Specs are the engine's only input besides the world itself.  The core
contract (enforced by property tests): the same spec and seed always
produce a **byte-identical** event stream (see
:meth:`repro.scenario.engine.EventStream.canonical_bytes`), and a spec
survives a JSON round trip unchanged, so any run is replayable from a
serialized artifact.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field

__all__ = [
    "DiurnalSpec",
    "DriftSpec",
    "SkewFlipSpec",
    "FreeRiderSpec",
    "MisbehaviorSpec",
    "RegionalPartitionSpec",
    "ScenarioSpec",
    "standard_matrix",
]


@dataclass(frozen=True, slots=True)
class DiurnalSpec:
    """Sinusoidal rate modulation: ``1 + amplitude * sin(2π(t/period + φ))``.

    ``amplitude`` is capped at 1 so the instantaneous rate can never go
    negative — non-negativity holds by construction, not by clamping.
    ``regional_offsets`` are per-region phase shifts in cycle fractions
    (0.25 = a quarter period "time zone" east); region ``r`` uses offset
    ``regional_offsets[r % len(regional_offsets)]``.
    """

    period: float = 24.0
    amplitude: float = 0.5
    phase: float = 0.0
    regional_offsets: tuple[float, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "regional_offsets", tuple(self.regional_offsets)
        )
        if self.period <= 0:
            raise ValueError(f"period must be positive, got {self.period}")
        if not 0.0 <= self.amplitude <= 1.0:
            raise ValueError(
                f"amplitude must be in [0, 1], got {self.amplitude}"
            )


@dataclass(frozen=True, slots=True)
class DriftSpec:
    """Popularity drift: the hot documents rotate through the rank order.

    ``ranks_per_unit`` positions per time unit; a pure permutation of the
    popularity vector, so total mass is conserved by construction.
    """

    ranks_per_unit: float = 1.0

    def __post_init__(self) -> None:
        if self.ranks_per_unit < 0:
            raise ValueError(
                f"ranks_per_unit must be non-negative, "
                f"got {self.ranks_per_unit}"
            )


@dataclass(frozen=True, slots=True)
class SkewFlipSpec:
    """Breaking news at time ``at``: ``n_hot`` documents suddenly carry
    ``mass`` of all requests (the law becomes the convex mixture
    ``(1 - mass) * old + mass * uniform(hot set)``)."""

    at: float
    mass: float = 0.3
    n_hot: int = 5

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError(f"at must be non-negative, got {self.at}")
        if not 0.0 < self.mass < 1.0:
            raise ValueError(f"mass must be in (0, 1), got {self.mass}")
        if self.n_hot < 1:
            raise ValueError(f"n_hot must be positive, got {self.n_hot}")


@dataclass(frozen=True, slots=True)
class FreeRiderSpec:
    """Fraction of nodes that consume queries but contribute nothing.

    Applied at world-construction time via
    :func:`repro.scenario.engine.designate_free_riders`: the chosen nodes
    hand their contributions to the remaining contributors (documents are
    conserved) and end up with ``Node.is_free_rider`` true.
    """

    fraction: float = 0.2

    def __post_init__(self) -> None:
        if not 0.0 <= self.fraction < 1.0:
            raise ValueError(
                f"fraction must be in [0, 1), got {self.fraction}"
            )


@dataclass(frozen=True, slots=True)
class MisbehaviorSpec:
    """Arm misbehaving peers at time ``at``.

    ``n_bogus`` peers start answering every query with fabricated content
    (caught by the requester-side integrity check and, if anything slips
    through, the ``response-integrity`` invariant); ``n_stale_gossip``
    peers replay a frozen DCRT digest forever (bounded by the gossip
    merge's move-counter ordering).
    """

    at: float = 0.0
    n_bogus: int = 0
    n_stale_gossip: int = 0

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError(f"at must be non-negative, got {self.at}")
        if self.n_bogus < 0 or self.n_stale_gossip < 0:
            raise ValueError("peer counts must be non-negative")


@dataclass(frozen=True, slots=True)
class RegionalPartitionSpec:
    """Correlated outage: one region drops off the network at ``at`` and
    heals ``duration`` later."""

    at: float
    duration: float
    region: int = 0

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError(f"at must be non-negative, got {self.at}")
        if self.duration <= 0:
            raise ValueError(
                f"duration must be positive, got {self.duration}"
            )
        if self.region < 0:
            raise ValueError(f"region must be non-negative, got {self.region}")


@dataclass(frozen=True, slots=True)
class ScenarioSpec:
    """One complete, seeded, replayable workload scenario.

    ``base_rate`` is the total request rate (queries per time unit across
    all regions); nodes belong to region ``node_id % n_regions``.  The
    rate modulators discretize time into ``window``-sized slices — per
    slice and region the engine issues ``round(rate * window)`` queries
    (deterministic, not Poisson, so the stream is a pure function of the
    spec).
    """

    name: str
    seed: int = 0
    duration: float = 10.0
    base_rate: float = 50.0
    m: int = 1
    n_regions: int = 1
    window: float = 1.0
    diurnal: DiurnalSpec | None = None
    drift: DriftSpec | None = None
    flips: tuple[SkewFlipSpec, ...] = ()
    free_riders: FreeRiderSpec | None = None
    misbehavior: MisbehaviorSpec | None = None
    partitions: tuple[RegionalPartitionSpec, ...] = field(default=())

    def __post_init__(self) -> None:
        object.__setattr__(self, "flips", tuple(self.flips))
        object.__setattr__(self, "partitions", tuple(self.partitions))
        if not self.name:
            raise ValueError("name must be non-empty")
        if self.duration <= 0:
            raise ValueError(f"duration must be positive, got {self.duration}")
        if self.base_rate < 0:
            raise ValueError(
                f"base_rate must be non-negative, got {self.base_rate}"
            )
        if self.m < 1:
            raise ValueError(f"m must be positive, got {self.m}")
        if self.n_regions < 1:
            raise ValueError(
                f"n_regions must be positive, got {self.n_regions}"
            )
        if self.window <= 0:
            raise ValueError(f"window must be positive, got {self.window}")

    @property
    def is_stationary(self) -> bool:
        """No rate/skew modulation: the query stream is exactly
        :func:`repro.model.workload.make_query_workload` output."""
        return self.diurnal is None and self.drift is None and not self.flips

    @property
    def n_queries(self) -> int:
        """Query count of the stationary path (``base_rate * duration``)."""
        return int(round(self.base_rate * self.duration))

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """A JSON-safe dict (tuples become lists on the way out)."""
        return asdict(self)

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: dict) -> "ScenarioSpec":
        def build(spec_cls, value):
            return None if value is None else spec_cls(**value)

        data = dict(data)
        data["diurnal"] = build(DiurnalSpec, data.get("diurnal"))
        data["drift"] = build(DriftSpec, data.get("drift"))
        data["free_riders"] = build(FreeRiderSpec, data.get("free_riders"))
        data["misbehavior"] = build(MisbehaviorSpec, data.get("misbehavior"))
        data["flips"] = tuple(
            SkewFlipSpec(**flip) for flip in data.get("flips", ())
        )
        data["partitions"] = tuple(
            RegionalPartitionSpec(**part) for part in data.get("partitions", ())
        )
        return cls(**data)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        return cls.from_dict(json.loads(text))


def standard_matrix(
    seed: int = 7, duration: float = 8.0, base_rate: float = 60.0
) -> tuple[ScenarioSpec, ...]:
    """The SCENARIO experiment's canonical 4-spec matrix.

    One stationary baseline plus one spec per modulation family, all
    driven from the same root ``seed`` so a matrix run is one number to
    reproduce.
    """
    return (
        ScenarioSpec(
            name="stationary",
            seed=seed,
            duration=duration,
            base_rate=base_rate,
        ),
        ScenarioSpec(
            name="diurnal-regional",
            seed=seed + 1,
            duration=duration,
            base_rate=base_rate,
            n_regions=4,
            diurnal=DiurnalSpec(
                period=duration / 2.0,
                amplitude=0.8,
                regional_offsets=(0.0, 0.25, 0.5, 0.75),
            ),
            partitions=(
                RegionalPartitionSpec(
                    at=duration * 0.25, duration=duration * 0.2, region=1
                ),
            ),
        ),
        ScenarioSpec(
            name="drift-flip",
            seed=seed + 2,
            duration=duration,
            base_rate=base_rate,
            drift=DriftSpec(ranks_per_unit=3.0),
            flips=(SkewFlipSpec(at=duration / 2.0, mass=0.4, n_hot=4),),
        ),
        ScenarioSpec(
            name="freeride-misbehave",
            seed=seed + 3,
            duration=duration,
            base_rate=base_rate,
            free_riders=FreeRiderSpec(fraction=0.25),
            misbehavior=MisbehaviorSpec(
                at=duration / 3.0, n_bogus=1, n_stale_gossip=1
            ),
        ),
    )
