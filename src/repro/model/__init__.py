"""Domain model: documents, categories, nodes, and workload generation.

This subpackage provides the static "world" of the paper's system: the
population of sharable documents with Zipf popularities, the document
categories they are grouped into, and the peer nodes that contribute them
(with heterogeneous processing and storage capacities).

The entry point is :class:`repro.model.system.SystemConfig`, which builds a
fully-populated :class:`repro.model.system.SystemInstance` via
:func:`repro.model.system.build_system`, and the scenario helpers in
:mod:`repro.model.workload` that reproduce the paper's two evaluation
scenarios (Figures 2 and 3) and its perturbation stress tests (Figures 4
and 5).
"""

from repro.model.documents import Category, Document
from repro.model.nodes import Node
from repro.model.system import SystemConfig, SystemInstance, build_system
from repro.model.workload import (
    PerturbationResult,
    QueryWorkload,
    add_hot_documents,
    make_query_workload,
    uniform_category_scenario,
    zipf_category_scenario,
)
from repro.model.zipf import ZipfSampler, zipf_pmf, zipf_sample

__all__ = [
    "Category",
    "Document",
    "Node",
    "PerturbationResult",
    "QueryWorkload",
    "SystemConfig",
    "SystemInstance",
    "add_hot_documents",
    "build_system",
    "make_query_workload",
    "uniform_category_scenario",
    "zipf_category_scenario",
    "ZipfSampler",
    "zipf_pmf",
    "zipf_sample",
]
