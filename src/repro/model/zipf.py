"""Zipf distribution utilities.

The paper assumes document popularities follow a Zipf distribution, as has
been observed for web objects [19, 31] and for existing P2P systems [17].
The Zipf parameter theta used throughout the paper's evaluation lies in the
measured range [0.6, 0.8] for documents (theta = 0.8 in all experiments)
and theta = 0.7 or 0.8 for category popularities.

We use the "Zipf-like" form common in the web-caching literature
(Breslau et al. [19]):

    P(rank = i)  proportional to  1 / i**theta,   i = 1..n

with theta = 0 giving the uniform distribution and theta = 1 the classic
Zipf law.  All functions here are deterministic given an explicit
``numpy.random.Generator``; none touch global RNG state.
"""

from __future__ import annotations

import math
from functools import lru_cache

import numpy as np

__all__ = [
    "zipf_pmf",
    "zipf_sample",
    "zipf_cdf",
    "ZipfSampler",
    "TimeVaryingZipfSampler",
    "top_mass_count",
    "mass_of_top",
    "estimate_theta",
]


def zipf_pmf(n: int, theta: float) -> np.ndarray:
    """Return the Zipf-like probability mass function over ranks ``1..n``.

    ``pmf[i]`` is the popularity of the item of rank ``i + 1``.  The vector
    sums to 1 and is non-increasing.

    Parameters
    ----------
    n:
        Number of items (must be positive).
    theta:
        Skew parameter; 0 is uniform, larger is more skewed.
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    if theta < 0:
        raise ValueError(f"theta must be non-negative, got {theta}")
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = ranks**-theta
    return weights / weights.sum()


def zipf_cdf(n: int, theta: float) -> np.ndarray:
    """Return the cumulative distribution over ranks ``1..n``."""
    return np.cumsum(zipf_pmf(n, theta))


@lru_cache(maxsize=128)
def _zipf_sampling_cdf(n: int, theta: float) -> np.ndarray:
    """Normalized sampling CDF for ``ZipfSampler``, cached per (n, theta).

    The returned array is marked read-only: it is shared across every
    sampler with the same parameters.
    """
    cdf = np.cumsum(zipf_pmf(n, theta))
    cdf /= cdf[-1]
    cdf.setflags(write=False)
    return cdf


class ZipfSampler:
    """Precomputed inverse-CDF sampler for a Zipf-like law.

    Drawing via ``cdf.searchsorted(rng.random(size))`` consumes the same
    RNG stream and returns the same values as ``rng.choice(n, size, p=pmf)``
    (numpy's choice is implemented exactly this way), but skips rebuilding
    and re-validating the pmf on every call — the CDF is computed once per
    ``(n, theta)`` and shared.
    """

    __slots__ = ("n", "theta", "_cdf")

    def __init__(self, n: int, theta: float) -> None:
        self._cdf = _zipf_sampling_cdf(n, theta)
        self.n = n
        self.theta = theta

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Draw ``size`` 0-based ranks; index 0 is the most popular item."""
        if size < 0:
            raise ValueError(f"size must be non-negative, got {size}")
        idx = self._cdf.searchsorted(rng.random(size), side="right")
        return np.asarray(idx, dtype=np.int64)


class TimeVaryingZipfSampler:
    """A popularity law whose shape changes over simulated time.

    Two kinds of non-stationarity compose (both from the scenario-engine
    vocabulary; see :mod:`repro.scenario`):

    * **drift** — the identity of the popular items rotates through the
      rank order at ``drift_ranks_per_unit`` positions per time unit (a
      pure permutation of the pmf, so mass is conserved trivially);
    * **skew flips** — at time ``at`` the law becomes the convex mixture
      ``(1 - mass) * old + mass * uniform(hot_indices)`` ("breaking
      news": a small hot set suddenly carries ``mass`` of all requests).
      A convex mixture of distributions is a distribution, so mass is
      conserved here too.

    ``pmf_at(t)`` is a pure function of ``t`` — the sampler holds no
    mutable state, so replaying any time point yields the same law.
    """

    __slots__ = ("_pmf", "drift_ranks_per_unit", "flips")

    def __init__(
        self,
        pmf: np.ndarray,
        drift_ranks_per_unit: float = 0.0,
        flips: tuple[tuple[float, float, tuple[int, ...]], ...] = (),
    ) -> None:
        """``flips`` entries are ``(at, mass, hot_indices)`` triples."""
        pmf = np.asarray(pmf, dtype=np.float64)
        if pmf.ndim != 1 or len(pmf) == 0:
            raise ValueError("pmf must be a non-empty 1-D array")
        if np.any(pmf < 0):
            raise ValueError("pmf entries must be non-negative")
        total = pmf.sum()
        if total <= 0:
            raise ValueError("pmf must have positive total mass")
        if drift_ranks_per_unit < 0:
            raise ValueError(
                f"drift_ranks_per_unit must be non-negative, "
                f"got {drift_ranks_per_unit}"
            )
        for at, mass, hot in flips:
            if not 0.0 < mass < 1.0:
                raise ValueError(f"flip mass must be in (0, 1), got {mass}")
            if not hot:
                raise ValueError(f"flip at t={at} names no hot indices")
            for index in hot:
                if not 0 <= index < len(pmf):
                    raise ValueError(
                        f"flip hot index {index} outside [0, {len(pmf)})"
                    )
        self._pmf = pmf / total
        self._pmf.setflags(write=False)
        self.drift_ranks_per_unit = float(drift_ranks_per_unit)
        self.flips = tuple(sorted(flips, key=lambda flip: flip[0]))

    def __len__(self) -> int:
        return len(self._pmf)

    def pmf_at(self, t: float) -> np.ndarray:
        """The probability mass function in effect at time ``t``.

        Sums to 1 and stays non-negative under any drift/flip composition
        (property-tested in ``tests/test_scenario_properties.py``).
        """
        pmf = self._pmf
        shift = int(self.drift_ranks_per_unit * t) % len(pmf)
        if shift:
            pmf = np.roll(pmf, shift)
        for at, mass, hot in self.flips:
            if t >= at:
                boost = np.zeros(len(pmf))
                boost[list(hot)] = 1.0 / len(hot)
                pmf = (1.0 - mass) * pmf + mass * boost
        return pmf

    def sample(
        self, rng: np.random.Generator, t: float, size: int
    ) -> np.ndarray:
        """Draw ``size`` 0-based item indices from the law at time ``t``."""
        if size < 0:
            raise ValueError(f"size must be non-negative, got {size}")
        cdf = np.cumsum(self.pmf_at(t))
        cdf /= cdf[-1]
        idx = cdf.searchsorted(rng.random(size), side="right")
        return np.asarray(idx, dtype=np.int64)


def zipf_sample(
    rng: np.random.Generator, n: int, theta: float, size: int
) -> np.ndarray:
    """Draw ``size`` item ranks (0-based indices) from a Zipf-like law.

    Returns an integer array of indices in ``[0, n)``, where index 0 is the
    most popular item.
    """
    return ZipfSampler(n, theta).sample(rng, size)


def top_mass_count(pmf: np.ndarray, mass: float) -> int:
    """Smallest number of top-ranked items whose total popularity >= ``mass``.

    This is the quantity behind the paper's Section 4.3.3 observation that
    "less than 10% of all documents typically total more than 35% of the
    document probability mass" for realistic Zipf parameters.

    Parameters
    ----------
    pmf:
        Popularity vector sorted in non-increasing order (need not sum to 1;
        ``mass`` is interpreted as a fraction of its total).
    mass:
        Target fraction of total popularity, in [0, 1].
    """
    if not 0.0 <= mass <= 1.0:
        raise ValueError(f"mass must be in [0, 1], got {mass}")
    if len(pmf) == 0:
        return 0
    total = float(np.sum(pmf))
    if total <= 0.0:
        return 0
    cumulative = np.cumsum(np.sort(pmf)[::-1]) / total
    return int(np.searchsorted(cumulative, mass - 1e-12) + 1)


def mass_of_top(pmf: np.ndarray, count: int) -> float:
    """Fraction of total popularity held by the ``count`` most popular items."""
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if len(pmf) == 0 or count == 0:
        return 0.0
    total = float(np.sum(pmf))
    if total <= 0.0:
        return 0.0
    top = np.sort(pmf)[::-1][:count]
    return float(np.sum(top) / total)


def estimate_theta(counts: np.ndarray) -> float:
    """Estimate the Zipf parameter from observed access counts.

    Fits ``log(count) = c - theta * log(rank)`` by least squares over the
    non-zero counts.  Useful for checking that generated workloads have the
    intended skew, and for the adaptation machinery's popularity tracking.
    """
    counts = np.asarray(counts, dtype=np.float64)
    counts = np.sort(counts[counts > 0])[::-1]
    if len(counts) < 2:
        return 0.0
    ranks = np.arange(1, len(counts) + 1, dtype=np.float64)
    slope, _intercept = np.polyfit(np.log(ranks), np.log(counts), 1)
    return max(0.0, -float(slope))


def harmonic_generalized(n: int, theta: float) -> float:
    """Generalized harmonic number ``H(n, theta) = sum_{i=1}^{n} i**-theta``.

    The normalizing constant of the Zipf-like law; exposed for closed-form
    storage/load computations in the experiments.
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    return float(sum(i**-theta for i in range(1, n + 1)))


def expected_top_mass(n: int, theta: float, fraction: float) -> float:
    """Closed-form fraction of probability mass in the top ``fraction`` items.

    For example ``expected_top_mass(1000, 0.8, 0.10)`` gives the share of
    accesses hitting the most popular 10% of 1000 documents — the quantity
    the replication policy of Section 4.3.3 relies on exceeding 35%.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    top = max(1, math.floor(n * fraction)) if fraction > 0 else 0
    if top == 0:
        return 0.0
    return harmonic_generalized(top, theta) / harmonic_generalized(n, theta)
