"""Documents and document categories.

The paper's content model (Sections 1.2 and 4.1):

* A set ``D`` of sharable documents, each with a popularity ``p(d)`` in
  [0, 1] — the probability a user request targets it.
* A set ``S`` of categories and a mapping ``f: D -> S`` assigning each
  document to one *or more* categories.  When a document belongs to several
  categories its popularity is split evenly among them.
* The popularity of a category is the sum of the (shares of) popularities
  of its documents: ``p(s) = sum of p(d) over d with f(d) = s``.

Categories are the unit of assignment: each category is placed in exactly
one peer cluster by the MaxFair algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Document", "Category", "category_popularities"]


@dataclass(frozen=True, slots=True)
class Document:
    """A sharable document contributed to the community.

    Attributes
    ----------
    doc_id:
        Unique integer identifier.
    popularity:
        Probability in [0, 1] that a request targets this document.
    categories:
        The categories the document belongs to (at least one).  Popularity
        is split evenly among them, per Section 4.1.
    size_bytes:
        Document size; enters only storage and transfer-cost computations
        (the paper's running example uses 4 MB, a 3-minute MP3).
    """

    doc_id: int
    popularity: float
    categories: tuple[int, ...]
    size_bytes: int = 4 * 1024 * 1024

    def __post_init__(self) -> None:
        if self.popularity < 0.0:
            raise ValueError(f"popularity must be >= 0, got {self.popularity}")
        if not self.categories:
            raise ValueError("a document must belong to at least one category")
        if len(self.categories) > 1 and len(set(self.categories)) != len(
            self.categories
        ):
            raise ValueError(f"duplicate categories: {self.categories}")
        if self.size_bytes <= 0:
            raise ValueError(f"size_bytes must be positive, got {self.size_bytes}")

    @property
    def popularity_per_category(self) -> float:
        """The share of this document's popularity each category receives."""
        return self.popularity / len(self.categories)

    def n_chunks(self, chunk_size: int | None = None) -> int:
        """Fixed-size chunks this document splits into on the content
        data plane (``repro.content``); the last chunk may be short."""
        from repro.content.chunks import DEFAULT_CHUNK_SIZE, n_chunks

        return n_chunks(
            self.size_bytes,
            DEFAULT_CHUNK_SIZE if chunk_size is None else chunk_size,
        )


@dataclass(slots=True)
class Category:
    """A document category (semantic or hash-defined group of documents).

    Attributes
    ----------
    category_id:
        Unique integer identifier.
    name:
        Human-readable label (e.g. a genre in the paper's music example).
    doc_ids:
        Identifiers of the documents mapped to this category.
    popularity:
        ``p(s)`` — the summed popularity shares of its documents.
    """

    category_id: int
    name: str = ""
    doc_ids: list[int] = field(default_factory=list)
    popularity: float = 0.0

    def add_document(self, doc: Document) -> None:
        """Register ``doc`` and accumulate its popularity share."""
        if self.category_id not in doc.categories:
            raise ValueError(
                f"document {doc.doc_id} does not belong to category "
                f"{self.category_id}"
            )
        self.doc_ids.append(doc.doc_id)
        self.popularity += doc.popularity_per_category

    def remove_document(self, doc: Document) -> None:
        """Unregister ``doc`` and release its popularity share."""
        self.doc_ids.remove(doc.doc_id)
        self.popularity = max(0.0, self.popularity - doc.popularity_per_category)

    @property
    def n_docs(self) -> int:
        return len(self.doc_ids)


def category_popularities(
    documents: dict[int, Document], n_categories: int
) -> list[float]:
    """Compute ``p(s)`` for every category id in ``[0, n_categories)``.

    Splits multi-category document popularity evenly, per Section 4.1.
    """
    popularity = [0.0] * n_categories
    for doc in documents.values():
        share = doc.popularity_per_category
        for category_id in doc.categories:
            if not 0 <= category_id < n_categories:
                raise ValueError(
                    f"document {doc.doc_id} references unknown category "
                    f"{category_id}"
                )
            popularity[category_id] += share
    return popularity
