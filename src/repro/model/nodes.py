"""Peer nodes and their contributed resources.

The paper's resource model (Sections 4.1 and 4.3):

* Each node ``n`` contributes documents ``D(n)`` spanning categories
  ``S(n)``, a number of *processing capacity units* ``u_n`` (measured
  relative to a reference machine — Section 4.3.1), and storage capacity.
* Only "altruistic" nodes are modelled: free riders contribute nothing and
  are excluded from the resource-management algorithms (Section 4.4), though
  the overlay's join protocol still admits them via a dummy publish.
* A node belongs to every cluster that holds a category it contributes to,
  splitting its computational units across those clusters in proportion to
  the popularity it stores for each (Section 4.3.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Node"]


@dataclass(slots=True)
class Node:
    """A peer contributing content and resources to the community.

    Attributes
    ----------
    node_id:
        Unique integer identifier.
    capacity_units:
        Processing capacity ``u_n`` relative to a reference node; the
        paper's experiments draw this uniformly from [1..5].
    storage_bytes:
        Total local storage the node offers.  ``None`` models the
        simplifying assumption of Sections 4.1-4.3.2 (enough storage for
        every document of its clusters' categories).
    contributed_doc_ids:
        Documents this node originally published.
    stored_doc_ids:
        Documents currently stored locally (contributions plus replicas
        placed by the Section 4.3.3 policy); maintained by the replication
        and rebalancing machinery.
    """

    node_id: int
    capacity_units: float = 1.0
    storage_bytes: int | None = None
    contributed_doc_ids: list[int] = field(default_factory=list)
    stored_doc_ids: set[int] = field(default_factory=set)

    def __post_init__(self) -> None:
        if self.capacity_units <= 0:
            raise ValueError(
                f"capacity_units must be positive, got {self.capacity_units}"
            )
        if self.storage_bytes is not None and self.storage_bytes < 0:
            raise ValueError(
                f"storage_bytes must be non-negative, got {self.storage_bytes}"
            )

    @property
    def is_free_rider(self) -> bool:
        """True when the node contributes no documents (cf. Adar & Huberman)."""
        return not self.contributed_doc_ids

    def contribute(self, doc_id: int) -> None:
        """Record ``doc_id`` as contributed (and therefore stored) here."""
        self.contributed_doc_ids.append(doc_id)
        self.stored_doc_ids.add(doc_id)

    def store_replica(self, doc_id: int) -> None:
        """Store a replica of ``doc_id`` placed by the replication policy."""
        self.stored_doc_ids.add(doc_id)

    def drop_replica(self, doc_id: int) -> None:
        """Drop a stored replica; contributions cannot be dropped this way."""
        if doc_id in self.contributed_doc_ids:
            raise ValueError(
                f"document {doc_id} is an original contribution of node "
                f"{self.node_id}; remove the contribution instead"
            )
        self.stored_doc_ids.discard(doc_id)

    def stored_bytes(self, doc_sizes: dict[int, int]) -> int:
        """Total bytes currently stored, given a doc-id -> size mapping."""
        return sum(doc_sizes[doc_id] for doc_id in self.stored_doc_ids)

    def has_room_for(self, size_bytes: int, doc_sizes: dict[int, int]) -> bool:
        """Whether ``size_bytes`` more fit under the storage budget."""
        if self.storage_bytes is None:
            return True
        return self.stored_bytes(doc_sizes) + size_bytes <= self.storage_bytes
