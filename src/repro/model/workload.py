"""Workload scenarios, query streams, and perturbation generators.

Three kinds of workload are needed to reproduce the paper's evaluation:

* **Scenario builders** — shorthand constructors for the two Section 4.4
  configurations: the "challenging" Zipf-like category-popularity scenario
  of Figure 2 and the near-uniform scenario of Figure 3.
* **Query streams** — request sequences drawn from the document popularity
  distribution, used by the discrete-event experiments to measure observed
  per-node load and response hops.
* **Perturbations** — the Figure 4/5 stress test: add 5% new documents
  that carry 30% of the (resulting) total popularity mass, randomly spread
  over categories, plus node churn generators for Section 6.3 experiments.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.model.documents import Document
from repro.model.system import (
    SCENARIO_UNIFORM,
    SCENARIO_ZIPF,
    SystemConfig,
    SystemInstance,
    build_system,
)
from repro.model.zipf import zipf_pmf

__all__ = [
    "Query",
    "QueryWorkload",
    "PerturbationResult",
    "zipf_category_scenario",
    "uniform_category_scenario",
    "make_query_workload",
    "add_hot_documents",
    "node_churn_events",
]


def zipf_category_scenario(
    scale: float = 1.0,
    seed: int = 0,
    category_theta: float = 0.7,
    doc_theta: float = 0.8,
) -> SystemInstance:
    """Build the Figure 2 scenario (Zipf-like category popularities).

    ``scale`` shrinks all four population sizes proportionally from the
    paper's |D|=200k / |N|=20k / |C|=100 / |S|=500 configuration.
    """
    config = SystemConfig(
        scenario=SCENARIO_ZIPF,
        category_theta=category_theta,
        doc_theta=doc_theta,
        seed=seed,
    ).scaled(scale)
    return build_system(config)


def uniform_category_scenario(
    scale: float = 1.0, seed: int = 0, doc_theta: float = 0.8
) -> SystemInstance:
    """Build the Figure 3 scenario (near-uniform category popularities)."""
    config = SystemConfig(
        scenario=SCENARIO_UNIFORM, doc_theta=doc_theta, seed=seed
    ).scaled(scale)
    return build_system(config)


@dataclass(frozen=True, slots=True)
class Query:
    """A single user request.

    Mirrors the paper's query form ``[(k1..kn), m, idQ]`` (Section 3.3):
    keywords are pre-resolved to a target document and its categories (the
    categorization step is deterministic in our substitution), ``m`` is the
    number of desired results, and ``query_id`` the unique pseudorandom id
    used for loop detection.
    """

    query_id: int
    requester_id: int
    target_doc_id: int
    category_ids: tuple[int, ...]
    m: int = 1


@dataclass(slots=True)
class QueryWorkload:
    """A reproducible request stream over a system instance."""

    queries: list[Query]

    def __len__(self) -> int:
        return len(self.queries)

    def __iter__(self):
        return iter(self.queries)

    def doc_hit_counts(self, n_docs: int) -> np.ndarray:
        """Requests per document id — handy for skew sanity checks."""
        counts = np.zeros(n_docs, dtype=np.int64)
        for query in self.queries:
            counts[query.target_doc_id] += 1
        return counts

    def category_hit_counts(self, n_categories: int) -> np.ndarray:
        """Requests per category id (split across multi-category targets)."""
        counts = np.zeros(n_categories, dtype=np.float64)
        for query in self.queries:
            share = 1.0 / len(query.category_ids)
            for category_id in query.category_ids:
                counts[category_id] += share
        return counts


def make_query_workload(
    instance: SystemInstance,
    n_queries: int,
    seed: int = 0,
    m: int = 1,
) -> QueryWorkload:
    """Draw ``n_queries`` requests according to document popularities.

    Requesters are uniform over nodes — any peer may ask for anything; the
    skew lives entirely in *what* is requested.
    """
    if n_queries < 0:
        raise ValueError(f"n_queries must be non-negative, got {n_queries}")
    rng = np.random.default_rng(seed)
    documents = instance.documents
    doc_ids = sorted(documents)
    popularity = np.array([documents[d].popularity for d in doc_ids])
    total = popularity.sum()
    if total <= 0:
        raise ValueError("instance has zero total popularity")
    # Inverse-CDF sampling: consumes the same RNG stream and yields the
    # same indices as rng.choice(len(doc_ids), size, p=popularity / total),
    # without numpy's per-call pmf validation.
    cdf = np.cumsum(popularity / total)
    cdf /= cdf[-1]
    choices = cdf.searchsorted(rng.random(n_queries), side="right")
    requesters = rng.integers(0, len(instance.nodes), size=n_queries)
    node_ids = sorted(instance.nodes)
    n_nodes = len(node_ids)

    requester_list = requesters.tolist()
    queries = [
        Query(
            query_id=i,
            requester_id=node_ids[requester_list[i] % n_nodes],
            target_doc_id=doc.doc_id,
            category_ids=doc.categories,
            m=m,
        )
        for i, doc in enumerate(
            documents[doc_ids[c]] for c in choices.tolist()
        )
    ]
    return QueryWorkload(queries=queries)


@dataclass(frozen=True, slots=True)
class PerturbationResult:
    """Outcome of a content-population perturbation.

    Attributes
    ----------
    new_doc_ids:
        Identifiers of the documents added.
    added_mass:
        Total popularity added (in the *original* popularity scale).
    affected_categories:
        Categories that received at least one new document.
    """

    new_doc_ids: tuple[int, ...]
    added_mass: float
    affected_categories: tuple[int, ...]


def add_hot_documents(
    instance: SystemInstance,
    doc_fraction: float = 0.05,
    mass_fraction: float = 0.30,
    seed: int = 1,
    new_doc_theta: float = 0.8,
    category_subset_fraction: float | None = None,
) -> PerturbationResult:
    """Apply the Figure 4/5 stress test to ``instance`` in place.

    Adds ``doc_fraction`` x |D| new documents that become the most popular
    content in the system, together carrying ``mass_fraction`` of the
    *resulting* total probability mass (the paper: "we add 5% new documents
    ... which correspond to 30% of the total probability mass").  The new
    documents are "assigned randomly to some semantic categories" — by
    default uniformly over all categories; pass ``category_subset_fraction``
    to concentrate them on a random subset (a harsher upset, closer to a
    flash-crowd on a few topics).  Each new document is contributed by a
    random existing node.
    """
    if not 0.0 < doc_fraction <= 1.0:
        raise ValueError(f"doc_fraction must be in (0, 1], got {doc_fraction}")
    if not 0.0 < mass_fraction < 1.0:
        raise ValueError(f"mass_fraction must be in (0, 1), got {mass_fraction}")
    if category_subset_fraction is not None and not (
        0.0 < category_subset_fraction <= 1.0
    ):
        raise ValueError(
            "category_subset_fraction must be in (0, 1], "
            f"got {category_subset_fraction}"
        )

    rng = np.random.default_rng(seed)
    n_new = max(1, round(len(instance.documents) * doc_fraction))
    old_total = instance.total_popularity
    # added / (old + added) = mass_fraction  =>  added = old * f / (1 - f)
    added_mass = old_total * mass_fraction / (1.0 - mass_fraction)

    # Spread the added mass over the new documents with the same skew as
    # the rest of the content; they dominate the old popular documents in
    # aggregate regardless of the internal split.
    new_popularity = zipf_pmf(n_new, new_doc_theta) * added_mass
    n_categories = len(instance.categories)
    if category_subset_fraction is None:
        candidate_categories = np.arange(n_categories)
    else:
        subset_size = max(1, round(n_categories * category_subset_fraction))
        candidate_categories = rng.choice(n_categories, size=subset_size, replace=False)
    target_categories = candidate_categories[
        rng.integers(0, len(candidate_categories), size=n_new)
    ]
    node_ids = np.array(sorted(instance.nodes))
    contributor_idx = rng.integers(0, len(node_ids), size=n_new)

    new_ids = []
    for i in range(n_new):
        doc = Document(
            doc_id=instance.fresh_doc_id(),
            popularity=float(new_popularity[i]),
            categories=(int(target_categories[i]),),
            size_bytes=instance.config.doc_size_bytes,
        )
        instance.add_document(doc, contributor_id=int(node_ids[contributor_idx[i]]))
        new_ids.append(doc.doc_id)

    return PerturbationResult(
        new_doc_ids=tuple(new_ids),
        added_mass=added_mass,
        affected_categories=tuple(sorted(set(int(c) for c in target_categories))),
    )


@dataclass(frozen=True, slots=True)
class ChurnEvent:
    """A scheduled node arrival or departure (Section 6.3 experiments)."""

    time: float
    node_id: int
    kind: str  # "join" or "leave"


def node_churn_events(
    instance: SystemInstance,
    duration: float,
    leave_rate: float,
    join_rate: float,
    seed: int = 2,
) -> list[ChurnEvent]:
    """Generate a Poisson join/leave schedule over ``duration`` time units.

    Leaves pick uniformly among the instance's current nodes (without
    repetition); joins allocate fresh node ids above the existing range.
    Rates are events per time unit.
    """
    if duration <= 0:
        raise ValueError(f"duration must be positive, got {duration}")
    if leave_rate < 0 or join_rate < 0:
        raise ValueError("rates must be non-negative")

    rng = np.random.default_rng(seed)
    events: list[ChurnEvent] = []

    def poisson_times(rate: float) -> list[float]:
        times, t = [], 0.0
        if rate <= 0:
            return times
        while True:
            t += float(rng.exponential(1.0 / rate))
            if t >= duration:
                return times
            times.append(t)

    leavers = list(instance.nodes)
    rng.shuffle(leavers)
    for t in poisson_times(leave_rate):
        if not leavers:
            break
        events.append(ChurnEvent(time=t, node_id=leavers.pop(), kind="leave"))

    next_id = max(instance.nodes, default=-1) + 1
    for t in poisson_times(join_rate):
        events.append(ChurnEvent(time=t, node_id=next_id, kind="join"))
        next_id += 1

    events.sort(key=lambda e: e.time)
    return events
