"""System instance construction.

Builds the full "world" the paper evaluates on: documents with Zipf
popularities, categories populated according to one of the paper's two
scenarios, and heterogeneous peer nodes contributing those documents.

The default :class:`SystemConfig` matches the configuration reported in
Section 4.4: ``|D| = 200,000`` documents, ``|N| = 20,000`` nodes,
``|C| = 100`` clusters, ``|S| = 500`` categories, document-popularity Zipf
theta = 0.8, node capacities uniform in [1..5], and nodes contributing
documents spanning between 1 and 20 categories.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.model.documents import Category, Document
from repro.model.nodes import Node
from repro.model.zipf import ZipfSampler, zipf_pmf

__all__ = ["SystemConfig", "SystemInstance", "build_system"]

#: Document-to-category assignment scenarios (Section 4.4).
SCENARIO_ZIPF = "zipf"  # Figure 2: Zipf-like category popularities with spikes
SCENARIO_UNIFORM = "uniform"  # Figure 3: near-uniform category popularities


@dataclass(frozen=True, slots=True)
class SystemConfig:
    """Parameters describing a system instance.

    The defaults reproduce the Section 4.4 configuration at full paper
    scale.  Use :meth:`scaled` for smaller, shape-preserving instances in
    tests and discrete-event experiments.
    """

    n_docs: int = 200_000
    n_nodes: int = 20_000
    n_categories: int = 500
    n_clusters: int = 100
    doc_theta: float = 0.8
    category_theta: float = 0.7
    scenario: str = SCENARIO_ZIPF
    capacity_range: tuple[int, int] = (1, 5)
    categories_per_node: tuple[int, int] = (1, 20)
    doc_size_bytes: int = 4 * 1024 * 1024
    multi_category_fraction: float = 0.0
    max_categories_per_doc: int = 3
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_docs <= 0 or self.n_nodes <= 0:
            raise ValueError("n_docs and n_nodes must be positive")
        if self.n_categories <= 0 or self.n_clusters <= 0:
            raise ValueError("n_categories and n_clusters must be positive")
        if self.scenario not in (SCENARIO_ZIPF, SCENARIO_UNIFORM):
            raise ValueError(f"unknown scenario: {self.scenario!r}")
        if self.capacity_range[0] < 1 or self.capacity_range[0] > self.capacity_range[1]:
            raise ValueError(f"bad capacity_range: {self.capacity_range}")
        low, high = self.categories_per_node
        if low < 1 or low > high:
            raise ValueError(f"bad categories_per_node: {self.categories_per_node}")
        if not 0.0 <= self.multi_category_fraction <= 1.0:
            raise ValueError(
                f"multi_category_fraction must be in [0, 1], "
                f"got {self.multi_category_fraction}"
            )
        if self.max_categories_per_doc < 1:
            raise ValueError("max_categories_per_doc must be >= 1")

    def scaled(self, factor: float) -> "SystemConfig":
        """Return a copy scaled down (or up) by ``factor`` on all populations.

        Keeps the docs/nodes/categories/clusters ratios of the paper's
        configuration so experiment shapes carry over.
        """
        if factor <= 0:
            raise ValueError(f"factor must be positive, got {factor}")
        return replace(
            self,
            n_docs=max(1, round(self.n_docs * factor)),
            n_nodes=max(1, round(self.n_nodes * factor)),
            n_categories=max(1, round(self.n_categories * factor)),
            n_clusters=max(1, round(self.n_clusters * factor)),
        )


@dataclass(slots=True)
class SystemInstance:
    """A fully-populated system: documents, categories, and nodes.

    Invariants maintained by :func:`build_system` and by the dynamic
    protocols that later mutate instances:

    * every document belongs to >= 1 category and is contributed by exactly
      one node;
    * ``categories[s].popularity`` equals the summed popularity shares of
      the documents mapped to ``s``;
    * every category with documents has >= 1 contributing node.
    """

    config: SystemConfig
    documents: dict[int, Document]
    categories: list[Category]
    nodes: dict[int, Node]
    #: node_id -> sorted list of category ids the node contributes to
    node_categories: dict[int, list[int]] = field(default_factory=dict)
    _next_doc_id: int = 0

    @property
    def n_clusters(self) -> int:
        return self.config.n_clusters

    @property
    def category_popularity(self) -> np.ndarray:
        """Vector ``p(s)`` indexed by category id."""
        return np.array([c.popularity for c in self.categories])

    @property
    def total_popularity(self) -> float:
        return float(sum(d.popularity for d in self.documents.values()))

    @property
    def doc_sizes(self) -> dict[int, int]:
        return {d.doc_id: d.size_bytes for d in self.documents.values()}

    def contributors_of_category(self, category_id: int) -> list[int]:
        """Node ids contributing at least one document of ``category_id``."""
        return [
            node_id
            for node_id, cats in self.node_categories.items()
            if category_id in cats
        ]

    def node_popularity(self, node_id: int) -> float:
        """``p(n)`` — summed popularity of the node's contributed documents."""
        node = self.nodes[node_id]
        return sum(
            self.documents[doc_id].popularity for doc_id in node.contributed_doc_ids
        )

    def fresh_doc_id(self) -> int:
        """Allocate a new unique document id (for dynamic publishes)."""
        doc_id = self._next_doc_id
        self._next_doc_id += 1
        return doc_id

    def add_document(self, doc: Document, contributor_id: int) -> None:
        """Insert a new document contributed by ``contributor_id``.

        Updates category popularities and the contributor's records; used
        by the publish protocol and the perturbation generators.
        """
        if doc.doc_id in self.documents:
            raise ValueError(f"document {doc.doc_id} already exists")
        if contributor_id not in self.nodes:
            raise KeyError(f"unknown node {contributor_id}")
        self.documents[doc.doc_id] = doc
        for category_id in doc.categories:
            self.categories[category_id].add_document(doc)
            cats = self.node_categories.setdefault(contributor_id, [])
            if category_id not in cats:
                cats.append(category_id)
                cats.sort()
        self.nodes[contributor_id].contribute(doc.doc_id)
        self._next_doc_id = max(self._next_doc_id, doc.doc_id + 1)

    def remove_document(self, doc_id: int) -> Document:
        """Delete a document (content-population variation, Section 6.2)."""
        doc = self.documents.pop(doc_id)
        for category_id in doc.categories:
            self.categories[category_id].remove_document(doc)
        for node in self.nodes.values():
            if doc_id in node.contributed_doc_ids:
                node.contributed_doc_ids.remove(doc_id)
            node.stored_doc_ids.discard(doc_id)
        return doc

    def validate(self) -> None:
        """Check the structural invariants; raise ``AssertionError`` on breach."""
        recomputed = [0.0] * len(self.categories)
        for doc in self.documents.values():
            for category_id in doc.categories:
                recomputed[category_id] += doc.popularity_per_category
        for category, expected in zip(self.categories, recomputed):
            assert abs(category.popularity - expected) < 1e-6, (
                f"category {category.category_id} popularity drifted: "
                f"{category.popularity} vs {expected}"
            )
        contributed: set[int] = set()
        for node in self.nodes.values():
            for doc_id in node.contributed_doc_ids:
                assert doc_id not in contributed, f"doc {doc_id} contributed twice"
                contributed.add(doc_id)
        assert contributed == set(self.documents), (
            "contribution mapping out of sync with document set"
        )


def _assign_doc_categories(
    rng: np.random.Generator, config: SystemConfig
) -> list[tuple[int, ...]]:
    """Choose the category tuple for every document, per the scenario.

    ``zipf`` scenario (Figure 2): each document's primary category is drawn
    from a Zipf(theta = ``category_theta``) law over categories, so popular
    categories accumulate more documents — but because *which* documents
    land where is random, the resulting category-popularity distribution is
    "Zipf-like with spikes", exactly as Section 4.4 describes.

    ``uniform`` scenario (Figure 3): the primary category is uniform,
    giving a near-uniform distribution of documents into categories.
    """
    n_docs, n_cats = config.n_docs, config.n_categories
    if config.scenario == SCENARIO_ZIPF:
        sampler = ZipfSampler(n_cats, config.category_theta)
        primary = sampler.sample(rng, n_docs)
    else:
        primary = rng.integers(0, n_cats, size=n_docs)

    # Documents are single-category unless multi_category_fraction opts in;
    # the all-single case is fully vectorized (no per-document rng calls,
    # matching the historical draw-for-draw behaviour exactly).
    assignments: list[tuple[int, ...]] = [(c,) for c in primary.tolist()]
    if config.multi_category_fraction <= 0:
        return assignments
    multi = rng.random(n_docs) < config.multi_category_fraction
    for i in np.flatnonzero(multi).tolist():
        extra_count = int(rng.integers(1, config.max_categories_per_doc))
        cats = {assignments[i][0]}
        while len(cats) < extra_count + 1 and len(cats) < n_cats:
            cats.add(int(rng.integers(0, n_cats)))
        assignments[i] = tuple(sorted(cats))
    return assignments


def _assign_contributors(
    rng: np.random.Generator,
    config: SystemConfig,
    doc_categories: list[tuple[int, ...]],
) -> list[int]:
    """Pick a contributing node for each document.

    Models Section 4.4: each node is interested in between 1 and 20
    categories, and contributes documents spanning those categories.  Every
    category that has documents is guaranteed at least one interested node
    (categories are dealt round-robin first), after which nodes draw their
    remaining interests uniformly.
    """
    n_nodes, n_cats = config.n_nodes, config.n_categories
    low, high = config.categories_per_node
    interests: list[set[int]] = [set() for _ in range(n_nodes)]

    # Round-robin one category per node first so that every category has a
    # potential contributor whenever n_nodes >= n_categories.
    order = rng.permutation(n_cats)
    for i, category_id in enumerate(order.tolist()):
        interests[i % n_nodes].add(category_id)

    # Rejection-sample the remaining interests from a pre-drawn buffer.
    # Batched ``rng.integers`` draws are value- and state-identical to the
    # historical one-at-a-time draws; if the buffer over-draws, the saved
    # state is restored and exactly the consumed count is re-drawn so the
    # stream stays aligned draw-for-draw.
    target_counts = rng.integers(low, high + 1, size=n_nodes)
    wants_list = np.minimum(target_counts, n_cats).tolist()
    deficit = sum(
        max(want - len(interests[i]), 0) for i, want in enumerate(wants_list)
    )
    state = rng.bit_generator.state
    drawn = 0
    buf: list[int] = []
    pos = 0
    for node_id in range(n_nodes):
        node_interests = interests[node_id]
        want = wants_list[node_id]
        while len(node_interests) < want:
            if pos == len(buf):
                batch = max(deficit + (deficit >> 3) + 64, 256)
                buf = rng.integers(0, n_cats, size=batch).tolist()
                drawn += batch
                pos = 0
            node_interests.add(buf[pos])
            pos += 1
    consumed = drawn - (len(buf) - pos)
    if consumed != drawn:
        rng.bit_generator.state = state
        if consumed:
            rng.integers(0, n_cats, size=consumed)

    by_category: list[list[int]] = [[] for _ in range(n_cats)]
    for node_id, cats in enumerate(interests):
        for category_id in cats:
            by_category[category_id].append(node_id)

    if doc_categories:
        primary = np.fromiter(
            (cats[0] for cats in doc_categories),
            dtype=np.int64,
            count=len(doc_categories),
        )
        counts = np.array([len(b) for b in by_category], dtype=np.int64)
        bounds = counts[primary]
        if bounds.min() > 0:
            # One vectorized bounded draw per document is value- and
            # state-identical to the historical per-document scalar draws.
            draws = rng.integers(0, bounds)
            flat = np.array(
                [node_id for b in by_category for node_id in b], dtype=np.int64
            )
            offsets = np.zeros(n_cats, dtype=np.int64)
            np.cumsum(counts[:-1], out=offsets[1:])
            return flat[offsets[primary] + draws].tolist()

    contributors: list[int] = []
    for categories in doc_categories:
        candidates = by_category[categories[0]]
        if candidates:
            contributors.append(int(candidates[rng.integers(0, len(candidates))]))
        else:
            # Degenerate tiny configurations: fall back to any node.
            contributors.append(int(rng.integers(0, n_nodes)))
    return contributors


def build_system(config: SystemConfig) -> SystemInstance:
    """Construct a :class:`SystemInstance` from ``config``.

    Deterministic for a given ``config.seed``.
    """
    rng = np.random.default_rng(config.seed)

    doc_popularity = zipf_pmf(config.n_docs, config.doc_theta)
    # Shuffle ranks so document ids carry no popularity information; the
    # paper's algorithms must not depend on id ordering.
    rng.shuffle(doc_popularity)

    doc_categories = _assign_doc_categories(rng, config)
    contributors = _assign_contributors(rng, config, doc_categories)

    categories = [
        Category(category_id=i, name=f"category-{i}")
        for i in range(config.n_categories)
    ]
    capacities = rng.integers(
        config.capacity_range[0], config.capacity_range[1] + 1, size=config.n_nodes
    ).tolist()
    nodes = {
        node_id: Node(node_id=node_id, capacity_units=float(capacities[node_id]))
        for node_id in range(config.n_nodes)
    }

    pop_list = doc_popularity.tolist()
    doc_size = config.doc_size_bytes
    documents: dict[int, Document] = {
        doc_id: Document(
            doc_id=doc_id,
            popularity=pop_list[doc_id],
            categories=doc_categories[doc_id],
            size_bytes=doc_size,
        )
        for doc_id in range(config.n_docs)
    }

    # Group contributions per node in one pass (stable sort keeps each
    # node's documents in publication = doc-id order, exactly as repeated
    # Node.contribute calls would).
    contrib_arr = np.asarray(contributors, dtype=np.int64)
    by_node_order = np.argsort(contrib_arr, kind="stable")
    contributing_nodes, node_starts = np.unique(
        contrib_arr[by_node_order], return_index=True
    )
    node_ends = np.append(node_starts[1:], len(contrib_arr))
    for k, node_id in enumerate(contributing_nodes.tolist()):
        doc_ids = by_node_order[node_starts[k] : node_ends[k]].tolist()
        node = nodes[node_id]
        node.contributed_doc_ids = doc_ids
        node.stored_doc_ids = set(doc_ids)

    node_categories: dict[int, list[int]] = {}
    if config.multi_category_fraction <= 0:
        # Single-category fast path: per-category membership and popularity
        # via grouped array ops.  np.bincount accumulates weights in scan
        # (= doc-id) order, bitwise-identical to the incremental
        # Category.add_document sums it replaces.
        cats_arr = np.fromiter(
            (cats[0] for cats in doc_categories),
            dtype=np.int64,
            count=config.n_docs,
        )
        by_cat_order = np.argsort(cats_arr, kind="stable")
        populated_cats, cat_starts = np.unique(
            cats_arr[by_cat_order], return_index=True
        )
        cat_ends = np.append(cat_starts[1:], len(cats_arr))
        cat_pop = np.bincount(
            cats_arr, weights=doc_popularity, minlength=config.n_categories
        )
        for k, category_id in enumerate(populated_cats.tolist()):
            category = categories[category_id]
            category.doc_ids = by_cat_order[cat_starts[k] : cat_ends[k]].tolist()
            category.popularity = float(cat_pop[category_id])

        # node_categories keys follow each contributor's first appearance in
        # doc-id order (dict insertion order of the historical per-doc loop);
        # values are the node's distinct categories, ascending.
        _, first_doc = np.unique(contrib_arr, return_index=True)
        key_order = contributing_nodes[np.argsort(first_doc, kind="stable")]
        pair_keys = np.unique(contrib_arr * config.n_categories + cats_arr)
        pair_nodes = pair_keys // config.n_categories
        pair_cats = pair_keys % config.n_categories
        pair_starts = np.searchsorted(pair_nodes, contributing_nodes, side="left")
        pair_ends = np.searchsorted(pair_nodes, contributing_nodes, side="right")
        cats_of = {
            int(node_id): pair_cats[pair_starts[k] : pair_ends[k]].tolist()
            for k, node_id in enumerate(contributing_nodes.tolist())
        }
        for node_id in key_order.tolist():
            node_categories[node_id] = cats_of[node_id]
    else:
        for doc_id in range(config.n_docs):
            doc = documents[doc_id]
            contributor = contributors[doc_id]
            for category_id in doc.categories:
                categories[category_id].add_document(doc)
                cats = node_categories.setdefault(contributor, [])
                if category_id not in cats:
                    cats.append(category_id)
        for cats in node_categories.values():
            cats.sort()

    return SystemInstance(
        config=config,
        documents=documents,
        categories=categories,
        nodes=nodes,
        node_categories=node_categories,
        _next_doc_id=config.n_docs,
    )
