"""Durable crash recovery: per-peer WAL + snapshot persistence.

Off by default.  When armed (``DurabilityConfig(enabled=True)``) every
peer carries a :class:`PeerJournal` that appends one checksummed record
per acknowledged state change and periodically compacts the log into a
canonical snapshot.  Recovery replays snapshot + longest-valid-WAL-
prefix; the overlay layers epoch-fenced category ownership and a
partition-heal reconciliation round on top (see
``docs/architecture.md`` §"Durability & recovery").
"""

from repro.durability.journal import (
    DurabilityConfig,
    PeerJournal,
    durable_state,
    empty_state,
    materialize,
)
from repro.durability.store import FileStore, MemoryStore
from repro.durability.wal import (
    decode_frame,
    decode_snapshot,
    encode_record,
    encode_snapshot,
    replay_wal,
)

__all__ = [
    "DurabilityConfig",
    "PeerJournal",
    "durable_state",
    "empty_state",
    "materialize",
    "MemoryStore",
    "FileStore",
    "encode_record",
    "decode_frame",
    "replay_wal",
    "encode_snapshot",
    "decode_snapshot",
]
