"""Per-peer durability journal: WAL records + compacting snapshots.

A :class:`PeerJournal` owns one peer's durable state stream.  The peer
(and the deployment around it) appends one record per acknowledged
state change — document stored or dropped, DCRT entry installed,
ownership epoch adopted, cluster joined, manifest version learned —
and the journal periodically compacts the log into a snapshot of the
full durable state (provided by the owner through ``snapshot_fn``).

Recovery is ``materialize(snapshot, records)``: the snapshot seeds the
state and the WAL's longest valid prefix replays over it.  The result
is a *canonical* dict (sorted lists, fixed keys) so that
``encode_snapshot(materialize(...))`` is byte-comparable against
``encode_snapshot(durable_state(peer))`` — the property the
byte-identical-replay tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.durability.wal import (
    decode_snapshot,
    encode_record,
    encode_snapshot,
    replay_wal,
)

__all__ = [
    "DurabilityConfig",
    "PeerJournal",
    "durable_state",
    "materialize",
    "empty_state",
]


@dataclass(frozen=True, slots=True)
class DurabilityConfig:
    """Knobs for the durability layer (off by default).

    Disabled means *nothing* is constructed: no journals, no WAL
    appends, no extra invariant checks, and no RNG draws — default
    runs, goldens, chaos reproducers, and BENCH comparisons stay
    byte-identical.
    """

    #: master switch for the whole subsystem.
    enabled: bool = False
    #: WAL records between compacting snapshots.
    snapshot_every: int = 256

    def __post_init__(self) -> None:
        if self.snapshot_every < 1:
            raise ValueError(
                f"snapshot_every must be >= 1, got {self.snapshot_every}"
            )


def empty_state() -> dict:
    """The canonical durable state of a peer that never recorded anything."""
    return {
        "dcrt": [],
        "docs": [],
        "epochs": [],
        "flags": {"capacity": 0.0, "free_rider": False},
        "manifests": [],
        "memberships": [],
    }


def durable_state(peer, flags: dict | None = None) -> dict:
    """Snapshot a peer's durable state as the canonical dict.

    ``peer`` is duck-typed (the overlay's :class:`Peer`): this module
    must not import the overlay, which imports it.
    """
    state = empty_state()
    state["docs"] = [
        [doc_id, info.size_bytes, list(info.categories)]
        for doc_id, info in sorted(peer.docs.items())
    ]
    state["dcrt"] = [
        [category_id, entry.cluster_id, entry.move_counter]
        for category_id, entry in peer.dcrt.items()
    ]
    state["epochs"] = [
        [category_id, epoch]
        for category_id, epoch in sorted(peer.ownership_epochs.items())
        if epoch > 0
    ]
    state["memberships"] = sorted(peer.memberships)
    content = peer.content_state
    if content is not None:
        state["manifests"] = [
            [doc_id, manifest.size_bytes, manifest.chunk_size, manifest.version]
            for doc_id, manifest in sorted(content.manifests.items())
        ]
    state["flags"] = {
        "capacity": float(peer.capacity_units),
        "free_rider": bool((flags or {}).get("free_rider", False)),
    }
    return state


def materialize(snapshot: dict | None, records) -> dict:
    """Snapshot + replayed WAL records -> the canonical durable state."""
    docs: dict[int, tuple[int, list[int]]] = {}
    dcrt: dict[int, tuple[int, int]] = {}
    epochs: dict[int, int] = {}
    memberships: set[int] = set()
    manifests: dict[int, tuple[int, int, int]] = {}
    flags = {"capacity": 0.0, "free_rider": False}
    if snapshot is not None:
        for doc_id, size_bytes, categories in snapshot.get("docs", ()):
            docs[doc_id] = (size_bytes, list(categories))
        for category_id, cluster_id, counter in snapshot.get("dcrt", ()):
            dcrt[category_id] = (cluster_id, counter)
        for category_id, epoch in snapshot.get("epochs", ()):
            epochs[category_id] = epoch
        memberships.update(snapshot.get("memberships", ()))
        for doc_id, size_bytes, chunk_size, version in snapshot.get(
            "manifests", ()
        ):
            manifests[doc_id] = (size_bytes, chunk_size, version)
        flags.update(snapshot.get("flags", {}))
    for record in records:
        kind = record[0]
        if kind == "store":
            docs[record[1]] = (record[2], list(record[3]))
        elif kind == "drop":
            docs.pop(record[1], None)
        elif kind == "dcrt":
            dcrt[record[1]] = (record[2], record[3])
        elif kind == "epoch":
            epochs[record[1]] = max(epochs.get(record[1], 0), record[2])
        elif kind == "join":
            memberships.add(record[1])
        elif kind == "manifest":
            _doc, size_bytes, chunk_size, version = record[1:5]
            current = manifests.get(record[1])
            if current is None or version >= current[2]:
                manifests[record[1]] = (size_bytes, chunk_size, version)
        elif kind == "flags":
            flags["capacity"] = float(record[1])
            flags["free_rider"] = bool(record[2])
        # Unknown kinds are skipped: older replayers tolerate newer logs.
    return {
        "dcrt": [
            [category_id, cluster_id, counter]
            for category_id, (cluster_id, counter) in sorted(dcrt.items())
        ],
        "docs": [
            [doc_id, size_bytes, categories]
            for doc_id, (size_bytes, categories) in sorted(docs.items())
        ],
        "epochs": [
            [category_id, epoch]
            for category_id, epoch in sorted(epochs.items())
            if epoch > 0
        ],
        "flags": flags,
        "manifests": [
            [doc_id, size_bytes, chunk_size, version]
            for doc_id, (size_bytes, chunk_size, version) in sorted(
                manifests.items()
            )
        ],
        "memberships": sorted(memberships),
    }


class PeerJournal:
    """One peer's append-only WAL with periodic compacting snapshots."""

    def __init__(
        self, store, config: DurabilityConfig | None = None
    ) -> None:
        self.store = store
        self.config = (
            config if config is not None else DurabilityConfig(enabled=True)
        )
        #: () -> canonical durable state; set by the owning peer/system
        #: at attach time.  Compaction is a no-op until it is set.
        self.snapshot_fn = None
        #: owner-level flags folded into snapshots (free-rider status).
        self.flags: dict = {}
        self.records_written = 0
        self.snapshots_written = 0
        self._records_since_snapshot = 0
        #: doc ids the log currently acknowledges as held — maintained
        #: incrementally so invariant checks do not replay the WAL.
        self._durable_docs: set[int] = {
            entry[0] for entry in self.load().get("docs", ())
        }

    # ------------------------------------------------------------------
    def record(self, *record) -> None:
        """Append one durable record (synchronous: the write IS the ack)."""
        self.store.append(encode_record(record))
        if record[0] == "store":
            self._durable_docs.add(record[1])
        elif record[0] == "drop":
            self._durable_docs.discard(record[1])
        self.records_written += 1
        self._records_since_snapshot += 1
        if (
            self.snapshot_fn is not None
            and self._records_since_snapshot >= self.config.snapshot_every
        ):
            self.compact()

    def compact(self) -> None:
        """Write a snapshot of the owner's full state; truncate the WAL."""
        if self.snapshot_fn is None:
            return
        state = self.snapshot_fn()
        self.store.write_snapshot(encode_snapshot(state))
        self._durable_docs = {entry[0] for entry in state["docs"]}
        self.snapshots_written += 1
        self._records_since_snapshot = 0

    def load(self) -> dict:
        """Materialize snapshot + longest-valid-WAL-prefix into one state."""
        snapshot_bytes, wal_bytes = self.store.load()
        snapshot = (
            decode_snapshot(snapshot_bytes)
            if snapshot_bytes is not None
            else None
        )
        return materialize(snapshot, replay_wal(wal_bytes))

    def durable_doc_ids(self) -> frozenset[int]:
        """Doc ids the journal currently acknowledges as held."""
        return frozenset(self._durable_docs)
