"""Write-ahead-log and snapshot codec for per-peer durable state.

The durable unit is a *record*: a small JSON-safe tuple whose first
element names the change (``store``, ``drop``, ``dcrt``, ``epoch``,
``join``, ``manifest``, ``flags``).  Records are framed one per line as
``<crc32-hex> <json-body>\\n`` so that a torn tail — a write cut mid
record by power loss — is detectable: replay applies the longest prefix
of intact lines and stops at the first frame whose checksum or framing
fails.  Everything after a torn record is unrecoverable by definition
(the log is causally ordered), so stopping is the correct semantics,
not a best-effort skip.

Snapshots use the same one-frame encoding over a single canonical JSON
object (sorted keys, no whitespace), which makes "byte-identical
state" a checkable property: two peers with equal durable state encode
to equal bytes.
"""

from __future__ import annotations

import json
import zlib

__all__ = [
    "encode_record",
    "decode_frame",
    "replay_wal",
    "encode_snapshot",
    "decode_snapshot",
]


def _frame(body: bytes) -> bytes:
    return f"{zlib.crc32(body):08x} ".encode("ascii") + body + b"\n"


def encode_record(record) -> bytes:
    """One WAL record -> one checksummed, newline-terminated frame."""
    body = json.dumps(list(record), separators=(",", ":")).encode("utf-8")
    return _frame(body)


def decode_frame(line: bytes):
    """One frame (without the newline) -> the decoded value, or None.

    None means the frame is torn or corrupt: missing checksum field,
    checksum mismatch, or unparsable body.
    """
    prefix, _, body = line.partition(b" ")
    if len(prefix) != 8 or not body:
        return None
    try:
        expected = int(prefix, 16)
    except ValueError:
        return None
    if zlib.crc32(body) != expected:
        return None
    try:
        return json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        return None


def replay_wal(data: bytes) -> list[tuple]:
    """Decode the longest valid prefix of a WAL byte string.

    A record whose frame fails to decode — including the common torn
    write: a final line with no terminating newline — ends the replay;
    everything before it is returned as tuples.
    """
    records: list[tuple] = []
    offset = 0
    while offset < len(data):
        newline = data.find(b"\n", offset)
        if newline < 0:
            break  # torn tail: the record was cut before its newline
        decoded = decode_frame(data[offset:newline])
        if decoded is None or not isinstance(decoded, list) or not decoded:
            break  # corrupt frame: nothing after it is trustworthy
        records.append(tuple(decoded))
        offset = newline + 1
    return records


def encode_snapshot(state: dict) -> bytes:
    """Canonical (sorted-keys) checksummed encoding of one state dict."""
    body = json.dumps(state, separators=(",", ":"), sort_keys=True).encode(
        "utf-8"
    )
    return _frame(body)


def decode_snapshot(data: bytes) -> dict | None:
    """Inverse of :func:`encode_snapshot`; None when torn or corrupt."""
    decoded = decode_frame(data.rstrip(b"\n"))
    if not isinstance(decoded, dict):
        return None
    return decoded
