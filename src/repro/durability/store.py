"""Pluggable backing stores for a peer's WAL + snapshot.

Two implementations of the same three-method contract
(``append`` / ``write_snapshot`` / ``load``):

* :class:`MemoryStore` — the simulator's store.  Deterministic and
  byte-replayable: it holds exactly the bytes a file store would hold,
  so torn-write and replay semantics are testable without touching a
  filesystem, and a "power loss" in the sim simply re-reads the bytes.
* :class:`FileStore` — the live runtime's store, rooted at a
  ``--state-dir``.  The WAL is appended with flush+fsync per record
  (records are rare control-plane events, not data-path traffic);
  snapshots are written to a temp file and atomically renamed before
  the WAL is truncated, so a crash between the two leaves either the
  old snapshot + full WAL or the new snapshot + empty WAL — both
  replayable.
"""

from __future__ import annotations

import os
from pathlib import Path

__all__ = ["MemoryStore", "FileStore"]

SNAPSHOT_NAME = "snapshot.bin"
WAL_NAME = "wal.log"


class MemoryStore:
    """In-memory WAL + snapshot bytes (the simulator's 'disk')."""

    def __init__(self) -> None:
        self._snapshot: bytes | None = None
        self._wal = bytearray()

    def append(self, data: bytes) -> None:
        self._wal += data

    def write_snapshot(self, data: bytes) -> None:
        self._snapshot = bytes(data)
        self._wal.clear()

    def load(self) -> tuple[bytes | None, bytes]:
        return self._snapshot, bytes(self._wal)

    def tear_wal(self, keep_bytes: int) -> None:
        """Cut the WAL mid-record (test hook simulating a torn write)."""
        del self._wal[keep_bytes:]

    def close(self) -> None:  # same contract as FileStore; nothing held
        pass


class FileStore:
    """File-backed WAL + snapshot under one state directory."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.snapshot_path = self.root / SNAPSHOT_NAME
        self.wal_path = self.root / WAL_NAME
        self._wal_file = None

    def _wal_handle(self):
        if self._wal_file is None or self._wal_file.closed:
            self._wal_file = open(self.wal_path, "ab")
        return self._wal_file

    def append(self, data: bytes) -> None:
        handle = self._wal_handle()
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())

    def write_snapshot(self, data: bytes) -> None:
        tmp = self.snapshot_path.with_suffix(".tmp")
        with open(tmp, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.snapshot_path)
        # Truncate the WAL only after the snapshot is durably in place.
        if self._wal_file is not None and not self._wal_file.closed:
            self._wal_file.close()
        with open(self.wal_path, "wb") as handle:
            handle.flush()
            os.fsync(handle.fileno())
        self._wal_file = None

    def load(self) -> tuple[bytes | None, bytes]:
        snapshot = (
            self.snapshot_path.read_bytes()
            if self.snapshot_path.exists()
            else None
        )
        wal = self.wal_path.read_bytes() if self.wal_path.exists() else b""
        return snapshot, wal

    def close(self) -> None:
        if self._wal_file is not None and not self._wal_file.closed:
            self._wal_file.close()
        self._wal_file = None
