"""One overlay node as a live OS process, plus the soak client peer.

The live deployment convention is deliberately small — the point of
:mod:`repro.live` is to prove the *protocol code* runs unchanged over
real sockets, not to reinvent deployment tooling:

* node ids below :data:`CLIENT_ID_BASE` are **servers**: cluster-0
  members that store every document of the world and answer queries
  and chunk requests.  Node 0 doubles as the **seed** every client
  bootstraps from (``start_join``).
* ids at or above :data:`CLIENT_ID_BASE` are **clients**: they join
  nothing and publish nothing — :class:`LiveClientPeer` merges the
  seed's DCRT/NRT snapshots and stops, so clients never appear in any
  server's NRT and never get routed queries.

The world itself (documents, categories, sizes) is derived from three
integers shared by every process via CLI flags, so no process ships
state to another out of band: document ``d`` belongs to category
``d % n_categories`` and its manifest is :func:`~repro.content.
manifest.build_manifest` of its id and size.
"""

from __future__ import annotations

import asyncio
import contextlib
import logging
import signal
import sys
from dataclasses import dataclass

import numpy as np

from repro.content.chunks import ContentConfig
from repro.content.manifest import Manifest, build_manifest
from repro.durability import DurabilityConfig, FileStore, PeerJournal
from repro.live.transport import AsyncioTransport
from repro.overlay.messages import DocInfo
from repro.overlay.peer import Peer, PeerConfig
from repro.reliability.channel import ReliabilityConfig

__all__ = [
    "CLIENT_ID_BASE",
    "LiveClientPeer",
    "LiveWorld",
    "format_routes",
    "live_peer_config",
    "open_journal",
    "parse_routes",
    "run_node",
]

log = logging.getLogger("repro.live")

#: node ids at or above this are clients (bootstrap-only, never served).
CLIENT_ID_BASE = 1000


@dataclass(frozen=True, slots=True)
class LiveWorld:
    """The shared corpus every live process derives locally from flags."""

    n_docs: int = 24
    n_categories: int = 8
    doc_size_bytes: int = 16_384
    chunk_size: int = 4_096

    def category_of(self, doc_id: int) -> int:
        return doc_id % self.n_categories

    def doc_info(self, doc_id: int) -> DocInfo:
        return DocInfo(
            doc_id=doc_id,
            categories=(self.category_of(doc_id),),
            size_bytes=self.doc_size_bytes,
        )

    def manifest(self, doc_id: int) -> Manifest:
        return build_manifest(doc_id, self.doc_size_bytes, self.chunk_size)

    def docs_in_category(self, category_id: int) -> tuple[int, ...]:
        return tuple(
            d for d in range(self.n_docs) if self.category_of(d) == category_id
        )


def live_peer_config(world: LiveWorld) -> PeerConfig:
    """Peer tunables for wall-clock loopback time.

    The simulator's defaults assume abstract time units; over loopback
    UDP a round trip is sub-millisecond, so deadlines shrink to keep
    failover (the soak kills a peer mid-run) inside human patience:
    a query exhausts its six 0.4 s attempts in ~2.4 s worst case.
    """
    return PeerConfig(
        reliability=ReliabilityConfig(
            enabled=True,
            ack_timeout=0.25,
            max_backoff=1.0,
            max_attempts=4,
            query_deadline=0.4,
            query_attempts=6,
            probe_timeout=0.3,
            suspicion_threshold=2,
        ),
        content=ContentConfig(
            enabled=True,
            chunk_size=world.chunk_size,
            chunk_timeout=0.4,
            max_chunk_attempts=5,
        ),
    )


class LiveClientPeer(Peer):
    """A bootstrap-only peer: consumes metadata, contributes nothing.

    Overrides the join-reply step to *stop after merging* the seed's
    DCRT/NRT snapshots — the base class would announce contributions or
    dummy-publish, which would insert the client into server NRTs and
    make it a routing target.  ``on_bootstrap`` fires once the merge
    lands, so a supervisor can await readiness.
    """

    def __init__(self, *args, on_bootstrap=None, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._on_bootstrap = on_bootstrap
        self.bootstrapped = False

    def _handle_join_reply(self, message) -> None:
        reply = message.payload
        self.dcrt.merge_snapshot(dict(reply.dcrt_snapshot))
        for cluster_id, members in reply.nrt_snapshot:
            self.nrt.add_many(cluster_id, members)
        first = not self.bootstrapped
        self.bootstrapped = True
        if first and self._on_bootstrap is not None:
            self._on_bootstrap()


def parse_routes(spec: str) -> dict[int, tuple[str, int]]:
    """Parse ``"0:7000,1:7001"`` (or ``"0:host:7000"``) into a route map."""
    routes: dict[int, tuple[str, int]] = {}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        pieces = part.split(":")
        if len(pieces) == 2:
            node_id, host, port = pieces[0], "127.0.0.1", pieces[1]
        elif len(pieces) == 3:
            node_id, host, port = pieces
        else:
            raise ValueError(f"bad route {part!r} (want id:port or id:host:port)")
        routes[int(node_id)] = (host, int(port))
    return routes


def format_routes(routes: dict[int, tuple[str, int]]) -> str:
    return ",".join(
        f"{node_id}:{host}:{port}"
        for node_id, (host, port) in sorted(routes.items())
    )


def open_journal(state_dir: str) -> PeerJournal:
    """A file-backed durability journal rooted at ``state_dir``."""
    return PeerJournal(FileStore(state_dir), DurabilityConfig(enabled=True))


def build_server_peer(
    node_id: int,
    transport: AsyncioTransport,
    world: LiveWorld,
    server_ids: list[int],
    *,
    seed: int = 0,
    journal: PeerJournal | None = None,
) -> Peer:
    """Construct one fully-stocked cluster-0 server over ``transport``.

    Exposed separately from :func:`run_node` so in-process tests can
    stand up a server without subprocess machinery.

    With a ``journal`` whose store already acknowledges documents, the
    peer *recovers* instead of re-stocking: snapshot + WAL replay
    restores its holdings, DCRT, and memberships, and only the live
    topology (NRT fellows, gossip neighbors) is re-pinned from flags.
    A fresh journal is attached first, so the initial stocking itself
    is the first thing it acknowledges.
    """
    peer = Peer(
        node_id,
        capacity_units=1.0,
        rng=np.random.default_rng(seed * 7919 + node_id),
        config=live_peer_config(world),
        jitter_rng=np.random.default_rng(seed * 104_729 + node_id),
        transport=transport,
    )
    state = journal.load() if journal is not None else None
    if state is not None and state["docs"]:
        peer.restore_durable_state(state)
        peer.attach_journal(journal)
    else:
        if journal is not None:
            peer.attach_journal(journal)
        for doc_id in range(world.n_docs):
            peer.store_document(world.doc_info(doc_id))
        for category_id in range(world.n_categories):
            peer.dcrt.set(category_id, 0)
    peer.join_cluster(0, known_members=server_ids)
    peer.set_cluster_neighbors(0, server_ids)
    return peer


async def run_node(
    node_id: int,
    routes: dict[int, tuple[str, int]],
    world: LiveWorld,
    *,
    loss: float = 0.0,
    codec: str = "json",
    heartbeat_interval: float = 0.5,
    seed: int = 0,
    state_dir: str | None = None,
    ready_stream=None,
) -> None:
    """Run one server node until SIGTERM/SIGINT.

    Prints ``READY <node_id> <port> recovered=<n>`` once the socket is
    bound and the peer is serving — the soak supervisor synchronizes on
    that line.  ``recovered`` counts the documents replayed from the
    ``state_dir`` journal (0 on a fresh start or without persistence);
    a restart that reuses a killed node's state dir recovers its
    acknowledged holdings instead of rejoining empty.
    """
    if node_id not in routes:
        raise ValueError(f"node {node_id} missing from its own route map")
    if node_id >= CLIENT_ID_BASE:
        raise ValueError(
            f"node {node_id} is in the client id range; run a client "
            "in-process via LiveClientPeer instead"
        )
    host, port = routes[node_id]
    transport = AsyncioTransport(
        codec=codec, loss_probability=loss, loss_seed=seed * 31 + node_id
    )
    await transport.start(host, port)
    transport.set_routes(routes)
    server_ids = sorted(i for i in routes if i < CLIENT_ID_BASE)
    journal = open_journal(state_dir) if state_dir is not None else None
    recovered = len(journal.durable_doc_ids()) if journal is not None else 0
    peer = build_server_peer(
        node_id, transport, world, server_ids, seed=seed, journal=journal
    )

    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        with contextlib.suppress(NotImplementedError):
            loop.add_signal_handler(signum, stop.set)

    stream = ready_stream if ready_stream is not None else sys.stdout
    print(
        f"READY {node_id} {transport.local_address[1]} recovered={recovered}",
        file=stream,
        flush=True,
    )

    async def heartbeats() -> None:
        while not stop.is_set():
            peer.heartbeat_once()
            await asyncio.sleep(heartbeat_interval)

    beat = asyncio.create_task(heartbeats())
    try:
        await stop.wait()
    finally:
        beat.cancel()
        with contextlib.suppress(asyncio.CancelledError):
            await beat
        await transport.stop()
        if journal is not None:
            journal.store.close()
