"""Live runtime: the overlay over real sockets.

The protocol code in :mod:`repro.overlay` talks to the world only
through :class:`repro.transport.Transport`; this package provides the
socket-backed implementation (:class:`AsyncioTransport`, UDP datagrams
carrying the versioned ``repro.wire/v1`` codec) plus the process
harness around it: per-node entrypoints, a bootstrap-only client peer,
and the kill/restart soak supervisor behind ``python -m repro.live``.
"""

from repro.live.node import (
    CLIENT_ID_BASE,
    LiveClientPeer,
    LiveWorld,
    build_server_peer,
    format_routes,
    live_peer_config,
    open_journal,
    parse_routes,
    run_node,
)
from repro.live.soak import SoakConfig, run_soak, run_soak_sync
from repro.live.transport import AsyncioTransport

__all__ = [
    "AsyncioTransport",
    "CLIENT_ID_BASE",
    "LiveClientPeer",
    "LiveWorld",
    "SoakConfig",
    "build_server_peer",
    "format_routes",
    "live_peer_config",
    "open_journal",
    "parse_routes",
    "run_node",
    "run_soak",
    "run_soak_sync",
]
