"""The :class:`Transport` over real UDP sockets (asyncio).

One :class:`AsyncioTransport` is one process's endpoint: it binds a UDP
socket, carries every outbound message through the versioned wire codec
(:mod:`repro.transport.wire`), and dispatches inbound datagrams to the
handlers registered locally.  The same :class:`repro.overlay.peer.Peer`
that runs over :class:`repro.transport.sim.SimTransport` runs over this
class unchanged — ``now`` is the event loop's clock, ``schedule`` is
``loop.call_later``, and sends are fire-and-forget datagrams.

Fault injection lives at the codec layer on purpose: a "lost" message
is dropped *after* encoding, so injected loss exercises exactly the
bytes a congested network would drop, and local fast-path deliveries
still pay the full encode/decode round trip (what arrives is what a
remote peer would have received).

Semantics match the simulated network's UDP-like contract: sends to
unknown or dead destinations are silently dropped and counted, never
raised; reliability composes on top (``ReliableTransport``).
"""

from __future__ import annotations

import asyncio
import logging
import random
from typing import Any, Callable

from repro.sim.network import Message, NetworkStats
from repro.transport import Transport
from repro.transport.wire import (
    WireDecodeError,
    WireFrame,
    decode_frame,
    encode_frame,
)

__all__ = ["AsyncioTransport"]

log = logging.getLogger("repro.live")


class _DatagramProtocol(asyncio.DatagramProtocol):
    """Thin asyncio protocol delegating everything to the transport."""

    def __init__(self, owner: "AsyncioTransport") -> None:
        self.owner = owner

    def datagram_received(self, data: bytes, addr) -> None:
        self.owner._on_datagram(data, addr)

    def error_received(self, exc: Exception) -> None:
        self.owner.socket_errors += 1
        log.warning("socket error: %s", exc)


class AsyncioTransport(Transport):
    """A UDP datagram transport speaking ``repro.wire/v1``.

    Parameters
    ----------
    codec:
        Wire body encoding (``"json"`` always; ``"msgpack"`` when the
        module is installed — see :func:`repro.transport.wire.
        available_codecs`).
    loss_probability:
        Probability an *encoded* outbound frame is dropped before it
        reaches the socket (or the local fast path) — deterministic
        chaos injection for soak tests.
    loss_seed:
        Seed of the private loss RNG, so a soak's drop schedule is
        reproducible.
    """

    def __init__(
        self,
        *,
        codec: str = "json",
        loss_probability: float = 0.0,
        loss_seed: int = 0,
    ) -> None:
        if not 0.0 <= loss_probability < 1.0:
            raise ValueError(
                f"loss_probability must be in [0, 1), got {loss_probability}"
            )
        self.codec = codec
        self.loss_probability = loss_probability
        self._loss_rng = random.Random(loss_seed)
        #: node id -> (host, port) of every known remote endpoint.
        self.routes: dict[int, tuple[str, int]] = {}
        self._handlers: dict[int, Callable[[Message], None]] = {}
        self.stats = NetworkStats()
        #: inbound datagrams rejected by the wire codec (fast-fail).
        self.decode_errors = 0
        #: exceptions escaping a delivery handler (logged, not fatal).
        self.handler_errors = 0
        self.socket_errors = 0
        self._loop: asyncio.AbstractEventLoop | None = None
        self._endpoint: asyncio.DatagramTransport | None = None
        #: (host, port) actually bound, available after :meth:`start`.
        self.local_address: tuple[str, int] | None = None
        self._msg_ids = iter(range(1, 1 << 62))

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(
        self, host: str = "127.0.0.1", port: int = 0
    ) -> tuple[str, int]:
        """Bind the UDP socket; returns the bound ``(host, port)``."""
        if self._endpoint is not None:
            raise RuntimeError("transport already started")
        loop = asyncio.get_running_loop()
        endpoint, _ = await loop.create_datagram_endpoint(
            lambda: _DatagramProtocol(self), local_addr=(host, port)
        )
        self._loop = loop
        self._endpoint = endpoint
        sockname = endpoint.get_extra_info("sockname")
        self.local_address = (sockname[0], sockname[1])
        return self.local_address

    async def stop(self) -> None:
        """Close the socket; registered handlers stay (for restarts)."""
        if self._endpoint is not None:
            self._endpoint.close()
            self._endpoint = None
            # Yield once so the close completes before the loop ends.
            await asyncio.sleep(0)

    def _require_started(self) -> asyncio.AbstractEventLoop:
        if self._loop is None or self._endpoint is None:
            raise RuntimeError("AsyncioTransport used before start()")
        return self._loop

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def add_route(self, node_id: int, host: str, port: int) -> None:
        """Teach the transport where ``node_id`` receives datagrams."""
        self.routes[node_id] = (host, port)

    def set_routes(self, routes: dict[int, tuple[str, int]]) -> None:
        self.routes.update(routes)

    # ------------------------------------------------------------------
    # Transport interface
    # ------------------------------------------------------------------
    def register(self, node_id: int, handler: Callable[[Message], None]) -> None:
        self._handlers[node_id] = handler

    def unregister(self, node_id: int) -> None:
        self._handlers.pop(node_id, None)

    def is_alive(self, node_id: int) -> bool:
        """Local nodes are alive while registered; remotes are presumed
        alive while routed — actual liveness is the failure detector's
        job, exactly as on a real network."""
        return node_id in self._handlers or node_id in self.routes

    def send(
        self,
        src: int,
        dst: int,
        kind: str,
        payload: Any,
        size_bytes: int = 256,
        delivery_id: int = -1,
        attempt: int = 0,
    ) -> Message | None:
        loop = self._require_started()
        message = Message(
            src=src,
            dst=dst,
            kind=kind,
            payload=payload,
            size_bytes=size_bytes,
            sent_at=loop.time(),
            msg_id=next(self._msg_ids),
            delivery_id=delivery_id,
            attempt=attempt,
        )
        self.stats.record_sent(message)
        data = encode_frame(
            WireFrame(
                kind=kind,
                src=src,
                dst=dst,
                payload=payload,
                size_bytes=size_bytes,
                delivery_id=delivery_id,
                attempt=attempt,
            ),
            self.codec,
        )
        if (
            self.loss_probability > 0.0
            and self._loss_rng.random() < self.loss_probability
        ):
            self.stats.record_dropped("injected-loss")
            return None
        if dst in self._handlers:
            # Local fast path: same process, but the frame still pays
            # the full codec round trip so delivery is byte-equivalent
            # to the socket path.
            try:
                frame = decode_frame(data, self.codec)
            except WireDecodeError as exc:  # pragma: no cover - encode bug
                self.decode_errors += 1
                self.stats.record_dropped("decode-error")
                log.error("local frame failed to decode: %s", exc)
                return None
            loop.call_soon(self._deliver, frame)
            return message
        addr = self.routes.get(dst)
        if addr is None:
            self.stats.record_dropped("no-route")
            return None
        self._endpoint.sendto(data, addr)
        return message

    @property
    def now(self) -> float:
        return self._require_started().time()

    def schedule(self, delay: float, callback: Callable[[], None]):
        return self._require_started().call_later(delay, callback)

    # ------------------------------------------------------------------
    # inbound
    # ------------------------------------------------------------------
    def _on_datagram(self, data: bytes, addr) -> None:
        try:
            frame = decode_frame(data, self.codec)
        except WireDecodeError as exc:
            self.decode_errors += 1
            self.stats.record_dropped("decode-error")
            log.warning("dropping datagram from %s: %s", addr, exc)
            return
        if frame.dst not in self._handlers:
            self.stats.record_dropped("dst-dead")
            return
        self._deliver(frame)

    def _deliver(self, frame: WireFrame) -> None:
        handler = self._handlers.get(frame.dst)
        if handler is None:
            self.stats.record_dropped("dst-dead")
            return
        loop = self._loop
        message = Message(
            src=frame.src,
            dst=frame.dst,
            kind=frame.kind,
            payload=frame.payload,
            size_bytes=frame.size_bytes,
            sent_at=loop.time() if loop is not None else 0.0,
            msg_id=next(self._msg_ids),
            delivery_id=frame.delivery_id,
            attempt=frame.attempt,
        )
        self.stats.messages_delivered += 1
        try:
            handler(message)
        except Exception:
            # One malformed-but-decodable message must not kill the
            # process's serving loop; log it and keep going.
            self.handler_errors += 1
            log.exception(
                "handler for node %d raised on %r from %d",
                frame.dst,
                frame.kind,
                frame.src,
            )
