"""Live soak: a seed plus N server processes, driven by a client peer.

The supervisor (this module) spawns every server as a real OS process
running ``python -m repro.live node``, waits for each to print its
``READY`` line, then runs an in-process :class:`~repro.live.node.
LiveClientPeer` that bootstraps off the seed and drives a paced
query-and-fetch workload over loopback UDP.

Chaos is part of the acceptance bar, not an option: with
``kill_restart`` on (the default), one non-seed server is SIGKILLed a
third of the way through and restarted at two thirds — queries riding
the reliability layer's failover deadlines and fetches riding chunk
failover must keep the overall success rate at or above
``min_success``.

Every query, fetch, kill, and restart is appended to a JSONL metrics
file (when ``metrics_path`` is set), with a final ``summary`` line —
the artifact the CI ``live-smoke`` job uploads on failure.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import os
import signal
import socket
import sys
from dataclasses import dataclass, field

import numpy as np

from repro.live.node import (
    CLIENT_ID_BASE,
    LiveClientPeer,
    LiveWorld,
    format_routes,
    live_peer_config,
)
from repro.live.transport import AsyncioTransport
from repro.overlay.peer import PeerHooks

__all__ = ["SoakConfig", "run_soak", "run_soak_sync"]

#: fetch ids issued by the soak client (disjoint from query ids).
_FETCH_ID_BASE = 1_000_000


@dataclass(slots=True)
class SoakConfig:
    """One soak run's shape.  Defaults match the CI ``live-smoke`` job."""

    n_peers: int = 4
    duration: float = 30.0
    n_queries: int = 500
    n_fetches: int = 20
    loss: float = 0.0
    codec: str = "json"
    kill_restart: bool = True
    min_success: float = 0.99
    metrics_path: str | None = None
    #: root directory for per-node durability state; when set, each
    #: server runs with ``--state-dir <root>/node-<id>`` and the
    #: mid-run restart reuses the killed node's directory, so the
    #: replacement recovers its acknowledged holdings instead of
    #: rejoining empty — and the soak gates on that recovery.
    state_dir: str | None = None
    seed: int = 1
    world: LiveWorld = field(default_factory=LiveWorld)
    query_timeout: float = 6.0
    fetch_timeout: float = 12.0
    ready_timeout: float = 20.0
    heartbeat_interval: float = 0.5

    def __post_init__(self) -> None:
        if self.n_peers < 1:
            raise ValueError(f"n_peers must be >= 1, got {self.n_peers}")
        if self.duration <= 0:
            raise ValueError(f"duration must be > 0, got {self.duration}")
        if self.kill_restart and self.n_peers < 2:
            raise ValueError("kill_restart needs at least 2 peers (seed survives)")


def _free_udp_port(host: str = "127.0.0.1") -> int:
    """Grab an ephemeral UDP port number (freed before use; loopback
    collisions in the tiny reuse window are vanishingly rare)."""
    with socket.socket(socket.AF_INET, socket.SOCK_DGRAM) as probe:
        probe.bind((host, 0))
        return probe.getsockname()[1]


class _ClientHooks(PeerHooks):
    """Routes query outcomes into per-query futures."""

    def __init__(self) -> None:
        self.futures: dict[int, asyncio.Future] = {}

    def on_query_response(self, peer, response) -> None:
        future = self.futures.pop(response.query_id, None)
        if future is not None and not future.done():
            future.set_result((bool(response.doc_ids), "ok"))

    def on_query_failed(self, peer, query_id: int, reason: str) -> None:
        future = self.futures.pop(query_id, None)
        if future is not None and not future.done():
            future.set_result((False, reason))


class _Metrics:
    """Append-only JSONL event sink (file optional, memory always)."""

    def __init__(self, path: str | None) -> None:
        self.events: list[dict] = []
        self._file = open(path, "w", encoding="utf-8") if path else None

    def emit(self, event: dict) -> None:
        self.events.append(event)
        if self._file is not None:
            self._file.write(json.dumps(event, sort_keys=True) + "\n")
            self._file.flush()

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None


class _ServerProc:
    """One spawned server process plus its stdout drain."""

    def __init__(self, node_id: int, cmd: list[str], env: dict) -> None:
        self.node_id = node_id
        self.cmd = cmd
        self.env = env
        self.proc: asyncio.subprocess.Process | None = None
        self._drain: asyncio.Task | None = None
        #: documents the node replayed from its state dir (READY line).
        self.recovered = 0

    async def start(self, ready_timeout: float) -> None:
        self.proc = await asyncio.create_subprocess_exec(
            *self.cmd,
            stdout=asyncio.subprocess.PIPE,
            stderr=None,  # inherit: child tracebacks land in our stderr
            env=self.env,
        )
        await asyncio.wait_for(self._await_ready(), ready_timeout)
        # Keep the pipe drained so the child can never block on stdout.
        self._drain = asyncio.create_task(self._drain_stdout())

    async def _await_ready(self) -> None:
        assert self.proc is not None and self.proc.stdout is not None
        while True:
            line = await self.proc.stdout.readline()
            if not line:
                raise RuntimeError(
                    f"server {self.node_id} exited before READY "
                    f"(rc={self.proc.returncode})"
                )
            text = line.decode(errors="replace")
            if text.startswith("READY "):
                for token in text.split():
                    if token.startswith("recovered="):
                        self.recovered = int(token.partition("=")[2])
                return

    async def _drain_stdout(self) -> None:
        assert self.proc is not None and self.proc.stdout is not None
        while await self.proc.stdout.readline():
            pass

    def kill(self) -> None:
        if self.proc is not None and self.proc.returncode is None:
            self.proc.kill()

    async def stop(self, grace: float = 5.0) -> None:
        if self._drain is not None:
            self._drain.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._drain
            self._drain = None
        if self.proc is None or self.proc.returncode is not None:
            return
        with contextlib.suppress(ProcessLookupError):
            self.proc.send_signal(signal.SIGTERM)
        try:
            await asyncio.wait_for(self.proc.wait(), grace)
        except asyncio.TimeoutError:
            self.kill()
            await self.proc.wait()


def _node_cmd(
    node_id: int, routes_spec: str, config: SoakConfig
) -> list[str]:
    world = config.world
    return [
        sys.executable,
        "-m",
        "repro.live",
        "node",
        "--node-id", str(node_id),
        "--routes", routes_spec,
        "--n-docs", str(world.n_docs),
        "--n-categories", str(world.n_categories),
        "--doc-bytes", str(world.doc_size_bytes),
        "--chunk-bytes", str(world.chunk_size),
        "--loss", str(config.loss),
        "--codec", config.codec,
        "--seed", str(config.seed),
        "--heartbeat", str(config.heartbeat_interval),
    ] + (
        # Per-node state dirs: a restart that rebuilds the same command
        # reuses the killed node's directory, which is the whole point.
        ["--state-dir", os.path.join(config.state_dir, f"node-{node_id}")]
        if config.state_dir is not None
        else []
    )


def _child_env() -> dict:
    """Child interpreter env with the repro package importable."""
    import repro

    pkg_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = os.environ.copy()
    existing = env.get("PYTHONPATH", "")
    if pkg_root not in existing.split(os.pathsep):
        env["PYTHONPATH"] = (
            pkg_root + (os.pathsep + existing if existing else "")
        )
    return env


async def run_soak(config: SoakConfig) -> dict:
    """Run one soak; returns the summary dict (also the last JSONL line)."""
    world = config.world
    metrics = _Metrics(config.metrics_path)
    loop = asyncio.get_running_loop()
    start_t = loop.time()

    def t() -> float:
        return round(loop.time() - start_t, 4)

    server_ids = list(range(config.n_peers + 1))  # node 0 is the seed
    client_id = CLIENT_ID_BASE
    routes = {
        node_id: ("127.0.0.1", _free_udp_port())
        for node_id in server_ids + [client_id]
    }
    routes_spec = format_routes(routes)
    env = _child_env()

    servers = {
        node_id: _ServerProc(node_id, _node_cmd(node_id, routes_spec, config), env)
        for node_id in server_ids
    }
    transport = AsyncioTransport(
        codec=config.codec,
        loss_probability=config.loss,
        loss_seed=config.seed * 31 + client_id,
    )
    hooks = _ClientHooks()
    client = None
    chaos_task: asyncio.Task | None = None
    beat_task: asyncio.Task | None = None
    counts = {
        "queries": 0,
        "queries_ok": 0,
        "fetches": 0,
        "fetches_ok": 0,
    }

    try:
        for server in servers.values():
            await server.start(config.ready_timeout)
        metrics.emit({"event": "servers_up", "t": t(), "n": len(servers)})

        await transport.start(*routes[client_id])
        transport.set_routes(routes)
        bootstrapped = loop.create_future()
        client = LiveClientPeer(
            client_id,
            capacity_units=1.0,
            rng=np.random.default_rng(config.seed),
            hooks=hooks,
            config=live_peer_config(world),
            jitter_rng=np.random.default_rng(config.seed + 1),
            transport=transport,
            on_bootstrap=lambda: (
                None if bootstrapped.done() else bootstrapped.set_result(True)
            ),
        )
        for attempt in range(5):
            client.start_join(0)
            with contextlib.suppress(asyncio.TimeoutError):
                await asyncio.wait_for(asyncio.shield(bootstrapped), 2.0)
                break
        if not bootstrapped.done():
            raise RuntimeError("client failed to bootstrap off the seed")
        metrics.emit({"event": "bootstrapped", "t": t()})

        async def heartbeats() -> None:
            while True:
                client.heartbeat_once()
                await asyncio.sleep(config.heartbeat_interval)

        beat_task = asyncio.create_task(heartbeats())

        victim = max(i for i in server_ids if i != 0)
        chaos_state: dict = {"restart_recovered": None, "restart_served": None}

        async def probe_victim() -> bool:
            """Fetch one document with the restarted victim as the only
            chunk source: succeeds only if the recovered holdings are
            actually being served again."""
            doc_id = 0
            if doc_id in client.docs:
                client.drop_document(doc_id)
            manifest = world.manifest(doc_id)
            sources = {i: (victim,) for i in range(manifest.n_chunks)}
            future = loop.create_future()

            def on_done(fetch_id: int, ok: bool, reason: str) -> None:
                if not future.done():
                    future.set_result(ok)

            client.content_state.start_fetch(
                2 * _FETCH_ID_BASE,
                world.doc_info(doc_id),
                manifest,
                sources_fn=lambda: sources,
                on_done=on_done,
            )
            try:
                ok = await asyncio.wait_for(future, config.fetch_timeout)
            except asyncio.TimeoutError:
                ok = False
            if ok:
                client.drop_document(doc_id)
            return ok

        async def chaos() -> None:
            await asyncio.sleep(config.duration / 3)
            servers[victim].kill()
            metrics.emit({"event": "kill", "t": t(), "node": victim})
            await asyncio.sleep(config.duration / 3)
            replacement = _ServerProc(
                victim, _node_cmd(victim, routes_spec, config), env
            )
            await replacement.start(config.ready_timeout)
            servers[victim] = replacement
            metrics.emit({
                "event": "restart",
                "t": t(),
                "node": victim,
                "recovered": replacement.recovered,
            })
            if config.state_dir is not None:
                chaos_state["restart_recovered"] = replacement.recovered
                served = await probe_victim()
                chaos_state["restart_served"] = served
                metrics.emit({
                    "event": "restart_probe",
                    "t": t(),
                    "node": victim,
                    "ok": served,
                })

        if config.kill_restart:
            chaos_task = asyncio.create_task(chaos())

        async def one_query(query_id: int) -> None:
            future = loop.create_future()
            hooks.futures[query_id] = future
            issued = loop.time()
            client.start_query(
                query_id, query_id % world.n_categories, 1
            )
            try:
                ok, reason = await asyncio.wait_for(future, config.query_timeout)
            except asyncio.TimeoutError:
                hooks.futures.pop(query_id, None)
                ok, reason = False, "timeout"
            counts["queries"] += 1
            counts["queries_ok"] += int(ok)
            metrics.emit({
                "event": "query",
                "t": t(),
                "id": query_id,
                "ok": ok,
                "reason": reason,
                "latency_s": round(loop.time() - issued, 6),
            })

        async def one_fetch(fetch_index: int) -> None:
            doc_id = fetch_index % world.n_docs
            if doc_id in client.docs:
                client.drop_document(doc_id)
            manifest = world.manifest(doc_id)
            info = world.doc_info(doc_id)
            sources = {
                i: tuple(server_ids) for i in range(manifest.n_chunks)
            }
            future = loop.create_future()

            def on_done(fetch_id: int, ok: bool, reason: str) -> None:
                if not future.done():
                    future.set_result((ok, reason))

            issued = loop.time()
            client.content_state.start_fetch(
                _FETCH_ID_BASE + fetch_index,
                info,
                manifest,
                sources_fn=lambda: sources,
                on_done=on_done,
            )
            try:
                ok, reason = await asyncio.wait_for(future, config.fetch_timeout)
            except asyncio.TimeoutError:
                ok, reason = False, "timeout"
            if ok:
                client.drop_document(doc_id)  # keep later refetches honest
            counts["fetches"] += 1
            counts["fetches_ok"] += int(ok)
            metrics.emit({
                "event": "fetch",
                "t": t(),
                "doc": doc_id,
                "chunks": manifest.n_chunks,
                "ok": ok,
                "reason": reason,
                "latency_s": round(loop.time() - issued, 6),
            })

        interval = config.duration / max(config.n_queries, 1)
        fetch_every = max(1, config.n_queries // max(config.n_fetches, 1))
        workload_start = loop.time()
        for i in range(config.n_queries):
            delay = workload_start + i * interval - loop.time()
            if delay > 0:
                await asyncio.sleep(delay)
            await one_query(i + 1)
            if i % fetch_every == 0 and counts["fetches"] < config.n_fetches:
                await one_fetch(counts["fetches"])
        while counts["fetches"] < config.n_fetches:
            await one_fetch(counts["fetches"])

        if chaos_task is not None:
            # The restart must land inside the run for the soak to count.
            await asyncio.wait_for(chaos_task, config.duration)
            chaos_task = None
    finally:
        if beat_task is not None:
            beat_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await beat_task
        if chaos_task is not None:
            chaos_task.cancel()
            with contextlib.suppress(asyncio.CancelledError, Exception):
                await chaos_task
        for server in servers.values():
            await server.stop()
        await transport.stop()

    total = counts["queries"] + counts["fetches"]
    total_ok = counts["queries_ok"] + counts["fetches_ok"]
    success_rate = total_ok / total if total else 0.0
    # With persistence on, the soak additionally gates on the restarted
    # victim having recovered its full corpus from its state dir *and*
    # served it again (the probe fetch names it as the only source).
    restart_ok = True
    if config.kill_restart and config.state_dir is not None:
        restart_ok = (
            chaos_state["restart_recovered"] == world.n_docs
            and chaos_state["restart_served"] is True
        )
    summary = {
        "event": "summary",
        "t": t(),
        "queries": counts["queries"],
        "queries_ok": counts["queries_ok"],
        "fetches": counts["fetches"],
        "fetches_ok": counts["fetches_ok"],
        "success_rate": round(success_rate, 6),
        "min_success": config.min_success,
        "passed": success_rate >= config.min_success and restart_ok,
        "kill_restart": config.kill_restart,
        "persistence": config.state_dir is not None,
        "restart_recovered_docs": chaos_state["restart_recovered"],
        "restart_probe_ok": chaos_state["restart_served"],
        "loss": config.loss,
        "codec": config.codec,
        "n_peers": config.n_peers,
        "client_decode_errors": transport.decode_errors,
        "client_messages_sent": transport.stats.messages_sent,
        "client_messages_dropped": transport.stats.messages_dropped,
    }
    metrics.emit(summary)
    metrics.close()
    return summary


def run_soak_sync(config: SoakConfig) -> dict:
    """Blocking wrapper for CLI and test use."""
    return asyncio.run(run_soak(config))
