"""``python -m repro.live`` — run a live node or a loopback soak.

Subcommands::

    node   one overlay server process (used by the soak supervisor)
    soak   spawn a seed + N peers, drive queries and chunk fetches,
           kill/restart one peer mid-run, and gate on the success rate

Examples::

    python -m repro.live soak --peers 4 --duration 30 \\
        --queries 500 --fetches 20 --loss 0.02 --metrics soak.jsonl
    python -m repro.live node --node-id 0 --routes "0:7000,1:7001"
"""

from __future__ import annotations

import argparse
import asyncio
import json
import logging
import sys

from repro.live.node import LiveWorld, parse_routes, run_node
from repro.live.soak import SoakConfig, run_soak_sync


def _add_world_args(parser: argparse.ArgumentParser) -> None:
    world = LiveWorld()
    parser.add_argument("--n-docs", type=int, default=world.n_docs)
    parser.add_argument("--n-categories", type=int, default=world.n_categories)
    parser.add_argument("--doc-bytes", type=int, default=world.doc_size_bytes)
    parser.add_argument("--chunk-bytes", type=int, default=world.chunk_size)


def _world_from(args: argparse.Namespace) -> LiveWorld:
    return LiveWorld(
        n_docs=args.n_docs,
        n_categories=args.n_categories,
        doc_size_bytes=args.doc_bytes,
        chunk_size=args.chunk_bytes,
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.live",
        description="Live (asyncio/UDP) runtime for the overlay.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    node = sub.add_parser("node", help="run one overlay server process")
    node.add_argument("--node-id", type=int, required=True)
    node.add_argument(
        "--routes",
        required=True,
        help="comma-separated id:port or id:host:port for every node",
    )
    node.add_argument("--loss", type=float, default=0.0)
    node.add_argument("--codec", default="json")
    node.add_argument("--seed", type=int, default=0)
    node.add_argument("--heartbeat", type=float, default=0.5)
    node.add_argument(
        "--state-dir",
        default=None,
        help="directory for this node's WAL + snapshot; a restart "
        "pointing at the same directory recovers its holdings",
    )
    _add_world_args(node)

    soak = sub.add_parser("soak", help="supervised seed+N-peer soak run")
    soak.add_argument("--peers", type=int, default=4)
    soak.add_argument("--duration", type=float, default=30.0)
    soak.add_argument("--queries", type=int, default=500)
    soak.add_argument("--fetches", type=int, default=20)
    soak.add_argument("--loss", type=float, default=0.0)
    soak.add_argument("--codec", default="json")
    soak.add_argument("--min-success", type=float, default=0.99)
    soak.add_argument("--metrics", default=None, help="JSONL event file")
    soak.add_argument(
        "--state-dir",
        default=None,
        help="root for per-node durability state; the mid-run restart "
        "reuses the killed node's directory and the soak gates on its "
        "recovered holdings being served again",
    )
    soak.add_argument("--seed", type=int, default=1)
    soak.add_argument(
        "--no-kill",
        action="store_true",
        help="skip the mid-run kill/restart of one peer",
    )
    _add_world_args(soak)
    return parser


def main(argv: list[str] | None = None) -> int:
    logging.basicConfig(
        level=logging.WARNING,
        format="%(asctime)s %(name)s %(levelname)s %(message)s",
    )
    args = build_parser().parse_args(argv)
    if args.command == "node":
        asyncio.run(
            run_node(
                args.node_id,
                parse_routes(args.routes),
                _world_from(args),
                loss=args.loss,
                codec=args.codec,
                heartbeat_interval=args.heartbeat,
                seed=args.seed,
                state_dir=args.state_dir,
            )
        )
        return 0
    summary = run_soak_sync(
        SoakConfig(
            n_peers=args.peers,
            duration=args.duration,
            n_queries=args.queries,
            n_fetches=args.fetches,
            loss=args.loss,
            codec=args.codec,
            kill_restart=not args.no_kill,
            min_success=args.min_success,
            metrics_path=args.metrics,
            state_dir=args.state_dir,
            seed=args.seed,
            world=_world_from(args),
        )
    )
    print(json.dumps(summary, indent=2, sort_keys=True))
    return 0 if summary["passed"] else 1


if __name__ == "__main__":
    sys.exit(main())
