"""Heartbeat failure detection with a suspicion threshold.

The paper's protocols detect death per-request (monitoring timeouts,
leader probes); the :class:`FailureDetector` generalizes that machinery
into a shared suspect list.  Evidence flows in from three sources:

* **active probes** — :meth:`probe` sends a ping and counts a miss when
  no pong arrives within ``probe_timeout``;
* **channel give-ups** — a reliable delivery exhausting its attempts
  counts as a miss (wired via ``ReliableChannel.on_give_up``);
* **any received message** — :meth:`note_alive` clears the target's
  misses and suspicion, so a suspect that speaks is rehabilitated.

A node becomes a *suspect* after ``suspicion_threshold`` consecutive
misses.  Suspects are excluded from NRT target selection, leader
election, and monitoring-tree fanout — dead nodes get routed around
instead of timed out per-request.

The detector is round-driven (``P2PSystem.run_failure_detector_rounds``)
rather than self-scheduling: a standing periodic heartbeat would keep
the event queue alive forever and break every run-to-quiescence caller.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro import obs
from repro.reliability.channel import _CONTROL_SIZE, ReliabilityConfig
from repro.transport import Transport, as_transport

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.overlay import messages as m

__all__ = ["FailureDetector"]

_C_PROBES = obs.counter("reliability.probes")
_C_SUSPECTS = obs.counter("reliability.suspicions")
_C_CLEARED = obs.counter("reliability.suspicions_cleared")


class FailureDetector:
    """Tracks miss counts and the suspect set for one peer."""

    def __init__(
        self, node_id: int, transport: Transport, config: ReliabilityConfig
    ) -> None:
        self.node_id = node_id
        # Accepts a bare simulated Network too (legacy callers, tests).
        self.transport = as_transport(transport)
        self.config = config
        #: consecutive misses per target.
        self._misses: dict[int, int] = {}
        #: (target, probe_id) probes awaiting a pong.
        self._pending: set[tuple[int, int]] = set()
        self._next_probe_id = 0
        self.suspects: set[int] = set()

    def is_suspect(self, node_id: int) -> bool:
        return node_id in self.suspects

    # ------------------------------------------------------------------
    # evidence
    # ------------------------------------------------------------------
    def note_alive(self, node_id: int) -> None:
        """Any message from ``node_id`` proves it lives."""
        if node_id in self._misses:
            del self._misses[node_id]
        if node_id in self.suspects:
            self.suspects.discard(node_id)
            _C_CLEARED.value += 1

    def note_missed(self, node_id: int) -> None:
        """One more piece of evidence that ``node_id`` is unresponsive."""
        misses = self._misses.get(node_id, 0) + 1
        self._misses[node_id] = misses
        if misses >= self.config.suspicion_threshold and node_id not in self.suspects:
            self.suspects.add(node_id)
            _C_SUSPECTS.value += 1

    def forget(self, node_id: int) -> None:
        """Silently drop all evidence about ``node_id``.

        Used when the target *left gracefully*: a clean departure is
        neither a failure (so no suspicion should accrue from its armed
        probe timeouts) nor a rehabilitation (so, unlike
        :meth:`note_alive`, no cleared-suspicion counter ticks — the
        node is gone, not healed).
        """
        self._misses.pop(node_id, None)
        self.suspects.discard(node_id)
        if self._pending:
            self._pending = {
                key for key in self._pending if key[0] != node_id
            }

    def reset(self) -> None:
        """Forget all evidence: misses, pending probes, and suspects.

        Called when the owning node heals after a crash.  While it was
        dark its already-armed probe and retry timers kept firing with no
        pongs or acks able to arrive, accusing peers that were fine all
        along; rejoining with that stale suspect set would blackhole the
        queries and fan-outs routed through this node.
        """
        self._misses.clear()
        self._pending.clear()
        if self.suspects:
            _C_CLEARED.value += len(self.suspects)
            self.suspects.clear()

    # ------------------------------------------------------------------
    # active probing
    # ------------------------------------------------------------------
    def probe(self, target: int) -> None:
        """Ping ``target``; count a miss unless a pong arrives in time."""
        from repro.overlay.messages import Ping

        self._next_probe_id += 1
        key = (target, self._next_probe_id)
        self._pending.add(key)
        _C_PROBES.value += 1
        self.transport.send(
            self.node_id,
            target,
            "ping",
            Ping(probe_id=self._next_probe_id, prober_id=self.node_id),
            size_bytes=_CONTROL_SIZE,
        )

        def on_timeout() -> None:
            if key not in self._pending:
                return  # the pong landed first
            self._pending.discard(key)
            self.note_missed(target)

        self.transport.schedule(self.config.probe_timeout, on_timeout)

    def handle_pong(self, pong: "m.Pong") -> None:
        self._pending.discard((pong.responder_id, pong.probe_id))
        self.note_alive(pong.responder_id)
